/**
 * @file
 * Deterministic fault injection for the simulated fabric. The paper's
 * testbed was a dedicated, healthy 10 GbE cluster; production fabrics
 * drop packets (random bit errors, bursty congestion loss), corrupt
 * payloads, degrade transiently, and lose whole links or hosts. A
 * FaultModel attaches to the Network and judges the fate of every
 * packet on the datagram path (see Network::transferDatagram); the
 * reliable channel (net/reliable.h) then recovers exactly as TCP
 * would, so collectives complete bit-identically over a lossy fabric —
 * only slower.
 *
 * Determinism discipline (DESIGN.md section 7 applies here too): every
 * random draw comes from a *named stream* derived from the config seed.
 * Bernoulli loss and corruption draws are **stateless** — a pure hash
 * of (seed, stream, link, sequence number, attempt) — so a packet's
 * fate is independent of judgment order and of INC_THREADS (the event
 * kernel is serial anyway). The Gilbert-Elliott chain is inherently
 * stateful; its per-link state advances in event order, which the
 * EventQueue keeps deterministic.
 */

#ifndef INCEPTIONN_NET_FAULTS_H
#define INCEPTIONN_NET_FAULTS_H

#include <cstdint>
#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"

namespace inc {

/** Which direction of a host's cable a packet traverses. */
enum class LinkDir {
    Up,   ///< host -> switch
    Down, ///< switch -> host
};

/** Per-packet loss process on a link. */
enum class LossKind {
    None,           ///< lossless (outages/corruption may still apply)
    Bernoulli,      ///< i.i.d. per-packet loss at lossRate
    GilbertElliott, ///< two-state bursty loss (good/bad channel)
};

/** Gilbert-Elliott chain parameters (per-packet transition model). */
struct GilbertElliottConfig
{
    double pGoodToBad = 0.0005; ///< P(good -> bad) per packet
    double pBadToGood = 0.1;    ///< P(bad -> good) per packet
    double lossGood = 0.0;      ///< drop probability while good
    double lossBad = 0.5;       ///< drop probability while bad

    /** Long-run average loss rate of the chain. */
    double
    averageLoss() const
    {
        const double pi_bad =
            pGoodToBad / (pGoodToBad + pBadToGood);
        return (1.0 - pi_bad) * lossGood + pi_bad * lossBad;
    }
};

/** Random-fault profile of one link (one direction of a cable). */
struct LinkFaultProfile
{
    LossKind loss = LossKind::None;
    /** Bernoulli per-packet drop probability. */
    double lossRate = 0.0;
    GilbertElliottConfig ge{};
    /**
     * Per-packet payload-corruption probability. Corrupted packets are
     * caught by the TCP checksum at the receiver and discarded, so to
     * the transport they are losses — counted separately because their
     * cause (bit errors vs congestion) differs.
     */
    double corruptionRate = 0.0;
};

/** Half-open simulated-time window [start, end). */
struct FaultWindow
{
    Tick start = 0;
    Tick end = 0;

    bool
    contains(Tick t) const
    {
        return t >= start && t < end;
    }
};

/**
 * Transient link degradation: during the window the link additionally
 * drops packets at @c extraLossRate (a flapping transceiver, a
 * congested neighbour). Applies to both directions of the host's cable.
 */
struct LinkDegradation
{
    int host = 0;
    FaultWindow window{};
    double extraLossRate = 0.0;
};

/** Complete fault-injection scenario. */
struct FaultConfig
{
    /** Root seed for every named draw stream. */
    uint64_t seed = 0xFA017;
    /** Profile applied to every link without an override. */
    LinkFaultProfile defaultLink{};
    /** Per-host overrides (both directions of that host's cable). */
    std::vector<std::pair<int, LinkFaultProfile>> hostOverrides;
    /** Scheduled cable outages: all packets on the host's cable drop. */
    std::vector<std::pair<int, FaultWindow>> linkOutages;
    /** Scheduled host outages: the node neither sends nor receives. */
    std::vector<std::pair<int, FaultWindow>> hostOutages;
    /** Transient degradation windows. */
    std::vector<LinkDegradation> degradations;
};

/** What happened to one packet, in judgment precedence order. */
enum class PacketFate {
    Delivered,  ///< survived every hazard
    HostDown,   ///< an endpoint was inside a host outage window
    LinkDown,   ///< the cable was inside an outage window
    BurstDrop,  ///< Gilbert-Elliott loss
    RandomDrop, ///< Bernoulli or degradation-window loss
    Corrupted,  ///< payload damaged; checksum discards at the receiver
};

/** True when @p fate means the packet never reaches the application. */
inline bool
isDrop(PacketFate fate)
{
    return fate != PacketFate::Delivered;
}

/** Lifetime counters over every judged packet. */
struct FaultStats
{
    uint64_t packetsJudged = 0;
    uint64_t randomDrops = 0;
    uint64_t burstDrops = 0;
    uint64_t corruptions = 0;
    uint64_t outageDrops = 0; ///< HostDown + LinkDown
    uint64_t queueDrops = 0;  ///< tail drops reported by Network queues

    /** Every packet that failed to arrive. */
    uint64_t
    drops() const
    {
        return randomDrops + burstDrops + corruptions + outageDrops +
               queueDrops;
    }
};

/**
 * Judges packet fates for one scenario. Attach to a Network with
 * Network::attachFaults(); the datagram path consults it per packet.
 */
class FaultModel
{
  public:
    /** Validates the scenario; panics on malformed rates/windows. */
    explicit FaultModel(FaultConfig config);

    const FaultConfig &config() const { return config_; }
    const FaultStats &stats() const { return stats_; }

    /**
     * Decide the fate of packet @p seq of flow @p flow (attempt
     * @p attempt) crossing the @p dir direction of @p host's cable at
     * time @p when. Counts into stats() and emits "faults" trace
     * records for drops.
     */
    PacketFate judge(int host, LinkDir dir, Tick when, uint64_t flow,
                     uint64_t seq, uint32_t attempt);

    /** Is @p host outside every host-outage window at @p when? */
    bool hostUp(int host, Tick when) const;

    /** Is @p host's cable outside every link-outage window at @p when? */
    bool cableUp(int host, Tick when) const;

    /** The profile governing @p host's cable. */
    const LinkFaultProfile &profileFor(int host) const;

    /** Network queues report tail drops here so stats() sees them. */
    void noteQueueDrops(uint64_t n) { stats_.queueDrops += n; }

  private:
    /** Stateless unit draw from a named stream — a pure function of
     *  (seed, stream, link, flow, seq, attempt). */
    double unitDraw(uint64_t stream, uint64_t linkKey, uint64_t flow,
                    uint64_t seq, uint32_t attempt) const;

    /** Per-link Gilbert-Elliott chain state. */
    struct GeState
    {
        bool bad = false;
        Rng rng;
        explicit GeState(uint64_t seed) : rng(seed) {}
    };

    GeState &geStateFor(uint64_t linkKey,
                        const GilbertElliottConfig &ge);

    FaultConfig config_;
    FaultStats stats_;
    std::map<uint64_t, GeState> geStates_;
};

} // namespace inc

#endif // INCEPTIONN_NET_FAULTS_H
