/**
 * @file
 * Wire-format constants and packetization math for the simulated 10 GbE
 * fabric. A key modelling point from the paper (Sec. VIII-C): the NIC
 * engines compress TCP *payloads in place*, so the packet count and all
 * per-packet overheads (headers, driver work) are those of the
 * UNCOMPRESSED stream — only the payload bytes on the wire shrink. That
 * is why a 15x compression ratio does not yield a 15x communication
 * speedup.
 */

#ifndef INCEPTIONN_NET_PACKET_H
#define INCEPTIONN_NET_PACKET_H

#include <cstdint>

namespace inc {

/** ToS value marking a packet for NIC (de)compression (paper Sec. VI-B). */
constexpr uint8_t kCompressTos = 0x28;

/** ToS of ordinary traffic. */
constexpr uint8_t kDefaultTos = 0x00;

/** Ethernet + IP + TCP header bytes carried by every packet. */
constexpr uint64_t kHeaderBytes = 14 + 20 + 20; // Eth + IPv4 + TCP

/** Ethernet framing overhead on the wire (preamble+SFD, FCS, IFG). */
constexpr uint64_t kFramingBytes = 8 + 4 + 12;

/** Default MTU (payload after IP/TCP headers = MSS). */
constexpr uint64_t kDefaultMtu = 1500;

/**
 * Sentinel for "no queue limit" in SwitchConfig/NicConfig queue depths.
 * Finite depths must be positive; zero is rejected (a zero-depth queue
 * could never forward anything).
 */
constexpr int kUnboundedQueue = -1;

/** Maximum TCP segment payload for an MTU. */
constexpr uint64_t
mssFor(uint64_t mtu)
{
    return mtu - 40; // IP + TCP headers live inside the MTU
}

/** Number of packets a payload of @p bytes occupies. */
constexpr uint64_t
packetsFor(uint64_t bytes, uint64_t mtu = kDefaultMtu)
{
    const uint64_t mss = mssFor(mtu);
    return bytes == 0 ? 0 : (bytes + mss - 1) / mss;
}

/**
 * Description of one message (or message segment) in flight.
 * @c payloadBytes is the logical (uncompressed) size that determines the
 * packet count; @c wirePayloadBytes is what the packets actually carry
 * after optional NIC compression.
 */
struct SegmentMeta
{
    uint64_t payloadBytes = 0;
    uint64_t wirePayloadBytes = 0;
    uint8_t tos = kDefaultTos;

    /** Packets this segment occupies (from the uncompressed size). */
    uint64_t
    packets(uint64_t mtu = kDefaultMtu) const
    {
        return packetsFor(payloadBytes, mtu);
    }

    /** Total bits serialized on the wire including all per-packet cost. */
    uint64_t
    wireBits(uint64_t mtu = kDefaultMtu) const
    {
        const uint64_t overhead =
            packets(mtu) * (kHeaderBytes + kFramingBytes);
        return (wirePayloadBytes + overhead) * 8;
    }
};

} // namespace inc

#endif // INCEPTIONN_NET_PACKET_H
