#include "net/socket.h"

#include "sim/logging.h"

namespace inc {

void
SimSocket::setOption(SocketOption opt, uint32_t value)
{
    switch (opt) {
      case SocketOption::IpTos:
        INC_ASSERT(value <= 0xFF, "ToS is an 8-bit field, got %u", value);
        tos_ = static_cast<uint8_t>(value);
        return;
    }
    panic("unknown socket option");
}

void
SimSocket::send(uint64_t bytes, double wire_ratio,
                std::function<void(Tick)> on_delivered)
{
    INC_ASSERT(bytes > 0, "empty send");
    ++stats_.sends;
    stats_.payloadBytes += bytes;

    TransferRequest req;
    req.src = src_;
    req.dst = dst_;
    req.payloadBytes = bytes;
    req.tos = tos_;
    req.wireRatio = tos_ == kCompressTos ? wire_ratio : 1.0;

    const Tick now = net_.events().now();
    if (now >= established_) {
        net_.transfer(req, std::move(on_delivered));
        return;
    }
    // The handshake is still in flight: queue the payload behind it.
    net_.events().schedule(established_,
                           [this, req,
                            cb = std::move(on_delivered)]() mutable {
                               net_.transfer(req, std::move(cb));
                           });
}

std::shared_ptr<SimSocket>
SocketStack::connect(int src, int dst)
{
    INC_ASSERT(src >= 0 && src < net_.nodes() && dst >= 0 &&
                   dst < net_.nodes() && src != dst,
               "bad connection %d->%d", src, dst);
    // SYN, SYN-ACK, ACK: payload may ride the final ACK, so the first
    // send waits 1.5 RTTs after connect().
    const Tick established =
        net_.events().now() + roundTrip(src, dst) * 3 / 2;
    return std::shared_ptr<SimSocket>(
        new SimSocket(net_, src, dst, established));
}

Tick
SocketStack::roundTrip(int src, int dst) const
{
    (void)src;
    // Star topology: every path is uplink + downlink, symmetric.
    const Tick one_way = net_.config().linkLatency * 2 +
                         net_.config().switchConfig.forwardingLatency;
    (void)dst;
    return 2 * one_way;
}

} // namespace inc
