#include "net/socket.h"

#include "sim/logging.h"
#include "sim/span.h"

namespace inc {

namespace {

/**
 * Payload queued behind a connection handshake: record the wait as a
 * Handshake span (chained from the ambient pending cause) and return
 * the context to re-establish around the deferred send, so the message
 * span created then still lands under the right parent and cause.
 */
struct DeferredSendContext
{
    uint64_t parent = 0;
    uint64_t cause = 0;

    DeferredSendContext(int src, Tick now, Tick established)
    {
        if (auto *sp = spans::active()) {
            parent = sp->currentParent();
            cause = sp->record(spans::Kind::Handshake, src, now,
                               established, parent, sp->pendingCause(),
                               "handshake wait");
        }
    }
};

} // namespace

void
SimSocket::setOption(SocketOption opt, uint32_t value)
{
    switch (opt) {
      case SocketOption::IpTos:
        INC_ASSERT(value <= 0xFF, "ToS is an 8-bit field, got %u", value);
        tos_ = static_cast<uint8_t>(value);
        return;
    }
    panic("unknown socket option");
}

ReliableChannel &
SimSocket::channelFor(uint8_t tos)
{
    auto it = channels_.find(tos);
    if (it == channels_.end()) {
        it = channels_
                 .emplace(tos, std::make_unique<ReliableChannel>(
                                   net_, src_, dst_,
                                   stack_.reliableConfig_, tos,
                                   stack_.nextFlowId_++))
                 .first;
    }
    return *it->second;
}

void
SimSocket::send(uint64_t bytes, double wire_ratio,
                std::function<void(Tick)> on_delivered)
{
    INC_ASSERT(bytes > 0, "empty send");
    ++stats_.sends;
    stats_.payloadBytes += bytes;

    const double ratio = tos_ == kCompressTos ? wire_ratio : 1.0;
    auto deliver = [this, bytes, cb = std::move(on_delivered)](Tick when) {
        stats_.deliveredBytes += bytes;
        stats_.deliveredPackets +=
            packetsFor(bytes, net_.config().nicConfig.mtu);
        if (cb)
            cb(when);
    };

    if (stack_.reliable_) {
        ReliableChannel &channel = channelFor(tos_);
        const Tick now = net_.events().now();
        if (now >= established_) {
            channel.send(bytes, ratio, std::move(deliver));
            return;
        }
        const DeferredSendContext ctx(src_, now, established_);
        net_.events().schedule(
            established_, [&channel, bytes, ratio, ctx,
                           cb = std::move(deliver)]() mutable {
                spans::Scope scope(ctx.parent, ctx.cause);
                channel.send(bytes, ratio, std::move(cb));
            });
        return;
    }

    TransferRequest req;
    req.src = src_;
    req.dst = dst_;
    req.payloadBytes = bytes;
    req.tos = tos_;
    req.wireRatio = ratio;

    const Tick now = net_.events().now();
    if (now >= established_) {
        net_.transfer(req, std::move(deliver));
        return;
    }
    // The handshake is still in flight: queue the payload behind it.
    const DeferredSendContext ctx(src_, now, established_);
    net_.events().schedule(established_,
                           [this, req, ctx,
                            cb = std::move(deliver)]() mutable {
                               spans::Scope scope(ctx.parent, ctx.cause);
                               net_.transfer(req, std::move(cb));
                           });
}

SocketStats
SimSocket::stats() const
{
    SocketStats out = stats_;
    for (const auto &[tos, channel] : channels_) {
        out.retransmits += channel->stats().retransmits;
        out.dropsObserved += channel->stats().dropsObserved;
    }
    return out;
}

std::shared_ptr<SimSocket>
SocketStack::connect(int src, int dst)
{
    INC_ASSERT(src >= 0 && src < net_.nodes() && dst >= 0 &&
                   dst < net_.nodes() && src != dst,
               "bad connection %d->%d", src, dst);
    // SYN, SYN-ACK, ACK: payload may ride the final ACK, so the first
    // send waits 1.5 RTTs after connect().
    const Tick established =
        net_.events().now() + roundTrip(src, dst) * 3 / 2;
    std::shared_ptr<SimSocket> sock(
        new SimSocket(*this, net_, src, dst, established));
    sockets_.push_back(sock);
    return sock;
}

Tick
SocketStack::roundTrip(int src, int dst) const
{
    (void)src;
    // Star topology: every path is uplink + downlink, symmetric.
    const Tick one_way = net_.config().linkLatency * 2 +
                         net_.config().switchConfig.forwardingLatency;
    (void)dst;
    return 2 * one_way;
}

SocketStats
SocketStack::totalStats() const
{
    SocketStats total;
    for (const auto &weak : sockets_) {
        if (auto sock = weak.lock()) {
            const SocketStats s = sock->stats();
            total.sends += s.sends;
            total.payloadBytes += s.payloadBytes;
            total.deliveredPackets += s.deliveredPackets;
            total.deliveredBytes += s.deliveredBytes;
            total.retransmits += s.retransmits;
            total.dropsObserved += s.dropsObserved;
        }
    }
    return total;
}

} // namespace inc
