#include "net/link.h"

#include <algorithm>

#include "sim/logging.h"

namespace inc {

Link::Link(std::string name, double bits_per_second, Tick latency)
    : name_(std::move(name)), bitsPerSecond_(bits_per_second),
      latency_(latency)
{
    INC_ASSERT(bits_per_second > 0.0, "link %s has no bandwidth",
               name_.c_str());
}

Tick
Link::serializationTime(uint64_t wire_bits) const
{
    return static_cast<Tick>(static_cast<double>(wire_bits) /
                                 bitsPerSecond_ *
                                 static_cast<double>(kSecond) +
                             0.5);
}

Tick
Link::transmit(Tick ready, uint64_t wire_bits, Tick *start_out)
{
    const Tick start = std::max(ready, busyUntil_);
    if (start_out)
        *start_out = start;
    const Tick ser = serializationTime(wire_bits);
    busyUntil_ = start + ser;
    bitsCarried_ += wire_bits;
    busyTime_ += ser;
    return busyUntil_ + latency_;
}

} // namespace inc
