/**
 * @file
 * SHARP-style in-network aggregation engine: a pool of reduction slots
 * bolted onto a Switch. Each slot owns accumulator SRAM for one
 * in-flight gradient chunk; a shared fold ALU adds arriving child
 * contributions into the slot at a fixed bytes/cycle rate, and an
 * optional codec datapath decodes INCEPTIONN-coded payloads before the
 * fold (and re-encodes before forwarding), charged at its own
 * bytes/cycle rate — the aggregate-after-decode design from the
 * lossless-homomorphic-compression line of work, costed in the style
 * of the burst_* NIC engine models.
 *
 * Determinism contract: the engine is pure busy-until arithmetic on
 * integer ticks — no floating time accumulation, no hidden state
 * beyond `busyUntil_` and the slot pool — so fold completion times are
 * a function of the (arrival tick, bytes, coded) call sequence alone.
 * Callers (comm/innet_collectives) are responsible for presenting
 * child arrivals in a deterministic order.
 */

#ifndef INCEPTIONN_NET_SWITCH_AGG_H
#define INCEPTIONN_NET_SWITCH_AGG_H

#include <cstdint>

#include "sim/event_queue.h"

namespace inc {

/** Static parameters of one switch's aggregation engine. */
struct SwitchAggConfig
{
    /** Reduction slots (concurrently open chunks). 0 disables the
     *  engine: innet collectives refuse to run over it. */
    int slots = 8;
    /** Accumulator SRAM per slot; one chunk must fit. */
    uint64_t slotBytes = 2 * 1024 * 1024;
    /** Engine clock (SHARP-class switch ASICs run 200-400 MHz). */
    double clockHz = 250e6;
    /** Fold ALU width: bytes added into a slot per cycle (512-bit). */
    uint64_t foldBytesPerCycle = 64;
    /** Codec datapath width for decode-before-fold / encode-after
     *  (narrower than the fold ALU, like the NIC's 256-bit AXI path). */
    uint64_t codecBytesPerCycle = 32;
    /** Pipeline fill latency charged once per fold, in cycles. */
    int pipelineCycles = 8;
};

/** Lifetime counters of one engine. */
struct SwitchAggStats
{
    uint64_t folds = 0;           ///< child contributions folded
    uint64_t foldedBytes = 0;     ///< payload bytes folded
    uint64_t codecBytes = 0;      ///< bytes through the codec datapath
    uint64_t cycles = 0;          ///< busy engine cycles charged
    uint64_t forwards = 0;        ///< aggregated chunks forwarded up
    uint64_t slotWaits = 0;       ///< arrivals parked for a free slot
    uint64_t peakSlotsInUse = 0;  ///< high-water mark of the pool
};

/**
 * The engine: slot pool + busy-until fold ALU. One instance per
 * switch; state is mutated only from that switch's (serial or LP)
 * event context.
 */
class SwitchAggEngine
{
  public:
    explicit SwitchAggEngine(SwitchAggConfig config);

    const SwitchAggConfig &config() const { return config_; }
    const SwitchAggStats &stats() const { return stats_; }

    /** True when the engine has reduction capability at all. */
    bool enabled() const { return config_.slots > 0; }

    int slotsInUse() const { return slotsInUse_; }
    int freeSlots() const { return config_.slots - slotsInUse_; }

    /**
     * Claim a slot for a chunk of @p chunkBytes (must fit slotBytes).
     * @return false when the pool is exhausted (caller queues the
     * arrival and retries on releaseSlot()).
     */
    bool tryAcquireSlot(uint64_t chunkBytes);
    /** Return a slot after the aggregated chunk was forwarded. */
    void releaseSlot();
    /** Count an arrival that had to park waiting for a slot. */
    void noteSlotWait() { ++stats_.slotWaits; }

    /**
     * Fold one child contribution of @p bytes that is available at
     * @p start; @p coded charges the decode datapath before the add.
     * @return the tick the fold completes (engine busy until then).
     */
    Tick fold(Tick start, uint64_t bytes, bool coded);

    /**
     * Read out + (for coded payloads) re-encode an aggregated chunk of
     * @p bytes, earliest at @p start. @return forwarding-ready tick.
     */
    Tick forward(Tick start, uint64_t bytes, bool coded);

    /** Earliest tick a new fold could begin. */
    Tick busyUntil() const { return busyUntil_; }

    /**
     * Die-area estimate in mm^2 (slot SRAM + fold/codec ALUs), in the
     * spirit of the paper's Table 4 FPGA-resource accounting: SRAM at
     * ~0.2 mm^2/Mbit and ~0.05 mm^2 per 64-byte/cycle ALU lane
     * (16 nm-class figures). A model, not a measurement.
     */
    double areaMm2() const;

  private:
    Tick cyclesToTicks(uint64_t cycles) const;

    SwitchAggConfig config_;
    SwitchAggStats stats_;
    int slotsInUse_ = 0;
    Tick busyUntil_ = 0;
};

} // namespace inc

#endif // INCEPTIONN_NET_SWITCH_AGG_H
