#include "net/lp_fabric.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace inc {

namespace {

constexpr uint8_t kTraceTx = 0;
constexpr uint8_t kTraceHop = 1;
constexpr uint8_t kTraceRx = 2;
constexpr uint8_t kTraceDeliver = 3;
constexpr uint8_t kTraceRetry = 4;
constexpr uint8_t kTraceAgg = 5;

uint64_t
packetWireBits(uint64_t mtu)
{
    return (mssFor(mtu) + kHeaderBytes + kFramingBytes) * 8;
}

} // namespace

/** Everything a segment carries between hops: the cut-through timing
 *  state of shipAlongPath, threaded through cross-LP events. */
struct LpFabric::HopCarry
{
    std::shared_ptr<const std::vector<int>> path;
    size_t hop = 1; ///< index into path of the node this event fires on
    uint64_t wireBits = 0;
    Tick prevStart = 0;
    Tick prevTxEnd = 0;
    Tick prevPktTime = 0;
    Tick arrival = 0; ///< true tick the tail reaches this node
    SegmentMeta meta{};
    bool compressed = false;
    bool last = false; ///< fires the delivery callback at the far end
    uint64_t flightPayload = 0;
    std::shared_ptr<std::function<void(Tick)>> cb;
    int src = 0;
    int dst = 0;
    /** Span of the previous hop (capture mode): the next hop's cause. */
    spans::ShardRef causeSpan{};
};

LpFabric::LpFabric(Topology topo, LpFabricConfig config, int threads)
    : topo_(std::move(topo)), config_(std::move(config)),
      plan_(makeLpPlan(topo_))
{
    INC_ASSERT(topo_.hosts >= 2, "LP fabric needs >= 2 hosts");
    INC_ASSERT(config_.segmentBytes % mssFor(config_.nic.mtu) == 0,
               "segmentBytes must be a multiple of the MSS (%llu)",
               static_cast<unsigned long long>(mssFor(config_.nic.mtu)));
    sched_ = std::make_unique<LpScheduler>(plan_.lpCount, plan_.lookahead,
                                           threads);
    hosts_.reserve(static_cast<size_t>(topo_.hosts));
    for (int i = 0; i < topo_.hosts; ++i)
        hosts_.push_back(std::make_unique<Host>(i, config_.nic));
    switches_.reserve(static_cast<size_t>(topo_.switches));
    aggEngines_.reserve(static_cast<size_t>(topo_.switches));
    for (int s = 0; s < topo_.switches; ++s) {
        switches_.push_back(std::make_unique<Switch>(config_.switchConfig));
        aggEngines_.push_back(
            std::make_unique<SwitchAggEngine>(config_.switchAgg));
    }
    links_.reserve(topo_.links.size());
    for (const TopoLink &l : topo_.links)
        links_.push_back(std::make_unique<Link>(
            "n" + std::to_string(l.src) + "->n" + std::to_string(l.dst),
            l.bitsPerSecond, l.latency));
    traces_.resize(static_cast<size_t>(plan_.lpCount));
    if (config_.captureSpans) {
        spanShards_.reserve(static_cast<size_t>(plan_.lpCount));
        for (int lp = 0; lp < plan_.lpCount; ++lp)
            spanShards_.emplace_back(lp);
        arrivalCause_.assign(static_cast<size_t>(plan_.lpCount), {});
    }
    delivered_.assign(static_cast<size_t>(topo_.hosts), 0);
    flowSeq_.assign(static_cast<size_t>(topo_.hosts), 0);
    resent_.assign(static_cast<size_t>(topo_.hosts + topo_.switches), 0);
    if (config_.lossy) {
        // Stateless draws only: the Gilbert-Elliott chain mutates
        // per-link state in judgment order, which has no deterministic
        // parallel counterpart.
        INC_ASSERT(config_.faults.defaultLink.loss !=
                       LossKind::GilbertElliott,
                   "LP fabric cannot run stateful Gilbert-Elliott loss");
        for (const auto &[h, profile] : config_.faults.hostOverrides) {
            (void)h;
            INC_ASSERT(profile.loss != LossKind::GilbertElliott,
                       "LP fabric cannot run stateful Gilbert-Elliott "
                       "loss");
        }
        // One shard per node (not just per host): the innet hop path
        // judges switch-sourced down-hops on the sending switch's LP.
        faults_.reserve(
            static_cast<size_t>(topo_.hosts + topo_.switches));
        for (int i = 0; i < topo_.hosts + topo_.switches; ++i)
            faults_.push_back(std::make_unique<FaultModel>(config_.faults));
    }
}

LpFabric::~LpFabric() = default;

void
LpFabric::trace(int lp, uint8_t kind, Tick t0, Tick t1, int src, int dst,
                uint64_t bytes)
{
    traces_[static_cast<size_t>(lp)].push_back(
        LpTraceRec{t0, t1, lp, kind, src, dst, bytes});
}

void
LpFabric::atHost(int i, Tick when, std::function<void()> fn)
{
    INC_ASSERT(i >= 0 && i < topo_.hosts, "bad host %d", i);
    sched_->schedule(lpOfNode(i), when, std::move(fn));
}

void
LpFabric::atNode(int node, Tick when, std::function<void()> fn)
{
    INC_ASSERT(node >= 0 && node < topo_.hosts + topo_.switches,
               "bad node %d", node);
    sched_->schedule(lpOfNode(node), when, std::move(fn));
}

Tick
LpFabric::nodeNow(int node) const
{
    return sched_->now(lpOfNode(node));
}

void
LpFabric::noteAgg(int node, Tick t0, Tick t1, int src, uint64_t bytes)
{
    const int lp = lpOfNode(node);
    INC_ASSERT(sched_->currentLp() == lp,
               "noteAgg() must run on node %d's LP", node);
    trace(lp, kTraceAgg, t0, t1, src, node, bytes);
}

spans::ShardRef
LpFabric::spanAt(int lp, spans::Kind kind, int host, Tick t0, Tick t1,
                 spans::ShardRef cause, std::string name)
{
    if (!config_.captureSpans)
        return {};
    return spanShards_[static_cast<size_t>(lp)].record(
        kind, host, t0, t1, spanParent_, cause, std::move(name));
}

spans::ShardRef
LpFabric::noteSpan(int node, spans::Kind kind, Tick t0, Tick t1,
                   spans::ShardRef cause, std::string name)
{
    if (!config_.captureSpans)
        return {};
    const int lp = lpOfNode(node);
    INC_ASSERT(sched_->currentLp() == lp,
               "noteSpan() must run on node %d's LP", node);
    return spanAt(lp, kind, isHost(node) ? node : -1, t0, t1, cause,
                  std::move(name));
}

spans::ShardRef
LpFabric::arrivalCause() const
{
    if (!config_.captureSpans)
        return {};
    const int lp = sched_->currentLp();
    INC_ASSERT(lp >= 0, "arrivalCause() outside an LP event");
    return arrivalCause_[static_cast<size_t>(lp)];
}

void
LpFabric::send(int src, int dst, uint64_t payloadBytes, uint8_t tos,
               double wireRatio, std::function<void(Tick)> onDelivered,
               spans::ShardRef cause)
{
    INC_ASSERT(src >= 0 && src < topo_.hosts && dst >= 0 &&
                   dst < topo_.hosts && src != dst,
               "bad transfer %d->%d", src, dst);
    INC_ASSERT(payloadBytes > 0, "empty transfer");
    INC_ASSERT(sched_->currentLp() == lpOfNode(src),
               "send() must run on the source host's LP (src=%d lp=%d)",
               src, sched_->currentLp());
    auto cb = std::make_shared<std::function<void(Tick)>>(
        std::move(onDelivered));

    if (config_.lossy) {
        const uint64_t mss = mssFor(config_.nic.mtu);
        const uint64_t packets = packetsFor(payloadBytes, config_.nic.mtu);
        const uint64_t tail = payloadBytes - (packets - 1) * mss;
        std::vector<uint64_t> seqs(packets);
        for (uint64_t s = 0; s < packets; ++s)
            seqs[s] = s;
        const uint64_t flow =
            (static_cast<uint64_t>(src) << 32) |
            flowSeq_[static_cast<size_t>(src)]++;
        shipLossy(src, dst, std::move(seqs), tail, packets - 1, 0, flow,
                  tos, wireRatio, std::move(cb), cause);
        return;
    }

    const bool compressed =
        config_.nic.hasCompressionEngine && tos == kCompressTos;
    const uint8_t etos = compressed ? tos : kDefaultTos;
    uint64_t remaining = payloadBytes;
    while (remaining > 0) {
        const uint64_t chunk = std::min(remaining, config_.segmentBytes);
        remaining -= chunk;
        const SegmentMeta meta =
            host(src).nic().planTx(chunk, etos, wireRatio);
        shipSegment(src, dst, meta, compressed, remaining == 0, chunk, cb,
                    cause);
    }
}

void
LpFabric::shipSegment(int src, int dst, const SegmentMeta &meta,
                      bool compressed, bool last, uint64_t flightPayload,
                      std::shared_ptr<std::function<void(Tick)>> cb,
                      spans::ShardRef cause)
{
    const int lp = lpOfNode(src);
    const Tick now = sched_->now(lp);
    Host &sh = host(src);

    // TX driver pipelining, exactly as Network::transfer: the uplink
    // may start after the first packet's host work; the TX resource
    // stays busy for the whole segment.
    const Tick txTotal = sh.nic().txHostCost(meta);
    const Tick txEnd = sh.occupyTx(now, txTotal);
    const Tick txStart = txEnd - txTotal;
    Tick ready = txStart + config_.nic.perPacketTxCost;
    uint64_t wireBits = meta.wireBits(config_.nic.mtu);

    auto carryPath = std::make_shared<const std::vector<int>>(
        topo_.route(src, dst));
    const std::vector<int> &path = *carryPath;
    const int firstIdx = topo_.linkIndex(src, path[1]);
    INC_ASSERT(firstIdx >= 0, "no link %d->%d", src, path[1]);
    Link &first = linkAt(firstIdx);

    if (compressed) {
        ready += sh.nic().engineLatency();
        const double engineBps = sh.nic().engineBitsPerSecond();
        if (engineBps < first.bitsPerSecond()) {
            const uint64_t minBits = static_cast<uint64_t>(
                static_cast<double>(meta.payloadBytes * 8) *
                first.bitsPerSecond() / engineBps);
            wireBits = std::max(wireBits, minBits);
        }
    }

    Tick start = 0;
    const Tick atNext = first.transmit(ready, wireBits, &start);
    trace(lp, kTraceTx, txStart, ready, src, dst, meta.payloadBytes);
    trace(lp, kTraceHop, start, atNext, src, dst, wireBits / 8);
    spans::ShardRef hopSpan{};
    if (config_.captureSpans) {
        const spans::ShardRef txSpan = spanAt(
            lp, spans::Kind::TxDriver, src, txStart, ready, cause,
            "tx.h" + std::to_string(src));
        hopSpan = spanAt(lp, spans::Kind::Hop, -1, start, atNext, txSpan,
                         "hop." + std::to_string(src) + "-" +
                             std::to_string(path[1]));
    }

    HopCarry carry;
    carry.path = std::move(carryPath);
    carry.hop = 1;
    carry.wireBits = wireBits;
    carry.prevStart = start;
    carry.prevTxEnd = atNext - first.latency();
    carry.prevPktTime =
        first.serializationTime(packetWireBits(config_.nic.mtu));
    carry.arrival = atNext;
    carry.meta = meta;
    carry.compressed = compressed;
    carry.last = last;
    carry.flightPayload = flightPayload;
    carry.cb = std::move(cb);
    carry.src = src;
    carry.dst = dst;
    carry.causeSpan = hopSpan;
    scheduleHop(path[1], atNext, std::move(carry));
}

void
LpFabric::scheduleHop(int node, Tick when, HopCarry carry)
{
    // The carried ticks hold the true timing; the event itself only
    // needs to fire no earlier. Clamping into the conservative window
    // keeps the lookahead contract airtight for any topology mix of
    // long and short links (the clamp is a pure function of the
    // sender's event tick, so it is width-invariant too).
    const int lp = lpOfNode(node);
    const int cur = sched_->currentLp();
    Tick fireAt = when;
    if (cur >= 0 && cur != lp)
        fireAt = std::max(fireAt, sched_->now(cur) + plan_.lookahead);
    sched_->schedule(lp, fireAt,
                     [this, node, c = std::move(carry)]() mutable {
                         hopArrive(node, std::move(c));
                     });
}

void
LpFabric::hopArrive(int node, HopCarry carry)
{
    const std::vector<int> &path = *carry.path;
    const int lp = lpOfNode(node);

    if (carry.hop + 1 == path.size()) {
        // Final hop: RX engine + driver on the destination host.
        INC_ASSERT(node == carry.dst, "route ended at the wrong host");
        const Tick atDst = carry.arrival;
        Tick rxReady = atDst;
        if (carry.compressed)
            rxReady += host(node).nic().engineLatency();
        (void)host(node).nic().rxHostCost(carry.meta);
        Tick deliveredAt = rxReady + config_.nic.perPacketRxCost;
        deliveredAt = std::max(deliveredAt, sched_->now(lp));
        trace(lp, kTraceRx, atDst, deliveredAt, carry.src, carry.dst,
              carry.flightPayload);
        const spans::ShardRef rxSpan = spanAt(
            lp, spans::Kind::RxDriver, node, atDst, deliveredAt,
            carry.causeSpan,
            config_.captureSpans ? "rx.h" + std::to_string(node)
                                 : std::string());
        delivered_[static_cast<size_t>(node)] += carry.flightPayload;
        if (carry.last && carry.cb) {
            auto cb = std::move(carry.cb);
            const int src = carry.src, dst = carry.dst;
            const uint64_t bytes = carry.flightPayload;
            sched_->schedule(lp, deliveredAt,
                             [this, lp, cb, deliveredAt, src, dst,
                              bytes, rxSpan] {
                                 trace(lp, kTraceDeliver, deliveredAt,
                                       deliveredAt, src, dst, bytes);
                                 if (config_.captureSpans)
                                     arrivalCause_[static_cast<size_t>(
                                         lp)] = rxSpan;
                                 (*cb)(deliveredAt);
                                 if (config_.captureSpans)
                                     arrivalCause_[static_cast<size_t>(
                                         lp)] = {};
                             });
        }
        return;
    }

    // Switch hop: per-packet cut-through forwarding, the same math as
    // Network::shipAlongPath with the loop state carried in.
    Switch &sw = switchAt(node);
    const int next = path[carry.hop + 1];
    const int linkIdx = topo_.linkIndex(node, next);
    INC_ASSERT(linkIdx >= 0, "no link %d->%d", node, next);
    Link &out = linkAt(linkIdx);

    const Tick ser = out.serializationTime(carry.wireBits);
    const Tick ct = carry.prevStart + carry.prevPktTime;
    const Tick tail = carry.prevTxEnd + carry.prevPktTime;
    const Tick noOutrun = tail > ser ? tail - ser : 0;
    const Tick hopReady = sw.readyToForward(std::max(ct, noOutrun));
    sw.noteForward();

    Tick start = 0;
    const Tick atNext = out.transmit(hopReady, carry.wireBits, &start);
    trace(lp, kTraceHop, start, atNext, carry.src, carry.dst,
          carry.wireBits / 8);
    if (config_.captureSpans)
        carry.causeSpan =
            spanAt(lp, spans::Kind::Hop, -1, start, atNext,
                   carry.causeSpan,
                   "hop." + std::to_string(node) + "-" +
                       std::to_string(next));

    carry.hop += 1;
    carry.prevStart = start;
    carry.prevTxEnd = atNext - out.latency();
    carry.prevPktTime =
        out.serializationTime(packetWireBits(config_.nic.mtu));
    carry.arrival = atNext;
    scheduleHop(next, atNext, std::move(carry));
}

Tick
LpFabric::pathDelayBound(int src, int dst, uint64_t wireBits) const
{
    // Pure function of the topology: per hop, full serialization plus
    // propagation plus forwarding latency, plus host-side costs. Used
    // as the idealized-ACK delay before a retransmission.
    const std::vector<int> path = topo_.route(src, dst);
    Tick bound = config_.nic.perPacketTxCost + config_.nic.perPacketRxCost;
    for (size_t h = 0; h + 1 < path.size(); ++h) {
        const int idx = topo_.linkIndex(path[h], path[h + 1]);
        const TopoLink &l = topo_.link(idx);
        const Tick ser = static_cast<Tick>(
            static_cast<double>(wireBits) / l.bitsPerSecond *
            static_cast<double>(kSecond));
        bound += ser + l.latency + config_.switchConfig.forwardingLatency;
    }
    return bound;
}

void
LpFabric::shipLossy(int src, int dst, std::vector<uint64_t> seqs,
                    uint64_t tailBytes, uint64_t lastSeq, uint32_t attempt,
                    uint64_t flowId, uint8_t tos, double wireRatio,
                    std::shared_ptr<std::function<void(Tick)>> cb,
                    spans::ShardRef cause)
{
    INC_ASSERT(attempt < config_.maxAttempts,
               "flow %llu gave up after %u attempts (outage too long?)",
               static_cast<unsigned long long>(flowId), attempt);
    const int lp = lpOfNode(src);
    const Tick now = sched_->now(lp);
    const uint64_t mss = mssFor(config_.nic.mtu);
    FaultModel &fm = *faults_[static_cast<size_t>(src)];

    // All fates are decided on the sender's shard: the draws are pure
    // functions of (seed, stream, link, flow, seq, attempt), so every
    // shard agrees; only the stats land here.
    std::vector<uint64_t> lost;
    uint64_t survivorPayload = 0;
    size_t survivors = 0;
    for (const uint64_t s : seqs) {
        if (isDrop(fm.judge(src, LinkDir::Up, now, flowId, s, attempt)) ||
            isDrop(fm.judge(dst, LinkDir::Down, now, flowId, s,
                            attempt))) {
            lost.push_back(s);
            continue;
        }
        ++survivors;
        survivorPayload += s == lastSeq ? tailBytes : mss;
    }

    const bool compressed =
        config_.nic.hasCompressionEngine && tos == kCompressTos;
    const uint8_t etos = compressed ? tos : kDefaultTos;

    if (survivors > 0) {
        const SegmentMeta meta =
            host(src).nic().planTx(survivorPayload, etos, wireRatio);
        shipSegment(src, dst, meta, compressed, lost.empty(),
                    survivorPayload, lost.empty() ? cb : nullptr, cause);
    }
    if (!lost.empty()) {
        // Idealized selective repeat: after one full path delay out and
        // back, resend exactly the lost packets with fresh draws.
        uint64_t lostPayload = 0;
        for (const uint64_t s : lost)
            lostPayload += s == lastSeq ? tailBytes : mss;
        const SegmentMeta lostMeta =
            host(src).nic().planTx(lostPayload, etos, wireRatio);
        const Tick rtt =
            2 * pathDelayBound(src, dst,
                               lostMeta.wireBits(config_.nic.mtu));
        const Tick retryAt = now + rtt;
        trace(lp, kTraceRetry, now, retryAt, src, dst, lost.size());
        const spans::ShardRef retxSpan =
            spanAt(lp, spans::Kind::Retransmit, src, now, retryAt, cause,
                   config_.captureSpans ? "retx.h" + std::to_string(src)
                                        : std::string());
        resent_[static_cast<size_t>(src)] += lost.size();
        sched_->schedule(
            lp, retryAt,
            [this, src, dst, lost = std::move(lost), tailBytes, lastSeq,
             attempt, flowId, tos, wireRatio, cb, retxSpan]() mutable {
                shipLossy(src, dst, std::move(lost), tailBytes, lastSeq,
                          attempt + 1, flowId, tos, wireRatio,
                          std::move(cb), retxSpan);
            });
    }
}

void
LpFabric::sendHop(int src, int dst, uint64_t payloadBytes, bool coded,
                  uint64_t flowId, std::function<void(Tick)> onArrive,
                  spans::ShardRef cause)
{
    const int n = topo_.hosts + topo_.switches;
    INC_ASSERT(src >= 0 && src < n && dst >= 0 && dst < n && src != dst,
               "bad hop %d->%d", src, dst);
    INC_ASSERT(topo_.linkIndex(src, dst) >= 0,
               "hop %d->%d is not a fabric link", src, dst);
    INC_ASSERT(payloadBytes > 0, "empty hop");
    INC_ASSERT(sched_->currentLp() == lpOfNode(src),
               "sendHop() must run on the source node's LP (src=%d lp=%d)",
               src, sched_->currentLp());
    auto cb = std::make_shared<std::function<void(Tick)>>(
        std::move(onArrive));

    if (config_.lossy) {
        const uint64_t mss = mssFor(config_.nic.mtu);
        const uint64_t packets = packetsFor(payloadBytes, config_.nic.mtu);
        const uint64_t tail = payloadBytes - (packets - 1) * mss;
        std::vector<uint64_t> seqs(packets);
        for (uint64_t s = 0; s < packets; ++s)
            seqs[s] = s;
        hopLossy(src, dst, std::move(seqs), tail, packets - 1, 0, flowId,
                 coded, std::move(cb), cause);
        return;
    }
    hopShip(src, dst, payloadBytes, coded, std::move(cb), cause);
}

void
LpFabric::hopShip(int src, int dst, uint64_t payloadBytes, bool coded,
                  std::shared_ptr<std::function<void(Tick)>> cb,
                  spans::ShardRef cause)
{
    const int lp = lpOfNode(src);
    const Tick now = sched_->now(lp);
    const int linkIdx = topo_.linkIndex(src, dst);
    INC_ASSERT(linkIdx >= 0, "no link %d->%d", src, dst);
    Link &link = linkAt(linkIdx);

    const uint64_t packets = packetsFor(payloadBytes, config_.nic.mtu);
    uint64_t wireBits =
        (payloadBytes + packets * (kHeaderBytes + kFramingBytes)) * 8;
    Tick ready = now;
    spans::ShardRef hopCause = cause;
    if (isHost(src)) {
        // The hop payload already *is* the wire form (coded chunks stay
        // coded on the wire); the NIC charges driver/DMA cost plus, for
        // coded chunks, the engine pipeline latency.
        const SegmentMeta meta =
            host(src).nic().planTx(payloadBytes, kDefaultTos, 1.0);
        const Tick txTotal = host(src).nic().txHostCost(meta);
        const Tick txEnd = host(src).occupyTx(now, txTotal);
        const Tick txStart = txEnd - txTotal;
        ready = txStart + config_.nic.perPacketTxCost;
        if (coded && config_.nic.hasCompressionEngine)
            ready += host(src).nic().engineLatency();
        wireBits = meta.wireBits(config_.nic.mtu);
        trace(lp, kTraceTx, txStart, ready, src, dst, payloadBytes);
        if (config_.captureSpans)
            hopCause = spanAt(lp, spans::Kind::TxDriver, src, txStart,
                              ready, cause,
                              "tx.h" + std::to_string(src));
    } else {
        switchAt(src).noteForward();
    }

    Tick start = 0;
    const Tick atNext = link.transmit(ready, wireBits, &start);
    trace(lp, kTraceHop, start, atNext, src, dst, wireBits / 8);
    spans::ShardRef hopSpan{};
    if (config_.captureSpans)
        hopSpan = spanAt(lp, spans::Kind::Hop, -1, start, atNext,
                         hopCause,
                         "hop." + std::to_string(src) + "-" +
                             std::to_string(dst));

    const int dlp = lpOfNode(dst);
    Tick fireAt = atNext;
    if (dlp != lp)
        fireAt = std::max(fireAt, now + plan_.lookahead);
    sched_->schedule(dlp, fireAt, [this, src, dst, dlp, payloadBytes,
                                   coded, atNext, cb = std::move(cb),
                                   hopSpan] {
        if (!isHost(dst)) {
            // Switch destination: the arriving hop span itself is the
            // cause the switch FSM chains from.
            if (cb && *cb) {
                if (config_.captureSpans)
                    arrivalCause_[static_cast<size_t>(dlp)] = hopSpan;
                (*cb)(atNext);
                if (config_.captureSpans)
                    arrivalCause_[static_cast<size_t>(dlp)] = {};
            }
            return;
        }
        // Host destination: RX engine + driver, as in hopArrive().
        Tick rxReady = atNext;
        if (coded && config_.nic.hasCompressionEngine)
            rxReady += host(dst).nic().engineLatency();
        SegmentMeta meta;
        meta.payloadBytes = payloadBytes;
        meta.wirePayloadBytes = payloadBytes;
        (void)host(dst).nic().rxHostCost(meta);
        Tick deliveredAt = rxReady + config_.nic.perPacketRxCost;
        deliveredAt = std::max(deliveredAt, sched_->now(dlp));
        trace(dlp, kTraceRx, atNext, deliveredAt, src, dst, payloadBytes);
        const spans::ShardRef rxSpan = spanAt(
            dlp, spans::Kind::RxDriver, dst, atNext, deliveredAt, hopSpan,
            config_.captureSpans ? "rx.h" + std::to_string(dst)
                                 : std::string());
        delivered_[static_cast<size_t>(dst)] += payloadBytes;
        if (cb && *cb) {
            if (config_.captureSpans)
                arrivalCause_[static_cast<size_t>(dlp)] = rxSpan;
            (*cb)(deliveredAt);
            if (config_.captureSpans)
                arrivalCause_[static_cast<size_t>(dlp)] = {};
        }
    });
}

void
LpFabric::hopLossy(int src, int dst, std::vector<uint64_t> seqs,
                   uint64_t tailBytes, uint64_t lastSeq, uint32_t attempt,
                   uint64_t flowId, bool coded,
                   std::shared_ptr<std::function<void(Tick)>> cb,
                   spans::ShardRef cause)
{
    INC_ASSERT(attempt < config_.maxAttempts,
               "hop flow %llu gave up after %u attempts",
               static_cast<unsigned long long>(flowId), attempt);
    const int lp = lpOfNode(src);
    const Tick now = sched_->now(lp);
    const uint64_t mss = mssFor(config_.nic.mtu);
    FaultModel &fm = *faults_[static_cast<size_t>(src)];

    // Only host cables carry fault profiles (as on the classic path);
    // judged on the sender's shard with draw keys from the caller's
    // content-derived flowId, so fates are independent of same-tick
    // processing order at the switches.
    std::vector<uint64_t> lost;
    uint64_t survivorPayload = 0;
    size_t survivors = 0;
    for (const uint64_t s : seqs) {
        bool drop = false;
        if (isHost(src))
            drop = isDrop(
                fm.judge(src, LinkDir::Up, now, flowId, s, attempt));
        if (!drop && isHost(dst))
            drop = isDrop(
                fm.judge(dst, LinkDir::Down, now, flowId, s, attempt));
        if (drop) {
            lost.push_back(s);
            continue;
        }
        ++survivors;
        survivorPayload += s == lastSeq ? tailBytes : mss;
    }

    if (survivors > 0)
        hopShip(src, dst, survivorPayload, coded,
                lost.empty() ? cb : nullptr, cause);
    if (!lost.empty()) {
        uint64_t lostPayload = 0;
        for (const uint64_t s : lost)
            lostPayload += s == lastSeq ? tailBytes : mss;
        const uint64_t lostPackets =
            packetsFor(lostPayload, config_.nic.mtu);
        const uint64_t wireBits =
            (lostPayload + lostPackets * (kHeaderBytes + kFramingBytes)) *
            8;
        const TopoLink &l = topo_.link(topo_.linkIndex(src, dst));
        const Tick ser = static_cast<Tick>(
            static_cast<double>(wireBits) / l.bitsPerSecond *
            static_cast<double>(kSecond));
        const Tick bound = ser + l.latency +
                           config_.switchConfig.forwardingLatency +
                           config_.nic.perPacketTxCost +
                           config_.nic.perPacketRxCost;
        const Tick retryAt = now + 2 * bound;
        trace(lp, kTraceRetry, now, retryAt, src, dst, lost.size());
        const spans::ShardRef retxSpan = spanAt(
            lp, spans::Kind::Retransmit, isHost(src) ? src : -1, now,
            retryAt, cause,
            config_.captureSpans
                ? (isHost(src) ? "retx.h" + std::to_string(src)
                               : "retx.n" + std::to_string(src))
                : std::string());
        resent_[static_cast<size_t>(src)] += lost.size();
        sched_->schedule(
            lp, retryAt,
            [this, src, dst, lost = std::move(lost), tailBytes, lastSeq,
             attempt, flowId, coded, cb, retxSpan]() mutable {
                hopLossy(src, dst, std::move(lost), tailBytes, lastSeq,
                         attempt + 1, flowId, coded, std::move(cb),
                         retxSpan);
            });
    }
}

uint64_t
LpFabric::deliveredBytes() const
{
    uint64_t total = 0;
    for (const uint64_t b : delivered_)
        total += b;
    return total;
}

FaultStats
LpFabric::faultTotals() const
{
    FaultStats total;
    for (const auto &fm : faults_) {
        const FaultStats &s = fm->stats();
        total.packetsJudged += s.packetsJudged;
        total.randomDrops += s.randomDrops;
        total.burstDrops += s.burstDrops;
        total.corruptions += s.corruptions;
        total.outageDrops += s.outageDrops;
        total.queueDrops += s.queueDrops;
    }
    return total;
}

uint64_t
LpFabric::retransmittedPackets() const
{
    uint64_t total = 0;
    for (const uint64_t n : resent_)
        total += n;
    return total;
}

SwitchAggStats
LpFabric::aggTotals() const
{
    SwitchAggStats total;
    for (const auto &e : aggEngines_) {
        const SwitchAggStats &s = e->stats();
        total.folds += s.folds;
        total.foldedBytes += s.foldedBytes;
        total.codecBytes += s.codecBytes;
        total.cycles += s.cycles;
        total.forwards += s.forwards;
        total.slotWaits += s.slotWaits;
        total.peakSlotsInUse =
            std::max(total.peakSlotsInUse, s.peakSlotsInUse);
    }
    return total;
}

std::string
LpFabric::renderMetricsCsv() const
{
    // Every aggregate folds the per-LP shards in index order; all
    // values are integers, so the bytes are exact and width-invariant.
    uint64_t linkBits = 0;
    Tick linkBusy = 0;
    for (const auto &l : links_) {
        linkBits += l->bitsCarried();
        linkBusy += l->busyTime();
    }
    uint64_t forwarded = 0;
    for (const auto &s : switches_)
        forwarded += s->forwarded();
    Tick cpuBusy = 0;
    uint64_t txPackets = 0, rxPackets = 0, txWireBytes = 0;
    for (const auto &h : hosts_) {
        cpuBusy += h->cpuBusyTime();
        txPackets += h->nic().stats().txPackets;
        rxPackets += h->nic().stats().rxPackets;
        txWireBytes += h->nic().stats().txWireBytes;
    }
    const FaultStats faults = faultTotals();

    std::string out;
    auto row = [&out](const char *name, uint64_t v) {
        out += name;
        out += ',';
        out += std::to_string(v);
        out += '\n';
    };
    row("fabric.delivered_bytes", deliveredBytes());
    row("fabric.link_bits", linkBits);
    row("fabric.link_busy_ticks", linkBusy);
    row("fabric.switch_forwarded", forwarded);
    row("fabric.host_cpu_busy_ticks", cpuBusy);
    row("fabric.nic_tx_packets", txPackets);
    row("fabric.nic_rx_packets", rxPackets);
    row("fabric.nic_tx_wire_bytes", txWireBytes);
    row("fabric.faults_judged", faults.packetsJudged);
    row("fabric.faults_drops", faults.drops());
    row("fabric.retransmitted_packets", retransmittedPackets());
    const SwitchAggStats agg = aggTotals();
    row("fabric.agg_folds", agg.folds);
    row("fabric.agg_folded_bytes", agg.foldedBytes);
    row("fabric.agg_codec_bytes", agg.codecBytes);
    row("fabric.agg_forwards", agg.forwards);
    row("fabric.agg_slot_waits", agg.slotWaits);
    for (int i = 0; i < topo_.hosts; ++i) {
        out += "host" + std::to_string(i) + ".delivered_bytes," +
               std::to_string(delivered_[static_cast<size_t>(i)]) + '\n';
    }
    return out;
}

std::vector<LpTraceRec>
LpFabric::mergedTrace() const
{
    std::vector<LpTraceRec> all;
    size_t total = 0;
    for (const auto &shard : traces_)
        total += shard.size();
    all.reserve(total);
    for (const auto &shard : traces_)
        all.insert(all.end(), shard.begin(), shard.end());
    // Stable by (t0, lp): same-LP records keep their deterministic
    // emission order, so the merged stream is width-invariant.
    std::stable_sort(all.begin(), all.end(),
                     [](const LpTraceRec &a, const LpTraceRec &b) {
                         return a.t0 != b.t0 ? a.t0 < b.t0 : a.lp < b.lp;
                     });
    return all;
}

std::vector<spans::Span>
LpFabric::mergedSpans() const
{
    INC_ASSERT(config_.captureSpans,
               "mergedSpans() needs config.captureSpans");
    std::vector<const spans::Shard *> shards;
    shards.reserve(spanShards_.size() + 1);
    shards.push_back(&rootSpans_);
    for (const spans::Shard &s : spanShards_)
        shards.push_back(&s);
    return spans::mergeSpanShards(shards);
}

std::string
LpFabric::renderSpansCsv() const
{
    return spans::renderSpansCsv(mergedSpans());
}

std::string
LpFabric::renderTraceCsv() const
{
    std::string out = "t0,t1,lp,kind,src,dst,bytes\n";
    for (const LpTraceRec &r : mergedTrace()) {
        out += std::to_string(r.t0) + ',' + std::to_string(r.t1) + ',' +
               std::to_string(r.lp) + ',' + std::to_string(r.kind) + ',' +
               std::to_string(r.src) + ',' + std::to_string(r.dst) + ',' +
               std::to_string(r.bytes) + '\n';
    }
    return out;
}

} // namespace inc
