/**
 * @file
 * NIC model with optional in-line compression/decompression engines
 * (paper Fig. 8). The TX path charges per-packet driver/DMA cost and,
 * for ToS-0x28 traffic, shrinks the wire payload through the gradient
 * codec's measured ratio while adding the engine's pipeline latency.
 * The engine's input throughput (256 bit/cycle at the engine clock)
 * caps the effective line rate if ever configured below the link speed.
 */

#ifndef INCEPTIONN_NET_NIC_H
#define INCEPTIONN_NET_NIC_H

#include <cstdint>

#include "net/packet.h"
#include "sim/event_queue.h"

namespace inc {

/** Static NIC parameters. */
struct NicConfig
{
    /** Engines present (a VC709-style NIC) or absent (Intel X540). */
    bool hasCompressionEngine = false;
    /** Engine clock (paper: 100 MHz). */
    double engineClockHz = 100e6;
    /** AXI beat width in bits (paper: 256). */
    int engineBurstBits = 256;
    /**
     * Engine intake in fp32 values per cycle. The paper's engine eats
     * one 256-bit beat (8 values) per cycle; pluggable codecs override
     * this from their CodecCostModel (see comm/gradient_codec.h). The
     * default matches engineBurstBits / 32.
     */
    double engineValuesPerCycle = 8.0;
    /** Engine pipeline depth in cycles. */
    int enginePipelineCycles = 4;
    /** Host driver + DMA cost charged per packet on TX. */
    Tick perPacketTxCost = 200 * kNanosecond;
    /** Host driver + interrupt cost charged per packet on RX. */
    Tick perPacketRxCost = 200 * kNanosecond;
    /** MTU of the attached network. */
    uint64_t mtu = kDefaultMtu;
    /**
     * TX descriptor-ring depth in packets. kUnboundedQueue keeps the
     * legacy ideal NIC; a finite depth tail-drops packets on the
     * datagram path when the uplink backlog exceeds it (a real X540
     * ring holds 512-4096 descriptors).
     */
    int txQueuePackets = kUnboundedQueue;
};

/** Per-NIC lifetime counters. */
struct NicStats
{
    uint64_t txPackets = 0;
    uint64_t rxPackets = 0;
    uint64_t txPayloadBytes = 0;
    uint64_t txWireBytes = 0;
    uint64_t compressedSegments = 0;
    /** Packets tail-dropped at a full TX ring (datagram path). */
    uint64_t txQueueDrops = 0;
};

/**
 * NIC timing model. Stateless apart from counters: the surrounding
 * Network serializes transfers on the links, so the NIC only computes
 * costs.
 */
class Nic
{
  public:
    explicit Nic(NicConfig config) : config_(config) {}

    const NicConfig &config() const { return config_; }
    const NicStats &stats() const { return stats_; }

    /**
     * Plan the TX of a segment. @p wire_ratio is the compression ratio
     * the codec achieves on this payload (payload/wire, >= 1); it is
     * honoured only when the engine exists and @p tos == kCompressTos.
     */
    SegmentMeta planTx(uint64_t payload_bytes, uint8_t tos,
                       double wire_ratio);

    /** Host-side cost of pushing @p meta through the TX driver path. */
    Tick txHostCost(const SegmentMeta &meta) const;

    /** Host-side cost of receiving @p meta. */
    Tick rxHostCost(const SegmentMeta &meta);

    /** Fixed latency a compressed segment spends in an engine pipeline. */
    Tick engineLatency() const;

    /** Engine input bandwidth in bits/second. */
    double engineBitsPerSecond() const;

    /** Record @p n packets tail-dropped at the TX ring. */
    void noteTxQueueDrops(uint64_t n) { stats_.txQueueDrops += n; }

    /** True if this NIC will compress a segment with @p tos. */
    bool
    compresses(uint8_t tos) const
    {
        return config_.hasCompressionEngine && tos == kCompressTos;
    }

  private:
    NicConfig config_;
    NicStats stats_;
};

} // namespace inc

#endif // INCEPTIONN_NET_NIC_H
