/**
 * @file
 * The simulated cluster: N hosts in a star around one switch, full-duplex
 * links. Message transfers are segmented, pipelined through the
 * TX-driver -> compression engine -> uplink -> switch -> downlink ->
 * decompression engine -> RX-driver chain, and delivered via callback.
 */

#ifndef INCEPTIONN_NET_NETWORK_H
#define INCEPTIONN_NET_NETWORK_H

#include <functional>
#include <memory>
#include <vector>

#include "net/fabric.h"
#include "net/host.h"
#include "net/link.h"
#include "net/switch.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace inc {

class FaultModel;
class TimelineRecorder;

/** Cluster-wide configuration. */
struct NetworkConfig
{
    int nodes = 4;
    double linkBitsPerSecond = 10e9; ///< 10 GbE
    Tick linkLatency = 500 * kNanosecond;
    SwitchConfig switchConfig{};
    NicConfig nicConfig{};
    /**
     * Segment size for simulation granularity. Per-packet overheads are
     * computed exactly from the packet count regardless of this value;
     * it only batches events. Must be a multiple of the MSS to avoid
     * fragment rounding between segmented and unsegmented runs.
     */
    uint64_t segmentBytes = 365 * 1460; // 365 MSS-sized packets, ~533 KB
    /**
     * Per-host link-speed overrides (host id, bits/second), applied to
     * both directions of that host's cable — degraded cables, slower
     * NICs, straggler studies. Hosts not listed use
     * linkBitsPerSecond.
     */
    std::vector<std::pair<int, double>> linkSpeedOverrides;
    /**
     * Two-tier datacenter topology (paper Sec. VII-C: full speed within
     * a rack, oversubscribed between top-of-rack switches). 0 keeps the
     * single-switch star; otherwise hosts [r*hostsPerRack,
     * (r+1)*hostsPerRack) share rack r's ToR switch, and inter-rack
     * traffic additionally crosses the ToR<->core links below.
     */
    int hostsPerRack = 0;
    /** ToR <-> core link speed (the oversubscribed tier). */
    double coreLinkBitsPerSecond = 10e9;
    /** Extra propagation latency of a ToR <-> core hop. */
    Tick coreLinkLatency = 1 * kMicrosecond;
    /**
     * Per-segment delivery jitter: |N(0, sigma)| seconds added to each
     * segment's host-side completion (interrupt coalescing, scheduler
     * noise). 0 disables. Deterministic for a given jitterSeed.
     */
    double jitterStddevSeconds = 0.0;
    uint64_t jitterSeed = 0x71772;
};

/** Star-topology (or two-tier) packet-level cluster simulator. */
class Network : public Fabric
{
  public:
    Network(EventQueue &events, NetworkConfig config);

    EventQueue &events() override { return events_; }
    const NetworkConfig &config() const { return config_; }
    int nodes() const override { return config_.nodes; }

    Host &
    host(int i) override
    {
        return *hosts_[static_cast<size_t>(i)];
    }
    Link &uplink(int i) { return *uplinks_[static_cast<size_t>(i)]; }
    Link &downlink(int i) { return *downlinks_[static_cast<size_t>(i)]; }
    Switch &fabric() { return switch_; }

    /** Rack of host @p i (0 when single-switch). */
    int rackOf(int i) const;
    /** Number of racks (1 when single-switch). */
    int racks() const;
    /** ToR-to-core link of rack @p r (two-tier mode only). */
    Link &rackUplink(int r) { return *rackUplinks_[static_cast<size_t>(r)]; }
    Link &rackDownlink(int r)
    {
        return *rackDownlinks_[static_cast<size_t>(r)];
    }

    /**
     * Start a transfer; @p on_delivered fires (once, at the delivery
     * tick) after the last segment reaches the destination host memory.
     * Must be called from simulation context (event callbacks) so that
     * initiations are time-ordered. This path is the idealized reliable
     * message service: fault injection and finite queues never touch
     * it (lossy experiments go through transferDatagram + the reliable
     * channel).
     */
    void transfer(const TransferRequest &req,
                  std::function<void(Tick)> on_delivered) override;

    uint64_t mtu() const override { return config_.nicConfig.mtu; }

    /**
     * The lossy datagram path: per-packet fates from the attached
     * FaultModel plus tail drops at finite NIC/switch queues. The
     * arrival callback fires at the flight's arrival tick with the
     * loss verdicts, or never if nothing survived. Delivery jitter
     * (jitterStddevSeconds) is not applied here — the reliable
     * channel's own timers model host-side timing noise.
     */
    void transferDatagram(
        const DatagramRequest &req,
        std::function<void(const DatagramResult &)> on_arrival) override;

    /**
     * Attach a fault scenario consulted by the datagram path (nullptr
     * detaches; not owned). Finite queue depths apply independently of
     * attachment, but drops are mirrored into the model's stats when
     * one is present.
     */
    void attachFaults(FaultModel *faults) { faults_ = faults; }
    FaultModel *faults() { return faults_; }

    /** Total payload bytes delivered so far. */
    uint64_t deliveredBytes() const { return deliveredBytes_; }

    /**
     * Attach a Chrome-trace recorder: every segment's occupancy of
     * every link becomes a timeline event (nullptr detaches). Not
     * owned.
     */
    void setTimeline(TimelineRecorder *timeline) { timeline_ = timeline; }
    TimelineRecorder *timeline() const override { return timeline_; }

  private:
    /** Directed links a src->dst segment traverses, in hop order. */
    std::vector<Link *> pathFor(int src, int dst);
    /**
     * Serialize @p hop_bits[h] over @p path[h] starting no earlier than
     * @p ready, with per-packet cut-through between hops (the loop
     * shared by transfer() and transferDatagram()).
     *
     * When @p parent_span is nonzero and span tracing is active, one
     * Hop span per link is recorded under it, chained causally from
     * @p cause_span; @p last_span_out (if non-null) receives the final
     * hop's span id. When a timeline label is given, Perfetto flow
     * events ("s"/"t"/"f") connect the per-link slices so one segment
     * can be followed across the fabric.
     * @return the tick the last bit reaches the final link's far end.
     */
    Tick shipAlongPath(const std::vector<Link *> &path, Tick ready,
                       const std::vector<uint64_t> &hop_bits,
                       const char *timeline_label,
                       uint64_t parent_span = 0, uint64_t cause_span = 0,
                       uint64_t *last_span_out = nullptr);
    /** Backlog of @p link at @p ready, in full-size packet units. */
    uint64_t backlogPackets(const Link &link, Tick ready) const;

    EventQueue &events_;
    NetworkConfig config_;
    Switch switch_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Link>> uplinks_;
    std::vector<std::unique_ptr<Link>> downlinks_;
    std::vector<std::unique_ptr<Link>> rackUplinks_;
    std::vector<std::unique_ptr<Link>> rackDownlinks_;
    uint64_t deliveredBytes_ = 0;
    uint64_t flowSeq_ = 0; ///< Perfetto flow-event id allocator
    TimelineRecorder *timeline_ = nullptr;
    FaultModel *faults_ = nullptr;
    Rng jitterRng_;
};

} // namespace inc

#endif // INCEPTIONN_NET_NETWORK_H
