/**
 * @file
 * Flow-level (fluid) network simulation with max-min fair bandwidth
 * sharing — the transport-model alternative to Network's FIFO
 * store-and-forward queues. Real concurrent TCP flows converge to an
 * approximately fair share of every bottleneck; modelling that directly
 * lets the experiments check that the paper's conclusions do not hinge
 * on the queueing discipline (bench_ext_transport).
 *
 * Mechanics: each active transfer is a fluid flow over the same
 * star / two-tier link set Network uses. Whenever a flow starts or
 * finishes, rates are recomputed by progressive water-filling (find the
 * most-loaded link, freeze its flows at the fair share, repeat), and
 * the next completion event is scheduled. Per-packet header overhead is
 * carried in the flow's wire size; NIC compression (ToS 0x28) shrinks
 * payloads exactly as in Network.
 */

#ifndef INCEPTIONN_NET_FLUID_H
#define INCEPTIONN_NET_FLUID_H

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/host.h"
#include "net/network.h"

namespace inc {

/** Fluid-model cluster simulator (same config type as Network). */
class FluidNetwork : public Fabric
{
  public:
    FluidNetwork(EventQueue &events, NetworkConfig config);

    EventQueue &events() override { return events_; }
    const NetworkConfig &config() const { return config_; }
    int nodes() const override { return config_.nodes; }
    Host &
    host(int i) override
    {
        return *hosts_[static_cast<size_t>(i)];
    }

    /** Start a transfer; @p on_delivered fires at the delivery tick. */
    void transfer(const TransferRequest &req,
                  std::function<void(Tick)> on_delivered) override;

    /** Flows currently draining. */
    size_t activeFlows() const { return flows_.size(); }

    /** Total payload bytes delivered so far. */
    uint64_t deliveredBytes() const { return deliveredBytes_; }

  private:
    struct Flow
    {
        uint64_t id;
        std::vector<int> links;     ///< directed link indices
        double remainingBits;       ///< wire bits still to drain
        double rate = 0.0;          ///< bits/second, current allocation
        Tick fixedTail;             ///< latency added after draining
        uint64_t payloadBytes;
        std::function<void(Tick)> onDelivered;
    };

    void recomputeRates();
    void drainTo(Tick now_tick);
    void scheduleNextCompletion();
    std::vector<int> pathFor(int src, int dst) const;

    EventQueue &events_;
    NetworkConfig config_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<double> linkCapacity_; ///< bits/sec per directed link
    std::map<uint64_t, Flow> flows_;
    uint64_t nextFlowId_ = 0;
    uint64_t epoch_ = 0;    ///< invalidates stale completion events
    Tick lastDrain_ = 0;    ///< time rates were last integrated to
    uint64_t deliveredBytes_ = 0;
};

} // namespace inc

#endif // INCEPTIONN_NET_FLUID_H
