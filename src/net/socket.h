/**
 * @file
 * Berkeley-socket-flavoured facade over the simulated cluster — the
 * software-stack story of paper Fig. 11. A DNN training application
 * opens a TCP-ish connection per peer, calls setsockopt(IP_TOS, 0x28)
 * on sockets that carry gradients (the paper's
 * MPI_collective_communication_comp does exactly this underneath), and
 * sends; the NIC decides per packet whether the engines engage.
 *
 * Connection establishment charges a 1.5-RTT handshake before the first
 * payload; sends on one socket deliver in order (the underlying links
 * are FIFO).
 *
 * A stack opened in reliable mode routes every send through a
 * ReliableChannel (net/reliable.h) over the lossy datagram path, so
 * sockets survive an attached FaultModel with TCP-style recovery; the
 * per-socket stats then expose the receive side of the story
 * (delivered packets/bytes, retransmissions, observed drops).
 */

#ifndef INCEPTIONN_NET_SOCKET_H
#define INCEPTIONN_NET_SOCKET_H

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/network.h"
#include "net/reliable.h"

namespace inc {

class SocketStack;

/** Socket options, setsockopt-style. */
enum class SocketOption {
    IpTos, ///< 8-bit IP Type-of-Service field (0x28 requests compression)
};

/** Per-socket byte/packet counters (send and receive side). */
struct SocketStats
{
    uint64_t sends = 0;
    uint64_t payloadBytes = 0;
    /** Packets of first-time in-order payload at the receiver. */
    uint64_t deliveredPackets = 0;
    /** Payload bytes of those packets. */
    uint64_t deliveredBytes = 0;
    /** Retransmitted packets (reliable mode only). */
    uint64_t retransmits = 0;
    /** Packet losses the transport observed (reliable mode only). */
    uint64_t dropsObserved = 0;
};

/**
 * One simulated TCP connection between two hosts. Create through
 * SocketStack::connect().
 */
class SimSocket
{
  public:
    /** setsockopt(): currently only IpTos, matching the paper's use. */
    void setOption(SocketOption opt, uint32_t value);

    /** Current ToS value. */
    uint8_t tos() const { return tos_; }

    /**
     * Queue @p bytes for transmission. @p wire_ratio is the codec ratio
     * the payload would achieve (honoured only when the socket ToS is
     * 0x28 and both NICs carry engines). @p on_delivered fires at the
     * delivery tick; deliveries on one socket are in send order.
     */
    void send(uint64_t bytes, double wire_ratio,
              std::function<void(Tick)> on_delivered);

    int srcRank() const { return src_; }
    int dstRank() const { return dst_; }
    /** Counters, including the reliable channels' receive side. */
    SocketStats stats() const;

    /** Tick at which the handshake completes. */
    Tick establishedAt() const { return established_; }

  private:
    friend class SocketStack;
    SimSocket(SocketStack &stack, Network &net, int src, int dst,
              Tick established)
        : stack_(stack), net_(net), src_(src), dst_(dst),
          established_(established)
    {
    }

    /** Reliable-mode connection for the current ToS (lazily opened). */
    ReliableChannel &channelFor(uint8_t tos);

    SocketStack &stack_;
    Network &net_;
    int src_, dst_;
    Tick established_;
    uint8_t tos_ = kDefaultTos;
    SocketStats stats_;
    std::map<uint8_t, std::unique_ptr<ReliableChannel>> channels_;
};

/** Factory/tracker for sockets over one simulated cluster. */
class SocketStack
{
  public:
    /**
     * @p reliable routes every socket's sends through ReliableChannels
     * over the datagram path (required when the network injects
     * faults); @p config tunes the Reno machinery in that mode.
     */
    explicit SocketStack(Network &net, bool reliable = false,
                         ReliableConfig config = {})
        : net_(net), reliable_(reliable), reliableConfig_(config)
    {
    }

    /**
     * Open a connection from @p src to @p dst. Charges the TCP
     * three-way handshake (1.5x the src->dst round-trip latency)
     * starting at the current simulation time; sends queue behind it.
     */
    std::shared_ptr<SimSocket> connect(int src, int dst);

    /** Round-trip propagation latency between two hosts. */
    Tick roundTrip(int src, int dst) const;

    bool reliable() const { return reliable_; }
    const ReliableConfig &reliableConfig() const { return reliableConfig_; }

    /** Stats summed over every socket this stack opened. */
    SocketStats totalStats() const;

  private:
    friend class SimSocket;

    Network &net_;
    bool reliable_;
    ReliableConfig reliableConfig_;
    uint64_t nextFlowId_ = 0x50C;
    std::vector<std::weak_ptr<SimSocket>> sockets_;
};

} // namespace inc

#endif // INCEPTIONN_NET_SOCKET_H
