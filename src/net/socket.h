/**
 * @file
 * Berkeley-socket-flavoured facade over the simulated cluster — the
 * software-stack story of paper Fig. 11. A DNN training application
 * opens a TCP-ish connection per peer, calls setsockopt(IP_TOS, 0x28)
 * on sockets that carry gradients (the paper's
 * MPI_collective_communication_comp does exactly this underneath), and
 * sends; the NIC decides per packet whether the engines engage.
 *
 * Connection establishment charges a 1.5-RTT handshake before the first
 * payload; sends on one socket deliver in order (the underlying links
 * are FIFO).
 */

#ifndef INCEPTIONN_NET_SOCKET_H
#define INCEPTIONN_NET_SOCKET_H

#include <functional>
#include <memory>

#include "net/network.h"

namespace inc {

/** Socket options, setsockopt-style. */
enum class SocketOption {
    IpTos, ///< 8-bit IP Type-of-Service field (0x28 requests compression)
};

/** Per-socket byte/packet counters. */
struct SocketStats
{
    uint64_t sends = 0;
    uint64_t payloadBytes = 0;
};

/**
 * One simulated TCP connection between two hosts. Create through
 * SocketStack::connect().
 */
class SimSocket
{
  public:
    /** setsockopt(): currently only IpTos, matching the paper's use. */
    void setOption(SocketOption opt, uint32_t value);

    /** Current ToS value. */
    uint8_t tos() const { return tos_; }

    /**
     * Queue @p bytes for transmission. @p wire_ratio is the codec ratio
     * the payload would achieve (honoured only when the socket ToS is
     * 0x28 and both NICs carry engines). @p on_delivered fires at the
     * delivery tick; deliveries on one socket are in send order.
     */
    void send(uint64_t bytes, double wire_ratio,
              std::function<void(Tick)> on_delivered);

    int srcRank() const { return src_; }
    int dstRank() const { return dst_; }
    const SocketStats &stats() const { return stats_; }

    /** Tick at which the handshake completes. */
    Tick establishedAt() const { return established_; }

  private:
    friend class SocketStack;
    SimSocket(Network &net, int src, int dst, Tick established)
        : net_(net), src_(src), dst_(dst), established_(established)
    {
    }

    Network &net_;
    int src_, dst_;
    Tick established_;
    uint8_t tos_ = kDefaultTos;
    SocketStats stats_;
};

/** Factory/tracker for sockets over one simulated cluster. */
class SocketStack
{
  public:
    explicit SocketStack(Network &net) : net_(net) {}

    /**
     * Open a connection from @p src to @p dst. Charges the TCP
     * three-way handshake (1.5x the src->dst round-trip latency)
     * starting at the current simulation time; sends queue behind it.
     */
    std::shared_ptr<SimSocket> connect(int src, int dst);

    /** Round-trip propagation latency between two hosts. */
    Tick roundTrip(int src, int dst) const;

  private:
    Network &net_;
};

} // namespace inc

#endif // INCEPTIONN_NET_SOCKET_H
