#include "net/switch_agg.h"

#include <algorithm>

#include "sim/logging.h"

namespace inc {

SwitchAggEngine::SwitchAggEngine(SwitchAggConfig config)
    : config_(config)
{
    INC_ASSERT(config_.slots >= 0, "negative slot count");
    INC_ASSERT(config_.clockHz > 0.0, "engine clock must be positive");
    INC_ASSERT(config_.foldBytesPerCycle > 0, "fold width must be > 0");
    INC_ASSERT(config_.codecBytesPerCycle > 0,
               "codec width must be > 0");
}

bool
SwitchAggEngine::tryAcquireSlot(uint64_t chunkBytes)
{
    INC_ASSERT(enabled(), "aggregation engine disabled (slots = 0)");
    INC_ASSERT(chunkBytes <= config_.slotBytes,
               "chunk of %llu bytes exceeds slot SRAM (%llu)",
               static_cast<unsigned long long>(chunkBytes),
               static_cast<unsigned long long>(config_.slotBytes));
    if (slotsInUse_ >= config_.slots)
        return false;
    ++slotsInUse_;
    stats_.peakSlotsInUse = std::max(
        stats_.peakSlotsInUse, static_cast<uint64_t>(slotsInUse_));
    return true;
}

void
SwitchAggEngine::releaseSlot()
{
    INC_ASSERT(slotsInUse_ > 0, "releasing a slot that was never held");
    --slotsInUse_;
}

Tick
SwitchAggEngine::cyclesToTicks(uint64_t cycles) const
{
    return fromSeconds(static_cast<double>(cycles) / config_.clockHz);
}

Tick
SwitchAggEngine::fold(Tick start, uint64_t bytes, bool coded)
{
    uint64_t cycles = static_cast<uint64_t>(config_.pipelineCycles);
    cycles += (bytes + config_.foldBytesPerCycle - 1) /
              config_.foldBytesPerCycle;
    if (coded) {
        // Decode before the add: the slot accumulates raw floats.
        cycles += (bytes + config_.codecBytesPerCycle - 1) /
                  config_.codecBytesPerCycle;
        stats_.codecBytes += bytes;
    }
    const Tick begin = std::max(start, busyUntil_);
    busyUntil_ = begin + cyclesToTicks(cycles);
    ++stats_.folds;
    stats_.foldedBytes += bytes;
    stats_.cycles += cycles;
    return busyUntil_;
}

Tick
SwitchAggEngine::forward(Tick start, uint64_t bytes, bool coded)
{
    // Readout shares the fold ALU's port; coded chunks re-encode on
    // the way out so the uplink still carries the compressed form.
    uint64_t cycles = (bytes + config_.foldBytesPerCycle - 1) /
                      config_.foldBytesPerCycle;
    if (coded) {
        cycles += (bytes + config_.codecBytesPerCycle - 1) /
                  config_.codecBytesPerCycle;
        stats_.codecBytes += bytes;
    }
    const Tick begin = std::max(start, busyUntil_);
    busyUntil_ = begin + cyclesToTicks(cycles);
    ++stats_.forwards;
    stats_.cycles += cycles;
    return busyUntil_;
}

double
SwitchAggEngine::areaMm2() const
{
    const double sram_mbit = static_cast<double>(config_.slots) *
                             static_cast<double>(config_.slotBytes) *
                             8.0 / 1e6;
    const double fold_lanes =
        static_cast<double>(config_.foldBytesPerCycle) / 64.0;
    const double codec_lanes =
        static_cast<double>(config_.codecBytesPerCycle) / 64.0;
    return sram_mbit * 0.2 + (fold_lanes + codec_lanes) * 0.05;
}

} // namespace inc
