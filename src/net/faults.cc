#include "net/faults.h"

#include "sim/logging.h"
#include "sim/random.h"
#include "sim/trace.h"

namespace inc {

namespace {

// Stateless draws hash through inc::mix64 (sim/random.h), the same
// splitmix64 finalizer this file used to define locally — the draw
// streams are bit-identical to pre-refactor runs.

/** Named stream tags (arbitrary distinct constants). */
constexpr uint64_t kStreamDrop = 0xD80BULL;
constexpr uint64_t kStreamCorrupt = 0xC0B1ULL;
constexpr uint64_t kStreamDegrade = 0xDE64ULL;
constexpr uint64_t kStreamGe = 0x6E57ULL;

void
checkProbability(double p, const char *what)
{
    INC_ASSERT(p >= 0.0 && p <= 1.0,
               "%s must be a probability in [0, 1], got %f", what, p);
}

void
checkWindow(const FaultWindow &w, const char *what)
{
    INC_ASSERT(w.end >= w.start, "%s window ends before it starts", what);
}

uint64_t
linkKeyFor(int host, LinkDir dir)
{
    return static_cast<uint64_t>(host) * 2 +
           (dir == LinkDir::Down ? 1 : 0);
}

const char *
fateName(PacketFate fate)
{
    switch (fate) {
      case PacketFate::Delivered:
        return "delivered";
      case PacketFate::HostDown:
        return "host-down";
      case PacketFate::LinkDown:
        return "link-down";
      case PacketFate::BurstDrop:
        return "burst-drop";
      case PacketFate::RandomDrop:
        return "random-drop";
      case PacketFate::Corrupted:
        return "corrupted";
    }
    return "?";
}

} // namespace

FaultModel::FaultModel(FaultConfig config) : config_(std::move(config))
{
    auto check_profile = [](const LinkFaultProfile &p) {
        checkProbability(p.lossRate, "loss rate");
        checkProbability(p.corruptionRate, "corruption rate");
        checkProbability(p.ge.pGoodToBad, "Gilbert-Elliott pGoodToBad");
        checkProbability(p.ge.pBadToGood, "Gilbert-Elliott pBadToGood");
        checkProbability(p.ge.lossGood, "Gilbert-Elliott lossGood");
        checkProbability(p.ge.lossBad, "Gilbert-Elliott lossBad");
        if (p.loss == LossKind::GilbertElliott) {
            INC_ASSERT(p.ge.pGoodToBad + p.ge.pBadToGood > 0.0,
                       "Gilbert-Elliott chain has no transitions");
        }
    };
    check_profile(config_.defaultLink);
    for (const auto &[host, profile] : config_.hostOverrides) {
        INC_ASSERT(host >= 0, "fault override for negative host %d", host);
        check_profile(profile);
    }
    for (const auto &[host, window] : config_.linkOutages) {
        INC_ASSERT(host >= 0, "link outage for negative host %d", host);
        checkWindow(window, "link outage");
    }
    for (const auto &[host, window] : config_.hostOutages) {
        INC_ASSERT(host >= 0, "host outage for negative host %d", host);
        checkWindow(window, "host outage");
    }
    for (const auto &d : config_.degradations) {
        INC_ASSERT(d.host >= 0, "degradation for negative host %d",
                   d.host);
        checkWindow(d.window, "degradation");
        checkProbability(d.extraLossRate, "degradation extra loss rate");
    }
}

double
FaultModel::unitDraw(uint64_t stream, uint64_t linkKey, uint64_t flow,
                     uint64_t seq, uint32_t attempt) const
{
    uint64_t h = mix64(config_.seed ^ mix64(stream));
    h = mix64(h ^ mix64(linkKey));
    h = mix64(h ^ mix64(flow));
    h = mix64(h ^ mix64(seq));
    h = mix64(h ^ mix64(attempt));
    // 53-bit mantissa fill, exactly the Rng::uniform construction.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultModel::GeState &
FaultModel::geStateFor(uint64_t linkKey, const GilbertElliottConfig &)
{
    auto it = geStates_.find(linkKey);
    if (it == geStates_.end()) {
        it = geStates_
                 .emplace(linkKey,
                          GeState(mix64(config_.seed ^ mix64(kStreamGe) ^
                                        mix64(linkKey))))
                 .first;
    }
    return it->second;
}

bool
FaultModel::hostUp(int host, Tick when) const
{
    for (const auto &[h, window] : config_.hostOutages) {
        if (h == host && window.contains(when))
            return false;
    }
    return true;
}

bool
FaultModel::cableUp(int host, Tick when) const
{
    for (const auto &[h, window] : config_.linkOutages) {
        if (h == host && window.contains(when))
            return false;
    }
    return true;
}

const LinkFaultProfile &
FaultModel::profileFor(int host) const
{
    for (const auto &[h, profile] : config_.hostOverrides) {
        if (h == host)
            return profile;
    }
    return config_.defaultLink;
}

PacketFate
FaultModel::judge(int host, LinkDir dir, Tick when, uint64_t flow,
                  uint64_t seq, uint32_t attempt)
{
    ++stats_.packetsJudged;
    const uint64_t link = linkKeyFor(host, dir);
    PacketFate fate = PacketFate::Delivered;

    if (!hostUp(host, when)) {
        fate = PacketFate::HostDown;
    } else if (!cableUp(host, when)) {
        fate = PacketFate::LinkDown;
    } else {
        const LinkFaultProfile &profile = profileFor(host);
        switch (profile.loss) {
          case LossKind::None:
            break;
          case LossKind::Bernoulli:
            if (unitDraw(kStreamDrop, link, flow, seq, attempt) <
                profile.lossRate)
                fate = PacketFate::RandomDrop;
            break;
          case LossKind::GilbertElliott: {
            GeState &ge = geStateFor(link, profile.ge);
            const double loss = ge.bad ? profile.ge.lossBad
                                       : profile.ge.lossGood;
            const bool dropped = ge.rng.uniform() < loss;
            const double flip = ge.rng.uniform();
            ge.bad = ge.bad ? !(flip < profile.ge.pBadToGood)
                            : flip < profile.ge.pGoodToBad;
            if (dropped)
                fate = PacketFate::BurstDrop;
            break;
          }
        }
        if (fate == PacketFate::Delivered) {
            for (const auto &d : config_.degradations) {
                if (d.host == host && d.window.contains(when) &&
                    unitDraw(kStreamDegrade, link, flow, seq, attempt) <
                        d.extraLossRate) {
                    fate = PacketFate::RandomDrop;
                    break;
                }
            }
        }
        if (fate == PacketFate::Delivered && profile.corruptionRate > 0.0 &&
            unitDraw(kStreamCorrupt, link, flow, seq, attempt) <
                profile.corruptionRate)
            fate = PacketFate::Corrupted;
    }

    switch (fate) {
      case PacketFate::Delivered:
        break;
      case PacketFate::HostDown:
      case PacketFate::LinkDown:
        ++stats_.outageDrops;
        break;
      case PacketFate::BurstDrop:
        ++stats_.burstDrops;
        break;
      case PacketFate::RandomDrop:
        ++stats_.randomDrops;
        break;
      case PacketFate::Corrupted:
        ++stats_.corruptions;
        break;
    }
    if (isDrop(fate)) {
        INC_TRACE(Faults, when,
                  "drop host%d %s seq=%llu attempt=%u reason=%s", host,
                  dir == LinkDir::Up ? "up" : "down",
                  static_cast<unsigned long long>(seq), attempt,
                  fateName(fate));
    }
    return fate;
}

} // namespace inc
