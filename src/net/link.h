/**
 * @file
 * A unidirectional point-to-point link: a serialization resource with
 * fixed bandwidth and propagation latency. Back-to-back transmissions
 * queue behind each other (busy-until semantics), which is what creates
 * the aggregator bottleneck the paper measures.
 */

#ifndef INCEPTIONN_NET_LINK_H
#define INCEPTIONN_NET_LINK_H

#include <cstdint>
#include <string>

#include "sim/event_queue.h"

namespace inc {

/** One direction of a cable. */
class Link
{
  public:
    /**
     * @param name for diagnostics ("host3->switch").
     * @param bits_per_second line rate (10 GbE = 10e9).
     * @param latency propagation + PHY delay.
     */
    Link(std::string name, double bits_per_second, Tick latency);

    const std::string &name() const { return name_; }
    double bitsPerSecond() const { return bitsPerSecond_; }
    Tick latency() const { return latency_; }

    /** Serialization time for @p wire_bits at line rate. */
    Tick serializationTime(uint64_t wire_bits) const;

    /**
     * Enqueue a transmission that may start no earlier than @p ready.
     * @param start_out if non-null, receives the tick serialization
     *        actually began (after queuing).
     * @return the tick at which the last bit arrives at the far end.
     */
    Tick transmit(Tick ready, uint64_t wire_bits,
                  Tick *start_out = nullptr);

    /** Earliest tick a new transmission could start. */
    Tick busyUntil() const { return busyUntil_; }

    /** Total bits ever pushed through. */
    uint64_t bitsCarried() const { return bitsCarried_; }

    /** Cumulative time the link spent serializing. */
    Tick busyTime() const { return busyTime_; }

  private:
    std::string name_;
    double bitsPerSecond_;
    Tick latency_;
    Tick busyUntil_ = 0;
    uint64_t bitsCarried_ = 0;
    Tick busyTime_ = 0;
};

} // namespace inc

#endif // INCEPTIONN_NET_LINK_H
