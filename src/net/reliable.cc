#include "net/reliable.h"

#include <algorithm>

#include "sim/logging.h"
#include "sim/metrics.h"
#include "sim/span.h"
#include "sim/trace.h"
#include "stats/timeline.h"

namespace inc {

ReliableChannel::ReliableChannel(Fabric &net, int src, int dst,
                                 ReliableConfig config, uint8_t tos,
                                 uint64_t flowId)
    : net_(net), events_(net.events()), src_(src), dst_(dst),
      config_(config), tos_(tos), flowId_(flowId),
      cwnd_(config.initialCwndPackets),
      ssthresh_(config.initialSsthreshPackets), rto_(config.minRto)
{
    INC_ASSERT(src >= 0 && src < net.nodes() && dst >= 0 &&
                   dst < net.nodes() && src != dst,
               "bad channel %d->%d", src, dst);
    INC_ASSERT(config_.initialCwndPackets >= 1,
               "initial cwnd must be at least one packet");
    INC_ASSERT(config_.maxWindowPackets >= config_.initialCwndPackets,
               "max window smaller than the initial cwnd");
    INC_ASSERT(config_.dupAckThreshold >= 1,
               "dup-ACK threshold must be at least 1");
    INC_ASSERT(config_.minRto > 0 && config_.maxRto >= config_.minRto,
               "RTO bounds must satisfy 0 < min <= max");
}

uint64_t
ReliableChannel::mss() const
{
    return mssFor(net_.mtu());
}

const ReliableChannel::Message &
ReliableChannel::messageFor(uint64_t seq) const
{
    for (const Message &m : messages_) {
        if (seq >= m.firstSeq && seq < m.endSeq)
            return m;
    }
    panic("seq %llu outside every queued message",
          static_cast<unsigned long long>(seq));
}

uint64_t
ReliableChannel::spanForSeq(uint64_t seq) const
{
    for (const Message &m : messages_) {
        if (seq >= m.firstSeq && seq < m.endSeq)
            return m.spanId;
    }
    return 0; // released (spurious retransmit) or sent untraced
}

uint64_t
ReliableChannel::seqBytes(uint64_t seq) const
{
    const Message &m = messageFor(seq);
    if (m.tailBytes > 0 && seq == m.endSeq - 1)
        return m.tailBytes;
    return mss();
}

void
ReliableChannel::send(uint64_t bytes, double wire_ratio,
                      std::function<void(Tick)> on_delivered)
{
    INC_ASSERT(bytes > 0, "empty reliable send");
    Message m;
    m.firstSeq = dataEnd_;
    m.endSeq = dataEnd_ + packetsFor(bytes, net_.mtu());
    m.tailBytes = bytes % mss();
    m.bytes = bytes;
    m.onDelivered = std::move(on_delivered);
    if (auto *sp = spans::active()) {
        char nm[64];
        std::snprintf(nm, sizeof(nm), "rmsg %d->%d %llu B", src_, dst_,
                      static_cast<unsigned long long>(bytes));
        m.spanId = sp->open(spans::Kind::Message, src_, events_.now(),
                            sp->currentParent(), sp->pendingCause(), nm);
    }
    dataEnd_ = m.endSeq;
    messages_.push_back(std::move(m));
    wireRatio_ = wire_ratio;
    trySend();
}

void
ReliableChannel::trySend()
{
    // New flights sent now were enabled by the ACK batch being
    // processed (0 when called straight from send()).
    flightCause_ = ackContextSpan_;
    const uint64_t window = std::min<uint64_t>(
        std::max<uint64_t>(static_cast<uint64_t>(cwnd_), 1),
        config_.maxWindowPackets);
    while (sndNxt_ < dataEnd_) {
        const uint64_t outstanding = sndNxt_ - sndUna_;
        if (outstanding >= window)
            break;
        // One flight never spans a message boundary so that the
        // DatagramRequest's single tailBytes stays exact.
        const Message &m = messageFor(sndNxt_);
        const uint64_t count = std::min(window - outstanding,
                                        m.endSeq - sndNxt_);
        sendFlight(sndNxt_, count, 0);
        if (!probeValid_ && retransmitted_.empty()) {
            // RTT probe: time the first packet of this flight (Karn's
            // rule skips it if it later gets retransmitted).
            probeValid_ = true;
            probeSeq_ = sndNxt_;
            probeSent_ = events_.now();
        }
        sndNxt_ += count;
    }
    armRto();
}

void
ReliableChannel::sendFlight(uint64_t first, uint64_t count,
                            uint32_t attempt)
{
    const Message &m = messageFor(first);
    DatagramRequest req;
    req.src = src_;
    req.dst = dst_;
    req.firstSeq = first;
    req.packetCount = count;
    req.tailBytes =
        first + count == m.endSeq ? m.tailBytes : 0;
    req.attempt = attempt;
    req.tos = tos_;
    req.wireRatio = wireRatio_;
    req.flowId = flowId_;
    stats_.packetsSent += count;
    if (auto *m = metrics::active())
        m->add("transport.packets_sent", count);
    // Flight span context, captured now: the arrival callback records
    // the span once the flight's extent [sent_at, arrival] is known.
    const Tick sent_at = events_.now();
    const uint64_t parent = m.spanId;
    const uint64_t cause = flightCause_;
    net_.transferDatagram(req, [this, sent_at, parent, cause, first,
                                count, attempt](const DatagramResult &res) {
        if (auto *sp = spans::active()) {
            char nm[64];
            std::snprintf(nm, sizeof(nm), "seq[%llu;+%llu) a%u",
                          static_cast<unsigned long long>(first),
                          static_cast<unsigned long long>(count),
                          attempt);
            currentFlightSpan_ = sp->record(
                attempt > 0 ? spans::Kind::Retransmit
                            : spans::Kind::Flight,
                src_, sent_at, res.when, parent, cause, nm);
        }
        onArrival(res);
        currentFlightSpan_ = 0;
    });
}

void
ReliableChannel::retransmit(uint64_t seq, uint64_t cause_span)
{
    if (seq >= dataEnd_)
        return;
    const uint32_t attempt = ++attempts_[seq];
    retransmitted_.insert(seq);
    if (probeValid_ && seq == probeSeq_)
        probeValid_ = false;
    ++stats_.retransmits;
    if (auto *m = metrics::active())
        m->add("transport.retransmits", 1);
    INC_TRACE(Faults, events_.now(),
              "flow %llu retransmit seq=%llu attempt=%u cwnd=%.1f",
              static_cast<unsigned long long>(flowId_),
              static_cast<unsigned long long>(seq), attempt, cwnd_);
    flightCause_ = cause_span;
    sendFlight(seq, 1, attempt);
}

void
ReliableChannel::onArrival(const DatagramResult &res)
{
    stats_.dropsObserved += res.lostSeqs.size();
    // Per surviving packet, in sequence order: dedup, reassemble, and
    // record the cumulative-ACK value real TCP would emit for it, plus
    // the packet's CE mark for the DCTCP echo.
    struct AckEntry
    {
        uint64_t ack;
        bool ce;
    };
    std::vector<AckEntry> ackBatch;
    ackBatch.reserve(res.packetCount);
    size_t lossIdx = 0;
    size_t ceIdx = 0;
    for (uint64_t seq = res.firstSeq;
         seq < res.firstSeq + res.packetCount; ++seq) {
        while (lossIdx < res.lostSeqs.size() &&
               res.lostSeqs[lossIdx] < seq)
            ++lossIdx;
        if (lossIdx < res.lostSeqs.size() &&
            res.lostSeqs[lossIdx] == seq)
            continue; // never arrived
        while (ceIdx < res.ecnSeqs.size() && res.ecnSeqs[ceIdx] < seq)
            ++ceIdx;
        const bool ce =
            ceIdx < res.ecnSeqs.size() && res.ecnSeqs[ceIdx] == seq;
        if (ce)
            ++stats_.ecnCePackets;
        if (seq < rcvNxt_ || outOfOrder_.count(seq)) {
            ++stats_.duplicatePackets;
        } else {
            ++stats_.deliveredPackets;
            stats_.deliveredBytes += seqBytes(seq);
            if (seq == rcvNxt_) {
                ++rcvNxt_;
                auto it = outOfOrder_.begin();
                while (it != outOfOrder_.end() && *it == rcvNxt_) {
                    it = outOfOrder_.erase(it);
                    ++rcvNxt_;
                }
            } else {
                outOfOrder_.insert(seq);
            }
        }
        ackBatch.push_back({rcvNxt_, ce});
        if (ce)
            ++stats_.ecnEchoedAcks;
    }
    if (ackBatch.empty())
        return;

    // Completed messages become visible to the application now.
    for (Message &m : messages_) {
        if (m.delivered)
            continue;
        if (m.endSeq > rcvNxt_)
            break;
        m.delivered = true;
        ++stats_.messagesDelivered;
        auto *sp = m.spanId != 0 ? spans::active() : nullptr;
        if (sp)
            sp->close(m.spanId, res.when);
        if (m.onDelivered) {
            if (sp)
                sp->setArrivalCause(m.spanId);
            m.onDelivered(res.when);
            if (sp)
                sp->clearArrivalCause();
        }
    }

    // The ACK batch crosses the ideal control plane. Whatever the ACKs
    // unleash (new flights, fast retransmits) is caused by this flight.
    events_.schedule(res.when + config_.ackLatency,
                     [this, batch = std::move(ackBatch),
                      fl = currentFlightSpan_] {
                         const Tick when = events_.now();
                         ackContextSpan_ = fl;
                         for (const AckEntry &e : batch)
                             onAckValue(e.ack, e.ce, when);
                         trySend();
                         ackContextSpan_ = 0;
                     });
}

void
ReliableChannel::onAckValue(uint64_t ack, bool ce, Tick when)
{
    if (config_.congestionControl == CongestionControl::Dctcp)
        dctcpOnAck(ack > sndUna_ ? ack - sndUna_ : 0, ce);
    if (ack > sndUna_)
        onNewAck(ack, when);
    else if (sndNxt_ > sndUna_)
        onDupAck();
}

void
ReliableChannel::dctcpOnAck(uint64_t newly, bool ce)
{
    // Every ACK answers one received packet; a new ACK may additionally
    // cover packets whose holes just filled. F is estimated per packet.
    const uint64_t n = std::max<uint64_t>(newly, 1);
    dctcpAckedPackets_ += n;
    if (ce)
        dctcpMarkedPackets_ += n;
    if (dctcpWindowEnd_ == 0)
        dctcpWindowEnd_ = sndNxt_;
    const uint64_t ack = sndUna_ + newly;
    if (ack < dctcpWindowEnd_ || dctcpAckedPackets_ == 0)
        return;

    // One window of data ACKed: fold the observed mark fraction into
    // alpha and, when the window saw any mark, cut cwnd once by
    // alpha/2 (the DCTCP window law). Loss recovery overrides.
    const double f = static_cast<double>(dctcpMarkedPackets_) /
                     static_cast<double>(dctcpAckedPackets_);
    dctcpAlpha_ = (1.0 - config_.dctcpGain) * dctcpAlpha_ +
                  config_.dctcpGain * f;
    if (dctcpMarkedPackets_ > 0 && !inRecovery_) {
        cwnd_ = std::max(cwnd_ * (1.0 - dctcpAlpha_ / 2.0), 2.0);
        // Leave slow start: growth after an ECN cut is additive.
        ssthresh_ = cwnd_;
        ++stats_.dctcpCwndCuts;
        if (auto *m = metrics::active()) {
            m->add("transport.dctcp_cuts", 1);
            m->observe("transport.dctcp_alpha", dctcpAlpha_, 0.0, 1.0,
                       32);
        }
    }
    dctcpAckedPackets_ = 0;
    dctcpMarkedPackets_ = 0;
    dctcpWindowEnd_ = sndNxt_;
}

void
ReliableChannel::onNewAck(uint64_t ack, Tick when)
{
    const uint64_t newly = ack - sndUna_;
    sndUna_ = ack;
    backoff_ = 1;

    if (probeValid_ && ack > probeSeq_) {
        probeValid_ = false;
        if (when > probeSent_)
            sampleRtt(when - probeSent_);
    }

    if (inRecovery_) {
        if (ack >= recover_) {
            // Full ACK: recovery is over, deflate to ssthresh.
            inRecovery_ = false;
            dupAcks_ = 0;
            cwnd_ = ssthresh_;
        } else {
            // NewReno partial ACK: the next hole is already lost —
            // retransmit it immediately, partially deflate.
            retransmit(sndUna_, ackContextSpan_);
            cwnd_ = std::max(cwnd_ - static_cast<double>(newly) + 1.0,
                             1.0);
        }
    } else {
        dupAcks_ = 0;
        if (cwnd_ < ssthresh_)
            cwnd_ += static_cast<double>(newly); // slow start
        else
            cwnd_ += static_cast<double>(newly) / cwnd_; // CA
        cwnd_ = std::min(cwnd_,
                         static_cast<double>(config_.maxWindowPackets));
    }
    if (auto *m = metrics::active()) {
        m->observe("transport.cwnd_pkts", cwnd_, 0.0, 256.0, 64);
        if (TimelineRecorder *tl = net_.timeline())
            tl->counter("flow " + std::to_string(flowId_) + " cwnd pkts",
                        when, cwnd_);
    }

    releaseAcked();
    armRto();
}

void
ReliableChannel::onDupAck()
{
    ++stats_.dupAcksSeen;
    ++dupAcks_;
    if (!inRecovery_ && dupAcks_ == config_.dupAckThreshold) {
        // Fast retransmit + fast recovery (Reno halving).
        const double flight =
            static_cast<double>(sndNxt_ - sndUna_);
        ssthresh_ = std::max(flight / 2.0, 2.0);
        cwnd_ = ssthresh_ + static_cast<double>(config_.dupAckThreshold);
        inRecovery_ = true;
        recover_ = sndNxt_;
        ++stats_.fastRetransmits;
        if (auto *m = metrics::active())
            m->add("transport.fast_retransmits", 1);
        retransmit(sndUna_, ackContextSpan_);
        armRto();
    } else if (inRecovery_) {
        // Window inflation: each dup ACK means a packet left the pipe.
        cwnd_ += 1.0;
    }
}

void
ReliableChannel::sampleRtt(Tick rtt)
{
    if (!haveSrtt_) {
        haveSrtt_ = true;
        srtt_ = rtt;
        rttvar_ = rtt / 2;
    } else {
        const Tick err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + rtt) / 8;
    }
    rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.minRto,
                      config_.maxRto);
}

void
ReliableChannel::armRto()
{
    if (sndUna_ == sndNxt_) {
        cancelRto();
        return;
    }
    const uint64_t epoch = ++rtoEpoch_;
    rtoArmedAt_ = events_.now();
    Tick timeout = rto_;
    for (uint32_t i = 1; i < backoff_ && timeout < config_.maxRto; ++i)
        timeout *= 2;
    timeout = std::min(timeout, config_.maxRto);
    events_.schedule(events_.now() + timeout, [this, epoch] {
        if (epoch == rtoEpoch_)
            onRto();
    });
}

void
ReliableChannel::onRto()
{
    if (sndUna_ == sndNxt_)
        return;
    ++stats_.timeouts;
    if (auto *m = metrics::active()) {
        m->add("transport.timeouts", 1);
        if (backoff_ > 1)
            m->add("transport.rto_backoffs", 1);
        m->observe("transport.rto_backoff_level",
                   static_cast<double>(backoff_), 0.0, 16.0, 16);
    }
    INC_TRACE(Faults, events_.now(),
              "flow %llu RTO: una=%llu nxt=%llu backoff=%u",
              static_cast<unsigned long long>(flowId_),
              static_cast<unsigned long long>(sndUna_),
              static_cast<unsigned long long>(sndNxt_), backoff_);
    // Classic timeout response: collapse to one packet, restart slow
    // start, back the timer off exponentially (Karn).
    const double flight = static_cast<double>(sndNxt_ - sndUna_);
    ssthresh_ = std::max(flight / 2.0, 2.0);
    cwnd_ = 1.0;
    inRecovery_ = false;
    dupAcks_ = 0;
    if (backoff_ < 16)
        ++backoff_;
    // The silence between arming the timer and its firing is loss
    // recovery on the critical path; the retransmit chains from it.
    uint64_t rto_span = 0;
    if (auto *sp = spans::active()) {
        rto_span = sp->record(spans::Kind::RtoWait, src_, rtoArmedAt_,
                              events_.now(), spanForSeq(sndUna_), 0,
                              "rto wait");
    }
    retransmit(sndUna_, rto_span);
    armRto();
}

void
ReliableChannel::releaseAcked()
{
    while (!messages_.empty() && messages_.front().delivered &&
           messages_.front().endSeq <= sndUna_) {
        messages_.pop_front();
    }
    // Per-packet bookkeeping below the cumulative ACK is dead.
    attempts_.erase(attempts_.begin(), attempts_.lower_bound(sndUna_));
    retransmitted_.erase(retransmitted_.begin(),
                         retransmitted_.lower_bound(sndUna_));
}

} // namespace inc
