/**
 * @file
 * A TCP-Reno-flavoured reliable channel over the unreliable datagram
 * service (Fabric::transferDatagram). One ReliableChannel simulates both
 * endpoints of a unidirectional connection: the sender keeps sequence
 * numbers, a congestion window (slow start / congestion avoidance /
 * NewReno fast recovery), an RTO with exponential backoff and Karn's
 * rule; the receiver reassembles in order, de-duplicates, and returns
 * cumulative ACKs. Messages therefore arrive exactly once and in order
 * no matter what the fault model does to individual packets — the
 * collectives' reductions stay bit-identical over a lossy fabric, only
 * the completion time grows.
 *
 * Congestion control comes in two flavours (ReliableConfig::
 * congestionControl): classic NewReno, and DCTCP over the fabric's ECN
 * marking (SwitchConfig::ecnThresholdPackets). In DCTCP mode the
 * receiver echoes each packet's CE mark on its ACK, the sender keeps
 * the running mark fraction alpha = (1-g)*alpha + g*F per window of
 * data, and cuts cwnd by alpha/2 once per marked window — loss
 * handling (fast retransmit, RTO) stays NewReno in both modes.
 *
 * Deliberately not modelled (DESIGN.md section 8): SACK, delayed
 * ACKs, window scaling as a byte limit (windows are counted in
 * packets). ACKs travel on an ideal control plane with a fixed latency
 * and never consume fabric bandwidth or suffer loss — reverse-path loss
 * would only duplicate retransmissions without changing the
 * forward-path story the paper cares about.
 *
 * Everything here is deterministic: no random draws, all state advances
 * in EventQueue order. Pending RTO timers are invalidated by an epoch
 * token (the FluidNetwork epoch pattern), so stale timers are O(1)
 * no-ops.
 */

#ifndef INCEPTIONN_NET_RELIABLE_H
#define INCEPTIONN_NET_RELIABLE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/fabric.h"
#include "sim/event_queue.h"

namespace inc {

/** Which window law the sender runs. */
enum class CongestionControl
{
    NewReno, ///< loss-driven halving (the legacy behaviour)
    Dctcp,   ///< ECN-fraction-proportional cuts (DCTCP window law)
};

/** Tunables of the Reno machinery (packet-counted windows). */
struct ReliableConfig
{
    /** Initial congestion window, packets (RFC 6928 flavour). */
    uint32_t initialCwndPackets = 10;
    /** Initial slow-start threshold, packets. */
    uint32_t initialSsthreshPackets = 256;
    /** Hard cap on the send window, packets (receiver window stand-in). */
    uint32_t maxWindowPackets = 256;
    /** Duplicate ACKs that trigger fast retransmit. */
    uint32_t dupAckThreshold = 3;
    /** Retransmission-timeout clamp. */
    Tick minRto = 200 * kMicrosecond;
    Tick maxRto = 100 * kMillisecond;
    /** One-way latency of the ideal ACK control plane. */
    Tick ackLatency = 3 * kMicrosecond;
    /** Sender window law. */
    CongestionControl congestionControl = CongestionControl::NewReno;
    /** DCTCP alpha EWMA gain g (the paper's 1/16). */
    double dctcpGain = 1.0 / 16.0;
};

/** Lifetime counters of one channel. */
struct ReliableStats
{
    uint64_t packetsSent = 0;     ///< includes retransmissions
    uint64_t retransmits = 0;     ///< fast + timeout retransmissions
    uint64_t fastRetransmits = 0; ///< triggered by 3 dup ACKs
    uint64_t timeouts = 0;        ///< RTO firings that found work
    uint64_t dupAcksSeen = 0;
    uint64_t deliveredPackets = 0; ///< first-time receptions
    uint64_t deliveredBytes = 0;   ///< payload of first-time receptions
    uint64_t duplicatePackets = 0; ///< spurious-retransmit receptions
    uint64_t dropsObserved = 0;    ///< losses reported by arrivals
    uint64_t messagesDelivered = 0;
    uint64_t ecnCePackets = 0;   ///< CE-marked packets the receiver saw
    uint64_t ecnEchoedAcks = 0;  ///< ACKs that carried the CE echo back
    uint64_t dctcpCwndCuts = 0;  ///< alpha-proportional window cuts
};

/**
 * One reliable unidirectional src->dst byte stream over a Fabric.
 * send() queues messages; each message's callback fires exactly once at
 * the tick its last byte is available in order at the receiver. The
 * channel must outlive every pending event (keep it alive until the
 * EventQueue drains).
 */
class ReliableChannel
{
  public:
    /**
     * @p flowId separates this connection's fault-model draw streams
     * from other flows on the same links; give concurrent channels
     * distinct ids. Panics on malformed @p config.
     */
    ReliableChannel(Fabric &net, int src, int dst, ReliableConfig config,
                    uint8_t tos = kDefaultTos, uint64_t flowId = 0);

    ReliableChannel(const ReliableChannel &) = delete;
    ReliableChannel &operator=(const ReliableChannel &) = delete;

    /**
     * Queue @p bytes for reliable in-order delivery; @p on_delivered
     * fires at the tick the receiver holds the whole message. Must be
     * called from simulation context. Messages on one channel deliver
     * in send order.
     */
    void send(uint64_t bytes, double wire_ratio,
              std::function<void(Tick)> on_delivered);

    int srcRank() const { return src_; }
    int dstRank() const { return dst_; }
    uint64_t flowId() const { return flowId_; }
    const ReliableStats &stats() const { return stats_; }
    const ReliableConfig &config() const { return config_; }

    /** Current congestion window, packets (fractional during CA). */
    double cwnd() const { return cwnd_; }
    /** DCTCP's running mark-fraction estimate (0 in NewReno mode). */
    double dctcpAlpha() const { return dctcpAlpha_; }
    /** Current smoothed RTO (before backoff). */
    Tick rto() const { return rto_; }
    /** True when every queued byte has been cumulatively ACKed. */
    bool idle() const { return sndUna_ == dataEnd_; }

  private:
    /** One queued message and its span of the sequence space. */
    struct Message
    {
        uint64_t firstSeq = 0;
        uint64_t endSeq = 0;    ///< one past the last packet
        uint64_t tailBytes = 0; ///< short final packet (0 = full)
        uint64_t bytes = 0;
        std::function<void(Tick)> onDelivered;
        bool delivered = false;
        uint64_t spanId = 0; ///< causal Message span (0 = not traced)
    };

    uint64_t mss() const;
    /** Bytes carried by packet @p seq. */
    uint64_t seqBytes(uint64_t seq) const;
    /** End of the message containing @p seq. */
    const Message &messageFor(uint64_t seq) const;
    /** Span of the message containing @p seq; 0 if released/untraced. */
    uint64_t spanForSeq(uint64_t seq) const;

    /** Push new data allowed by the window, one flight per message. */
    void trySend();
    /** Ship packets [first, first+count) as one flight. */
    void sendFlight(uint64_t first, uint64_t count, uint32_t attempt);
    /** Retransmit the single packet @p seq, causally after @p cause_span. */
    void retransmit(uint64_t seq, uint64_t cause_span);

    /** Receiver side: one flight arrived. */
    void onArrival(const DatagramResult &res);
    /** Sender side: one cumulative-ACK value from the batch; @p ce is
     *  the receiver's CE echo for the packet this ACK answered. */
    void onAckValue(uint64_t ack, bool ce, Tick when);
    void onNewAck(uint64_t ack, Tick when);
    void onDupAck();
    /** DCTCP per-ACK bookkeeping and per-window alpha/cwnd update. */
    void dctcpOnAck(uint64_t newly, bool ce);

    /** Jacobson/Karels estimator update with sample @p rtt. */
    void sampleRtt(Tick rtt);

    /** (Re)arm or cancel the RTO timer for the current outstanding data. */
    void armRto();
    void cancelRto() { ++rtoEpoch_; }
    void onRto();

    /** Drop bookkeeping for fully-ACKed prefixes. */
    void releaseAcked();

    Fabric &net_;
    EventQueue &events_;
    const int src_;
    const int dst_;
    const ReliableConfig config_;
    const uint8_t tos_;
    const uint64_t flowId_;
    /** Codec ratio of the most recent send (applies to retransmits). */
    double wireRatio_ = 1.0;

    // --- sender ---
    uint64_t dataEnd_ = 0; ///< one past the last queued packet
    uint64_t sndUna_ = 0;  ///< oldest unACKed packet
    uint64_t sndNxt_ = 0;  ///< next new packet to send
    double cwnd_;
    double ssthresh_;
    uint32_t dupAcks_ = 0;
    bool inRecovery_ = false;
    uint64_t recover_ = 0; ///< NewReno: sndNxt_ when loss was detected
    /** Per-packet retransmission counts (fault-model draw keys). */
    std::map<uint64_t, uint32_t> attempts_;
    /** Karn's rule: packets whose RTT must not be sampled. */
    std::set<uint64_t> retransmitted_;

    // RTT estimation
    bool haveSrtt_ = false;
    Tick srtt_ = 0;
    Tick rttvar_ = 0;
    Tick rto_;
    uint32_t backoff_ = 1; ///< RTO multiplier, doubled per timeout
    bool probeValid_ = false;
    uint64_t probeSeq_ = 0;
    Tick probeSent_ = 0;

    uint64_t rtoEpoch_ = 0;
    Tick rtoArmedAt_ = 0; ///< when the live RTO timer was (re)armed

    // DCTCP state (congestionControl == Dctcp only)
    double dctcpAlpha_ = 0.0;
    uint64_t dctcpWindowEnd_ = 0; ///< snapshot of sndNxt_; 0 = unarmed
    uint64_t dctcpAckedPackets_ = 0; ///< packets ACKed this window
    uint64_t dctcpMarkedPackets_ = 0; ///< of which CE-echoed

    // --- causal-span context (all 0 when tracing is off) ---
    uint64_t ackContextSpan_ = 0;   ///< flight whose ACK batch runs now
    uint64_t flightCause_ = 0;      ///< cause for the next sendFlight()
    uint64_t currentFlightSpan_ = 0; ///< flight whose arrival runs now

    // --- receiver ---
    uint64_t rcvNxt_ = 0; ///< next in-order packet expected
    std::set<uint64_t> outOfOrder_;

    std::deque<Message> messages_;
    ReliableStats stats_;
};

} // namespace inc

#endif // INCEPTIONN_NET_RELIABLE_H
