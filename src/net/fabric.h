/**
 * @file
 * The minimal cluster interface the communication layer needs: rank
 * count, per-host compute resources, an event queue, and message
 * transfer. Two transport models implement it — Network (packet-level
 * FIFO store-and-forward) and FluidNetwork (max-min fair flow sharing)
 * — so every collective and trainer runs unchanged on either.
 */

#ifndef INCEPTIONN_NET_FABRIC_H
#define INCEPTIONN_NET_FABRIC_H

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "sim/event_queue.h"

namespace inc {

class Host;

/** A message transfer request between two hosts. */
struct TransferRequest
{
    int src = 0;
    int dst = 0;
    uint64_t payloadBytes = 0;
    uint8_t tos = kDefaultTos;
    /** Codec wire ratio for this payload (>= 1; used only for ToS 0x28
     *  between compression-capable NICs). */
    double wireRatio = 1.0;
};

/**
 * One unreliable flight of consecutive packets — the raw datagram
 * service the reliable channel (net/reliable.h) builds TCP on top of.
 * Sequence numbers are in MSS-sized packet units; @c tailBytes carries
 * the short final packet of a message (0 = the last packet is full).
 */
struct DatagramRequest
{
    int src = 0;
    int dst = 0;
    uint64_t firstSeq = 0;
    uint64_t packetCount = 0;
    uint64_t tailBytes = 0;
    /** Retransmission attempt of these packets (0 = first try); part of
     *  the fault model's draw key so retries are judged independently. */
    uint32_t attempt = 0;
    uint8_t tos = kDefaultTos;
    double wireRatio = 1.0;
    /** Flow (channel) identity, separating fault streams per flow. */
    uint64_t flowId = 0;

    /** Payload bytes of the flight for @p mss-sized packets. */
    uint64_t
    payloadBytes(uint64_t mss) const
    {
        if (packetCount == 0)
            return 0;
        return (packetCount - 1) * mss + (tailBytes ? tailBytes : mss);
    }
};

/** Outcome of one flight: arrival time plus which packets were lost. */
struct DatagramResult
{
    /** Arrival tick of the flight tail in destination host memory. */
    Tick when = 0;
    uint64_t firstSeq = 0;
    uint64_t packetCount = 0;
    /** Sequence numbers judged lost (sorted, subset of the flight). */
    std::vector<uint64_t> lostSeqs;
    /**
     * Delivered packets that crossed a congested switch queue and were
     * CE-marked (sorted, disjoint from lostSeqs). Empty unless the
     * fabric's ECN marking threshold is enabled
     * (SwitchConfig::ecnThresholdPackets).
     */
    std::vector<uint64_t> ecnSeqs;
};

class TimelineRecorder;

/** Abstract cluster transport. */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    /** The simulation clock driving this cluster. */
    virtual EventQueue &events() = 0;

    /** Attached chrome-trace recorder, nullptr when none (fabrics that
     *  support recording override this; see Network::setTimeline). */
    virtual TimelineRecorder *timeline() const { return nullptr; }

    /** Number of hosts. */
    virtual int nodes() const = 0;

    /** Host @p i (compute/driver resources). */
    virtual Host &host(int i) = 0;

    /**
     * Start a transfer; @p on_delivered fires once at the delivery
     * tick. Must be called from simulation context so initiations are
     * time-ordered.
     */
    virtual void transfer(const TransferRequest &req,
                          std::function<void(Tick)> on_delivered) = 0;

    /** MTU of this fabric's links (for packetizing datagram flights). */
    virtual uint64_t mtu() const { return kDefaultMtu; }

    /**
     * Send one unreliable flight. @p on_arrival fires at the arrival
     * tick with the per-packet loss verdicts — or never, if every
     * packet was lost (the sender's RTO covers that silence, exactly
     * as in TCP). The default implementation is the lossless fabric:
     * the flight rides transfer() timing and nothing is ever lost.
     * Network overrides this with the fault-model/finite-queue path.
     */
    virtual void
    transferDatagram(const DatagramRequest &req,
                     std::function<void(const DatagramResult &)> on_arrival)
    {
        TransferRequest tr;
        tr.src = req.src;
        tr.dst = req.dst;
        tr.payloadBytes = req.payloadBytes(mssFor(mtu()));
        tr.tos = req.tos;
        tr.wireRatio = req.wireRatio;
        transfer(tr, [req, cb = std::move(on_arrival)](Tick when) {
            DatagramResult res;
            res.when = when;
            res.firstSeq = req.firstSeq;
            res.packetCount = req.packetCount;
            cb(res);
        });
    }
};

} // namespace inc

#endif // INCEPTIONN_NET_FABRIC_H
