/**
 * @file
 * The minimal cluster interface the communication layer needs: rank
 * count, per-host compute resources, an event queue, and message
 * transfer. Two transport models implement it — Network (packet-level
 * FIFO store-and-forward) and FluidNetwork (max-min fair flow sharing)
 * — so every collective and trainer runs unchanged on either.
 */

#ifndef INCEPTIONN_NET_FABRIC_H
#define INCEPTIONN_NET_FABRIC_H

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/event_queue.h"

namespace inc {

class Host;

/** A message transfer request between two hosts. */
struct TransferRequest
{
    int src = 0;
    int dst = 0;
    uint64_t payloadBytes = 0;
    uint8_t tos = kDefaultTos;
    /** Codec wire ratio for this payload (>= 1; used only for ToS 0x28
     *  between compression-capable NICs). */
    double wireRatio = 1.0;
};

/** Abstract cluster transport. */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    /** The simulation clock driving this cluster. */
    virtual EventQueue &events() = 0;

    /** Number of hosts. */
    virtual int nodes() const = 0;

    /** Host @p i (compute/driver resources). */
    virtual Host &host(int i) = 0;

    /**
     * Start a transfer; @p on_delivered fires once at the delivery
     * tick. Must be called from simulation context so initiations are
     * time-ordered.
     */
    virtual void transfer(const TransferRequest &req,
                          std::function<void(Tick)> on_delivered) = 0;
};

} // namespace inc

#endif // INCEPTIONN_NET_FABRIC_H
