/**
 * @file
 * LP-partitioned packet fabric: the parallel counterpart of Network,
 * built for explicit Topology graphs (fat-tree, dragonfly) at
 * 1000+-worker scale. Every node (host or switch) is one logical
 * process on an LpScheduler (sim/lp.h); every directed link is owned
 * by its transmitting node's LP; a segment traverses the fabric as a
 * chain of per-hop handoff events, each carrying the cut-through
 * timing state (previous hop's start, tail, and one-packet time) that
 * Network::shipAlongPath threads through its serial loop.
 *
 * Determinism: all mutable state — links, switches, hosts, fault
 * models, trace buffers, byte counters — is sharded per LP and only
 * ever touched by its owner's events. Snapshots (metrics CSV, trace
 * CSV) merge the shards in LP-index order, so every output byte is
 * identical for any INC_THREADS. Global-singleton instrumentation
 * (metrics::active, spans::active, INC_TRACE) is deliberately absent
 * from LP event paths.
 *
 * Lossy mode: per-packet fates come from the same stateless draw
 * streams the classic datagram path uses (faults.h), evaluated on the
 * *sender's* FaultModel shard — the draws are pure functions of
 * (seed, stream, link, flow, seq, attempt), so any shard computes the
 * same verdicts. Recovery is idealized selective repeat: the sender
 * learns the flight's fate after a path-delay bound and retransmits
 * the lost packets as a new flight with attempt+1 draws. The
 * Gilbert-Elliott chain is stateful and therefore rejected in LP mode.
 */

#ifndef INCEPTIONN_NET_LP_FABRIC_H
#define INCEPTIONN_NET_LP_FABRIC_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/faults.h"
#include "net/host.h"
#include "net/link.h"
#include "net/switch.h"
#include "net/switch_agg.h"
#include "net/topology.h"
#include "sim/lp.h"
#include "sim/span.h"

namespace inc {

/** Configuration of the LP fabric (uniform NICs and switches). */
struct LpFabricConfig
{
    NicConfig nic{};
    SwitchConfig switchConfig{};
    /** Segment granularity, as in NetworkConfig::segmentBytes. */
    uint64_t segmentBytes = 365 * 1460;
    /** Enable the lossy datagram transport with these faults. */
    bool lossy = false;
    FaultConfig faults{};
    /** Give up after this many retransmission rounds (lossy mode). */
    uint32_t maxAttempts = 64;
    /** Per-switch in-network aggregation engines (innet collectives). */
    SwitchAggConfig switchAgg{};
    /**
     * Record causal spans on per-LP shards (spans::Shard): TX driver,
     * per-link hops, RX driver, selective-repeat retransmits, plus
     * whatever the collectives note via noteSpan(). Merged post-run by
     * mergedSpans() in the width-invariant trace scheme. Off by
     * default — capture is a per-fabric flag, never the global
     * spans::active() singleton, which LP event code must not touch.
     */
    bool captureSpans = false;
};

/** One record of the LP-mode causal trace (the span-stream analogue). */
struct LpTraceRec
{
    Tick t0 = 0;
    Tick t1 = 0;
    int lp = 0;
    uint8_t kind = 0; ///< 0 tx, 1 hop, 2 rx, 3 deliver, 4 retry, 5 agg
    int src = 0;
    int dst = 0;
    uint64_t bytes = 0;

    bool
    operator==(const LpTraceRec &o) const
    {
        return t0 == o.t0 && t1 == o.t1 && lp == o.lp && kind == o.kind &&
               src == o.src && dst == o.dst && bytes == o.bytes;
    }
};

/** Parallel, deterministic, topology-driven packet fabric. */
class LpFabric
{
  public:
    /** @param threads LpScheduler width (0 = global INC_THREADS). */
    LpFabric(Topology topo, LpFabricConfig config, int threads = 0);
    ~LpFabric();

    const Topology &topology() const { return topo_; }
    const LpFabricConfig &config() const { return config_; }
    LpScheduler &scheduler() { return *sched_; }
    int nodes() const { return topo_.hosts; }

    /** Host @p i's serialized resources; touch only from its LP. */
    Host &host(int i) { return *hosts_[static_cast<size_t>(i)]; }

    /** True when @p node is a host rank (else a switch). */
    bool isHost(int node) const { return node < topo_.hosts; }

    /** Aggregation engine of switch node @p node; touch only from its
     *  LP. Enabled iff config().switchAgg.slots > 0. */
    SwitchAggEngine &
    aggEngine(int node)
    {
        return *aggEngines_[static_cast<size_t>(node - topo_.hosts)];
    }

    /**
     * Schedule @p fn on host @p i's LP at @p when. The seeding
     * primitive for collectives: fn runs as an LP event and may call
     * send(), host(i).compute(), and atHost() freely.
     */
    void atHost(int i, Tick when, std::function<void()> fn);

    /**
     * Start a message transfer from @p src (must be called from src's
     * LP context, i.e. inside an atHost/delivery callback). The
     * delivery callback fires on @p dst's LP at the delivery tick.
     * In lossy mode the message additionally rides the fault model and
     * retransmits lost packets.
     */
    void send(int src, int dst, uint64_t payloadBytes, uint8_t tos,
              double wireRatio, std::function<void(Tick)> onDelivered,
              spans::ShardRef cause = {});

    /**
     * Schedule @p fn on any node's LP (hosts and switches) — the
     * seeding primitive of the in-network collective's switch FSMs.
     */
    void atNode(int node, Tick when, std::function<void()> fn);

    /** Simulated now of @p node's LP (valid from any context). */
    Tick nodeNow(int node) const;

    /**
     * One single-link hop between *adjacent* nodes (the in-network
     * aggregation data plane). Must be called on @p src's LP;
     * @p onArrive fires on @p dst's LP with the tick the payload is
     * ready there (host destinations include RX driver/engine costs
     * and count into deliveredBytes(); switch destinations get the
     * raw wire-arrival tick — forwarding latency and engine charges
     * are the caller's). @p coded charges NIC codec engine latency at
     * host endpoints. In lossy mode, host-adjacent legs run the same
     * idealized selective repeat as send(), with draw keys derived
     * from the caller-provided @p flowId so packet fates are
     * independent of same-tick processing order; @p onArrive then
     * fires at the arrival of the terminal (fully delivered) flight.
     */
    void sendHop(int src, int dst, uint64_t payloadBytes, bool coded,
                 uint64_t flowId, std::function<void(Tick)> onArrive,
                 spans::ShardRef cause = {});

    /** Append an aggregation-fold trace record (kind 5) on @p node's
     *  LP shard; called by the innet collective from node context. */
    void noteAgg(int node, Tick t0, Tick t1, int src, uint64_t bytes);

    // --- span capture (config().captureSpans) ---

    /** True when this fabric records per-LP span shards. */
    bool captureSpans() const { return config_.captureSpans; }
    /**
     * The run-level shard (lane -1): Iteration/Exchange roots recorded
     * from *serial* context between runs, never from LP events.
     */
    spans::Shard &spanRoot() { return rootSpans_; }
    /** Structural parent stamped on every fabric-internal span. Set
     *  from serial context before run(); read-only during it. */
    void setSpanParent(spans::ShardRef parent) { spanParent_ = parent; }
    /**
     * Record one span on @p node's LP shard (must be called from that
     * node's LP context), parented under the current span parent. The
     * collective FSMs' hook for MsgOverhead / SumReduce / SwitchAgg
     * spans. No-op ({} returned) when capture is off.
     */
    spans::ShardRef noteSpan(int node, spans::Kind kind, Tick t0,
                             Tick t1, spans::ShardRef cause,
                             std::string name);
    /**
     * Delivery-callback context: the RxDriver (host) or Hop (switch)
     * span of the payload that just arrived, valid on the receiving
     * LP for the extent of the send()/sendHop() callback. The
     * per-LP analogue of Tracer::arrivalCause().
     */
    spans::ShardRef arrivalCause() const;

    /** Run the scheduler until every LP drains. @return events run. */
    uint64_t run() { return sched_->run(); }

    // --- deterministic post-run snapshots (merge LP shards in
    // --- LP-index order; byte-identical for every thread count) ---

    /** Total payload bytes delivered to all hosts. */
    uint64_t deliveredBytes() const;
    /** Summed fault statistics over every per-host shard. */
    FaultStats faultTotals() const;
    /** Packets re-shipped by the selective-repeat recovery (lossy). */
    uint64_t retransmittedPackets() const;
    /** Summed aggregation-engine counters over every switch. */
    SwitchAggStats aggTotals() const;
    /** Aggregate fabric counters as "name,value" CSV lines. */
    std::string renderMetricsCsv() const;
    /** The merged causal trace as CSV (t0,t1,lp,kind,src,dst,bytes). */
    std::string renderTraceCsv() const;
    /** Merged trace records, sorted by (t0, lp, emission order). */
    std::vector<LpTraceRec> mergedTrace() const;
    /** Merged, globally-numbered span stream (capture mode): run-level
     *  roots + every LP shard through spans::mergeSpanShards. */
    std::vector<spans::Span> mergedSpans() const;
    /** mergedSpans() in Tracer::renderCsv format — feed inc_critpath. */
    std::string renderSpansCsv() const;

  private:
    struct HopCarry;

    int lpOfNode(int node) const { return plan_.lpOf[static_cast<size_t>(node)]; }
    Link &linkAt(int idx) { return *links_[static_cast<size_t>(idx)]; }
    Switch &switchAt(int node)
    {
        return *switches_[static_cast<size_t>(node - topo_.hosts)];
    }
    /** Append a trace record to the current LP's shard. */
    void trace(int lp, uint8_t kind, Tick t0, Tick t1, int src, int dst,
               uint64_t bytes);
    /** Record a span on LP @p lp's shard (capture mode; {} when off). */
    spans::ShardRef spanAt(int lp, spans::Kind kind, int host, Tick t0,
                           Tick t1, spans::ShardRef cause,
                           std::string name);
    /** Schedule the next hop, clamped into the conservative window. */
    void scheduleHop(int node, Tick when, HopCarry carry);
    /** Execute one hop arrival on @p node's LP. */
    void hopArrive(int node, HopCarry carry);
    /** Ship one lossless segment from src (src-LP context). */
    void shipSegment(int src, int dst, const SegmentMeta &meta,
                     bool compressed, bool last, uint64_t flightPayload,
                     std::shared_ptr<std::function<void(Tick)>> cb,
                     spans::ShardRef cause);
    /** One lossy flight (and its retries) from src (src-LP context). */
    void shipLossy(int src, int dst, std::vector<uint64_t> seqs,
                   uint64_t tailBytes, uint64_t lastSeq, uint32_t attempt,
                   uint64_t flowId, uint8_t tos, double wireRatio,
                   std::shared_ptr<std::function<void(Tick)>> cb,
                   spans::ShardRef cause);
    /** Conservative bound on one flight's path delay (for retries). */
    Tick pathDelayBound(int src, int dst, uint64_t wireBits) const;
    /** Ship the surviving packets of one hop flight (src-LP context). */
    void hopShip(int src, int dst, uint64_t payloadBytes, bool coded,
                 std::shared_ptr<std::function<void(Tick)>> cb,
                 spans::ShardRef cause);
    /** One lossy hop flight (and its retries) from src (src-LP). */
    void hopLossy(int src, int dst, std::vector<uint64_t> seqs,
                  uint64_t tailBytes, uint64_t lastSeq, uint32_t attempt,
                  uint64_t flowId, bool coded,
                  std::shared_ptr<std::function<void(Tick)>> cb,
                  spans::ShardRef cause);

    Topology topo_;
    LpFabricConfig config_;
    LpPlan plan_;
    std::unique_ptr<LpScheduler> sched_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<std::unique_ptr<SwitchAggEngine>> aggEngines_;
    std::vector<std::unique_ptr<Link>> links_; ///< by topology link index
    /** Per-node fault shards (lossy mode); judged on the sender's. */
    std::vector<std::unique_ptr<FaultModel>> faults_;
    /** Per-LP trace shards. */
    std::vector<std::vector<LpTraceRec>> traces_;
    /** Per-LP span shards (capture mode; lane = LP index). */
    std::vector<spans::Shard> spanShards_;
    /** Run-level shard (lane -1); serial-context use only. */
    spans::Shard rootSpans_{-1};
    /** Structural parent of fabric-internal spans (set pre-run). */
    spans::ShardRef spanParent_{};
    /** Per-LP one-shot arrival cause around delivery callbacks. */
    std::vector<spans::ShardRef> arrivalCause_;
    /** Per-host delivered payload bytes. */
    std::vector<uint64_t> delivered_;
    /** Per-host flow-id allocators (lossy mode). */
    std::vector<uint64_t> flowSeq_;
    /** Per-node retransmitted-packet tallies (lossy mode). */
    std::vector<uint64_t> resent_;
};

} // namespace inc

#endif // INCEPTIONN_NET_LP_FABRIC_H
