#include "net/network.h"

#include <algorithm>

#include "net/faults.h"
#include "sim/logging.h"
#include "sim/metrics.h"
#include "sim/span.h"
#include "sim/trace.h"
#include "stats/timeline.h"

namespace inc {

namespace {

void
checkQueueDepth(int depth, const char *what)
{
    INC_ASSERT(depth == kUnboundedQueue || depth > 0,
               "%s queue depth must be positive or kUnboundedQueue, "
               "got %d",
               what, depth);
}

} // namespace

Network::Network(EventQueue &events, NetworkConfig config)
    : events_(events), config_(config), switch_(config.switchConfig),
      jitterRng_(config.jitterSeed)
{
    INC_ASSERT(config_.nodes >= 2, "cluster needs >= 2 nodes");
    INC_ASSERT(config_.segmentBytes % mssFor(config_.nicConfig.mtu) == 0,
               "segmentBytes must be a multiple of the MSS (%llu)",
               static_cast<unsigned long long>(
                   mssFor(config_.nicConfig.mtu)));
    checkQueueDepth(config_.switchConfig.queueDepthPackets, "switch");
    checkQueueDepth(config_.nicConfig.txQueuePackets, "NIC TX");
    for (int i = 0; i < config_.nodes; ++i) {
        double bps = config_.linkBitsPerSecond;
        for (const auto &[host, rate] : config_.linkSpeedOverrides) {
            if (host == i)
                bps = rate;
        }
        hosts_.push_back(std::make_unique<Host>(i, config_.nicConfig));
        uplinks_.push_back(std::make_unique<Link>(
            "host" + std::to_string(i) + "->switch", bps,
            config_.linkLatency));
        downlinks_.push_back(std::make_unique<Link>(
            "switch->host" + std::to_string(i), bps,
            config_.linkLatency));
    }
    if (config_.hostsPerRack > 0) {
        INC_ASSERT(config_.nodes % config_.hostsPerRack == 0,
                   "%d hosts do not fill racks of %d", config_.nodes,
                   config_.hostsPerRack);
        for (int r = 0; r < racks(); ++r) {
            rackUplinks_.push_back(std::make_unique<Link>(
                "tor" + std::to_string(r) + "->core",
                config_.coreLinkBitsPerSecond, config_.coreLinkLatency));
            rackDownlinks_.push_back(std::make_unique<Link>(
                "core->tor" + std::to_string(r),
                config_.coreLinkBitsPerSecond, config_.coreLinkLatency));
        }
    }
}

int
Network::rackOf(int i) const
{
    return config_.hostsPerRack > 0 ? i / config_.hostsPerRack : 0;
}

int
Network::racks() const
{
    return config_.hostsPerRack > 0 ? config_.nodes / config_.hostsPerRack
                                    : 1;
}

std::vector<Link *>
Network::pathFor(int src, int dst)
{
    std::vector<Link *> path{&uplink(src)};
    if (config_.hostsPerRack > 0 && rackOf(src) != rackOf(dst)) {
        path.push_back(
            rackUplinks_[static_cast<size_t>(rackOf(src))].get());
        path.push_back(
            rackDownlinks_[static_cast<size_t>(rackOf(dst))].get());
    }
    path.push_back(&downlink(dst));
    return path;
}

Tick
Network::shipAlongPath(const std::vector<Link *> &path, Tick ready,
                       const std::vector<uint64_t> &hop_bits,
                       const char *timeline_label, uint64_t parent_span,
                       uint64_t cause_span, uint64_t *last_span_out)
{
    // Flow arrows ride with causal tracing: with spans disabled the
    // timeline output stays byte-identical to a build without them.
    const uint64_t flow_id =
        timeline_ && timeline_label && spans::enabled() ? ++flowSeq_
                                                        : 0;
    // Every switch stores-and-forwards per *packet*, which at segment
    // granularity is cut-through with a one-packet delay: each hop may
    // start once the first packet has fully arrived on the previous
    // link (plus forwarding latency) and cannot finish before the last
    // bit has arrived.
    const uint64_t packet_bits =
        (mssFor(config_.nicConfig.mtu) + kHeaderBytes + kFramingBytes) * 8;
    Tick at_dst = 0;
    Tick prev_start = 0;
    Tick prev_tx_end = 0;
    Tick prev_pkt_time = 0;
    for (size_t h = 0; h < path.size(); ++h) {
        Link &l = *path[h];
        const uint64_t bits = hop_bits[h];
        Tick hop_ready = ready;
        if (h > 0) {
            const Tick ser = l.serializationTime(bits);
            const Tick ct = prev_start + prev_pkt_time;
            const Tick tail = prev_tx_end + prev_pkt_time;
            const Tick no_outrun = tail > ser ? tail - ser : 0;
            hop_ready = switch_.readyToForward(std::max(ct, no_outrun));
            switch_.noteForward();
        }
        Tick start = 0;
        at_dst = l.transmit(hop_ready, bits, &start);
        if (timeline_ && timeline_label) {
            timeline_->record(l.name(), timeline_label, start,
                              l.serializationTime(bits));
            // Flow arrows: start at the first hop's slice, step through
            // intermediate links, finish at the final hop's slice end.
            if (flow_id != 0) {
                const bool last = h + 1 == path.size();
                timeline_->flow(l.name(), timeline_label,
                                last ? start + l.serializationTime(bits)
                                     : start,
                                flow_id,
                                h == 0 ? 's' : last ? 'f' : 't');
            }
        }
        if (parent_span != 0) {
            if (auto *sp = spans::active()) {
                // Each hop is caused by the previous one (cut-through:
                // overlap is fine, the walker charges only uncovered
                // time); the first hop chains from the caller's span.
                cause_span =
                    sp->record(spans::Kind::Hop, -1, start, at_dst,
                               parent_span, cause_span, l.name());
            }
        }
        prev_start = start;
        prev_tx_end = at_dst - l.latency();
        prev_pkt_time = l.serializationTime(packet_bits);
    }
    if (last_span_out)
        *last_span_out = cause_span;
    return at_dst;
}

uint64_t
Network::backlogPackets(const Link &link, Tick ready) const
{
    if (link.busyUntil() <= ready)
        return 0;
    const uint64_t packet_bits =
        (mssFor(config_.nicConfig.mtu) + kHeaderBytes + kFramingBytes) * 8;
    const Tick pkt_time = link.serializationTime(packet_bits);
    const Tick backlog = link.busyUntil() - ready;
    return (backlog + pkt_time - 1) / std::max<Tick>(pkt_time, 1);
}

void
Network::transfer(const TransferRequest &req,
                  std::function<void(Tick)> on_delivered)
{
    INC_ASSERT(req.src >= 0 && req.src < nodes() && req.dst >= 0 &&
                   req.dst < nodes() && req.src != req.dst,
               "bad transfer %d->%d", req.src, req.dst);
    INC_ASSERT(req.payloadBytes > 0, "empty transfer");

    Host &src = host(req.src);
    Host &dst = host(req.dst);

    // Both endpoint NICs must have engines for in-network compression to
    // be transparent; otherwise the packets travel uncompressed.
    const bool compressed =
        src.nic().compresses(req.tos) && dst.nic().compresses(req.tos);
    const uint8_t effective_tos = compressed ? req.tos : kDefaultTos;

    const uint64_t seg_size = config_.segmentBytes;
    Tick last_delivery = 0;
    uint64_t remaining = req.payloadBytes;
    const Tick now = events_.now();

    // Causal span of the whole message; segments hang off it.
    uint64_t msg_span = 0;
    uint64_t prev_tx_span = 0;
    if (auto *sp = spans::active()) {
        char nm[64];
        std::snprintf(nm, sizeof(nm), "msg %d->%d %llu B%s", req.src,
                      req.dst,
                      static_cast<unsigned long long>(req.payloadBytes),
                      compressed ? " comp" : "");
        msg_span = sp->open(spans::Kind::Message, req.src, now,
                            sp->currentParent(), sp->pendingCause(), nm);
    }

    while (remaining > 0) {
        const uint64_t chunk = std::min(remaining, seg_size);
        remaining -= chunk;

        const SegmentMeta meta =
            src.nic().planTx(chunk, effective_tos, req.wireRatio);

        // TX driver path: per-packet DMA/driver work pipelines with
        // transmission (the driver prepares packet k+1 while k is on the
        // wire), so the uplink may start after the *first* packet's host
        // work; the host resource stays occupied for the total so that
        // other flows from this host queue behind. This assumes the
        // driver is at least line-rate (perPacketTxCost below one packet
        // serialization time), which holds for all shipped configs.
        const Tick tx_total = src.nic().txHostCost(meta);
        const Tick tx_end = src.occupyTx(now, tx_total);
        const Tick tx_start = tx_end - tx_total;

        // Compression engine pipeline latency (if engaged).
        Tick ready = tx_start + config_.nicConfig.perPacketTxCost;
        uint64_t wire_bits = meta.wireBits(config_.nicConfig.mtu);
        if (compressed) {
            ready += src.nic().engineLatency();
            // If the engine is slower than the line, intake throttles the
            // effective serialization.
            const double engine_bps = src.nic().engineBitsPerSecond();
            if (engine_bps < config_.linkBitsPerSecond) {
                const uint64_t min_bits = static_cast<uint64_t>(
                    static_cast<double>(meta.payloadBytes * 8) *
                    config_.linkBitsPerSecond / engine_bps);
                wire_bits = std::max(wire_bits, min_bits);
            }
        }

        // Per-segment spans: queueing behind the host TX resource, the
        // first packet's driver work, engine pipeline fill, the hop
        // chain, engine drain, RX driver. Consecutive segments chain
        // causally through their TX-driver spans.
        uint64_t ship_cause = 0;
        if (auto *sp = spans::active()) {
            uint64_t seg_cause = prev_tx_span;
            if (tx_start > now) {
                seg_cause =
                    sp->record(spans::Kind::TxQueue, req.src, now,
                               tx_start, msg_span, seg_cause, "tx queue");
            }
            const Tick drv_end =
                tx_start + config_.nicConfig.perPacketTxCost;
            prev_tx_span =
                sp->record(spans::Kind::TxDriver, req.src, tx_start,
                           drv_end, msg_span, seg_cause, "tx driver");
            ship_cause = prev_tx_span;
            if (compressed && ready > drv_end) {
                ship_cause = sp->record(spans::Kind::CodecEngine,
                                        req.src, drv_end, ready,
                                        msg_span, ship_cause,
                                        "tx engine");
            }
        }

        char label[64];
        if (timeline_) {
            std::snprintf(label, sizeof(label), "%s %llu B%s",
                          compressed ? "comp" : "seg",
                          static_cast<unsigned long long>(
                              meta.wirePayloadBytes),
                          compressed ? " (0x28)" : "");
        }
        const std::vector<Link *> path = pathFor(req.src, req.dst);
        const std::vector<uint64_t> hop_bits(path.size(), wire_bits);
        uint64_t hop_last = 0;
        const Tick at_dst =
            shipAlongPath(path, ready, hop_bits,
                          timeline_ ? label : nullptr, msg_span,
                          ship_cause, &hop_last);

        // RX side: decompression engine latency, then driver work. RX
        // processing keeps up with line rate and all arrivals at this
        // host are already serialized by its downlink, so the segment is
        // in host memory one packet's driver work after the last bit
        // lands. rxHostCost() still tallies packet counters.
        Tick rx_ready = at_dst;
        if (compressed)
            rx_ready += dst.nic().engineLatency();
        (void)dst.nic().rxHostCost(meta);
        Tick delivered = rx_ready + config_.nicConfig.perPacketRxCost;
        if (config_.jitterStddevSeconds > 0.0) {
            delivered += fromSeconds(std::abs(
                jitterRng_.gaussian(0.0, config_.jitterStddevSeconds)));
        }
        if (auto *sp = spans::active()) {
            uint64_t rx_cause = hop_last;
            if (compressed && rx_ready > at_dst) {
                rx_cause = sp->record(spans::Kind::CodecEngine, req.dst,
                                      at_dst, rx_ready, msg_span,
                                      rx_cause, "rx engine");
            }
            sp->record(spans::Kind::RxDriver, req.dst, rx_ready,
                       delivered, msg_span, rx_cause, "rx driver");
        }

        last_delivery = std::max(last_delivery, delivered);
    }

    deliveredBytes_ += req.payloadBytes;
    if (auto *m = metrics::active()) {
        m->add("net.transfer.flights", 1);
        m->add("net.transfer.bytes", req.payloadBytes);
        if (compressed)
            m->add("net.transfer.compressed_bytes", req.payloadBytes);
    }
    INC_TRACE(Net, now,
              "transfer %d->%d %llu B tos=0x%02x %s: delivers at "
              "%.6f ms",
              req.src, req.dst,
              static_cast<unsigned long long>(req.payloadBytes), req.tos,
              compressed ? "compressed" : "plain",
              toSeconds(last_delivery) * 1e3);
    if (msg_span != 0) {
        if (auto *sp = spans::active())
            sp->close(msg_span, last_delivery);
    }
    events_.schedule(last_delivery, [cb = std::move(on_delivered),
                                     last_delivery, msg_span] {
        // The delivery callback runs with the message span as its
        // arrival cause so receiver-side work can chain from it.
        auto *sp = msg_span != 0 ? spans::active() : nullptr;
        if (sp)
            sp->setArrivalCause(msg_span);
        cb(last_delivery);
        if (sp)
            sp->clearArrivalCause();
    });
}

void
Network::transferDatagram(
    const DatagramRequest &req,
    std::function<void(const DatagramResult &)> on_arrival)
{
    INC_ASSERT(req.src >= 0 && req.src < nodes() && req.dst >= 0 &&
                   req.dst < nodes() && req.src != req.dst,
               "bad transfer %d->%d", req.src, req.dst);
    INC_ASSERT(req.packetCount > 0, "empty flight");
    const uint64_t mss = mssFor(config_.nicConfig.mtu);
    INC_ASSERT(req.tailBytes <= mss, "tail larger than the MSS");

    Host &src = host(req.src);
    Host &dst = host(req.dst);
    const bool compressed =
        src.nic().compresses(req.tos) && dst.nic().compresses(req.tos);
    const uint8_t effective_tos = compressed ? req.tos : kDefaultTos;
    const Tick now = events_.now();

    const uint64_t payload = req.payloadBytes(mss);
    const SegmentMeta meta =
        src.nic().planTx(payload, effective_tos, req.wireRatio);

    const Tick tx_total = src.nic().txHostCost(meta);
    const Tick tx_end = src.occupyTx(now, tx_total);
    const Tick tx_start = tx_end - tx_total;
    Tick ready = tx_start + config_.nicConfig.perPacketTxCost;
    if (compressed)
        ready += src.nic().engineLatency();

    // Average wire bits of one packet of this flight (headers, framing,
    // and the payload's share after optional compression).
    const uint64_t pkts = meta.packets(config_.nicConfig.mtu);
    auto wire_bits_for = [&](uint64_t n) {
        const uint64_t payload_share =
            pkts > 0 ? meta.wirePayloadBytes * n / pkts : 0;
        return (payload_share + n * (kHeaderBytes + kFramingBytes)) * 8;
    };
    auto packet_bytes = [&](uint64_t seq) {
        const bool is_tail =
            req.tailBytes > 0 && seq == req.firstSeq + req.packetCount - 1;
        return is_tail ? req.tailBytes : mss;
    };

    std::vector<uint64_t> lost;
    lost.reserve(4);

    // Stage 1: NIC TX ring admission against the uplink backlog. Tail
    // packets beyond the free ring slots never reach the wire.
    Link &up = uplink(req.src);
    if (auto *m = metrics::active()) {
        m->add("net.datagram.flights", 1);
        m->add("net.datagram.packets", req.packetCount);
        const uint64_t backlog = backlogPackets(up, ready);
        m->observe("net.nic.tx_backlog_pkts",
                   static_cast<double>(backlog), 0.0, 256.0, 64);
        if (timeline_)
            timeline_->counter("host" + std::to_string(req.src) +
                                   " tx backlog pkts",
                               ready, static_cast<double>(backlog));
    }
    uint64_t admitted = req.packetCount;
    if (config_.nicConfig.txQueuePackets != kUnboundedQueue) {
        const uint64_t backlog = backlogPackets(up, ready);
        const uint64_t depth =
            static_cast<uint64_t>(config_.nicConfig.txQueuePackets);
        const uint64_t free_slots = depth > backlog ? depth - backlog : 0;
        admitted = std::min<uint64_t>(req.packetCount, free_slots);
        const uint64_t dropped = req.packetCount - admitted;
        if (dropped > 0) {
            src.nic().noteTxQueueDrops(dropped);
            if (faults_)
                faults_->noteQueueDrops(dropped);
            if (auto *m = metrics::active())
                m->add("net.nic.tx_ring_drops", dropped);
            for (uint64_t s = req.firstSeq + admitted;
                 s < req.firstSeq + req.packetCount; ++s)
                lost.push_back(s);
            INC_TRACE(Faults, ready,
                      "host%d TX ring full: %llu/%llu packets dropped",
                      req.src, static_cast<unsigned long long>(dropped),
                      static_cast<unsigned long long>(req.packetCount));
        }
    }

    // Stage 2: per-packet hazards on the source cable (outages, random
    // and bursty loss, corruption).
    std::vector<uint64_t> survivors;
    survivors.reserve(admitted);
    const size_t lost_before_up = lost.size();
    for (uint64_t s = req.firstSeq; s < req.firstSeq + admitted; ++s) {
        if (faults_ && isDrop(faults_->judge(req.src, LinkDir::Up, ready,
                                             req.flowId, s, req.attempt)))
            lost.push_back(s);
        else
            survivors.push_back(s);
    }
    if (auto *m = metrics::active())
        m->add("net.cable.drops", lost.size() - lost_before_up);
    if (admitted == 0) {
        // Nothing reached the wire: the sender hears only silence (RTO).
        return;
    }

    // Stage 3: switch output-queue admission against the downlink
    // backlog, evaluated when the flight head reaches the switch.
    Link &down = downlink(req.dst);
    const uint64_t packet_bits = (mss + kHeaderBytes + kFramingBytes) * 8;
    const Tick sw_ready = switch_.readyToForward(
        ready + up.serializationTime(packet_bits) + up.latency());
    if (auto *m = metrics::active()) {
        const uint64_t backlog = backlogPackets(down, sw_ready);
        m->observe("net.switch.queue_depth_pkts",
                   static_cast<double>(backlog), 0.0, 256.0, 64);
        if (timeline_)
            timeline_->counter("switch queue to host" +
                                   std::to_string(req.dst) + " pkts",
                               sw_ready, static_cast<double>(backlog));
    }
    if (config_.switchConfig.queueDepthPackets != kUnboundedQueue &&
        !survivors.empty()) {
        const uint64_t backlog = backlogPackets(down, sw_ready);
        const uint64_t depth =
            static_cast<uint64_t>(config_.switchConfig.queueDepthPackets);
        const uint64_t free_slots = depth > backlog ? depth - backlog : 0;
        if (survivors.size() > free_slots) {
            const uint64_t dropped = survivors.size() - free_slots;
            switch_.noteQueueDrops(dropped);
            if (faults_)
                faults_->noteQueueDrops(dropped);
            if (auto *m = metrics::active())
                m->add("net.switch.queue_drops", dropped);
            for (size_t i = free_slots; i < survivors.size(); ++i)
                lost.push_back(survivors[i]);
            survivors.resize(free_slots);
            INC_TRACE(Faults, sw_ready,
                      "switch queue to host%d full: %llu packets "
                      "tail-dropped",
                      req.dst, static_cast<unsigned long long>(dropped));
        }
    }
    const uint64_t forwarded = survivors.size();

    // Stage 3b: ECN marking (DCTCP-style threshold K on the
    // instantaneous output backlog). The i-th forwarded packet finds
    // backlog + i packets ahead of it, so marks are a suffix of the
    // flight — exactly a tail of the queue beyond K.
    size_t ce_from = survivors.size();
    if (config_.switchConfig.ecnThresholdPackets != kUnboundedQueue &&
        !survivors.empty()) {
        const uint64_t backlog = backlogPackets(down, sw_ready);
        const uint64_t k = static_cast<uint64_t>(
            config_.switchConfig.ecnThresholdPackets);
        ce_from = k > backlog
                      ? std::min<size_t>(static_cast<size_t>(k - backlog),
                                         survivors.size())
                      : 0;
        const uint64_t marks = survivors.size() - ce_from;
        if (marks > 0) {
            switch_.noteEcnMarks(marks);
            if (auto *m = metrics::active()) {
                m->add("net.switch.ecn_marks", marks);
                // Per-output-queue breakdown: which host's downlink
                // queue ran beyond the threshold.
                m->add("net.switch.ecn_marks.to_host" +
                           std::to_string(req.dst),
                       marks);
            }
            INC_TRACE(Faults, sw_ready,
                      "switch queue to host%d over ECN threshold: %llu "
                      "packets CE-marked",
                      req.dst, static_cast<unsigned long long>(marks));
        }
    }

    // Stage 4: per-packet hazards on the destination cable.
    std::vector<uint64_t> delivered;
    std::vector<uint64_t> ce;
    delivered.reserve(survivors.size());
    const size_t lost_before_down = lost.size();
    for (size_t i = 0; i < survivors.size(); ++i) {
        const uint64_t s = survivors[i];
        if (faults_ && isDrop(faults_->judge(req.dst, LinkDir::Down,
                                             sw_ready, req.flowId, s,
                                             req.attempt))) {
            lost.push_back(s);
        } else {
            delivered.push_back(s);
            if (i >= ce_from)
                ce.push_back(s);
        }
    }
    if (auto *m = metrics::active()) {
        m->add("net.cable.drops", lost.size() - lost_before_down);
        m->add("net.datagram.packets_delivered", delivered.size());
    }

    // Timing: the uplink carries every admitted packet (losses die at
    // the far end); the switch forwards only what its queue accepted;
    // downlink losses still occupy the downlink. Two-tier rack hops
    // carry the forwarded count (rack-link faults are not modelled).
    const std::vector<Link *> path = pathFor(req.src, req.dst);
    std::vector<uint64_t> hop_bits(path.size(), wire_bits_for(forwarded));
    hop_bits.front() = wire_bits_for(admitted);
    const Tick at_dst = forwarded > 0
                            ? shipAlongPath(path, ready, hop_bits, nullptr)
                            : 0;

    if (delivered.empty()) {
        // The flight died entirely: no ACKs, the RTO recovers.
        return;
    }

    // RX side accounting and completion, as in transfer().
    Tick rx_ready = at_dst;
    if (compressed)
        rx_ready += dst.nic().engineLatency();
    SegmentMeta rx_meta;
    rx_meta.payloadBytes = delivered.size() * mss;
    rx_meta.wirePayloadBytes = rx_meta.payloadBytes;
    rx_meta.tos = effective_tos;
    (void)dst.nic().rxHostCost(rx_meta);
    const Tick arrival = rx_ready + config_.nicConfig.perPacketRxCost;

    DatagramResult res;
    res.when = arrival;
    res.firstSeq = req.firstSeq;
    res.packetCount = req.packetCount;
    std::sort(lost.begin(), lost.end());
    res.lostSeqs = std::move(lost);
    res.ecnSeqs = std::move(ce);
    for (uint64_t s : delivered)
        deliveredBytes_ += packet_bytes(s);

    INC_TRACE(Net, now,
              "datagram %d->%d seq[%llu,%llu) attempt=%u: %zu/%llu "
              "arrive at %.6f ms",
              req.src, req.dst,
              static_cast<unsigned long long>(req.firstSeq),
              static_cast<unsigned long long>(req.firstSeq +
                                              req.packetCount),
              req.attempt, delivered.size(),
              static_cast<unsigned long long>(req.packetCount),
              toSeconds(arrival) * 1e3);
    events_.schedule(arrival, [cb = std::move(on_arrival),
                               res = std::move(res)] { cb(res); });
}

} // namespace inc
