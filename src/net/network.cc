#include "net/network.h"

#include <algorithm>

#include "sim/logging.h"
#include "sim/trace.h"
#include "stats/timeline.h"

namespace inc {

Network::Network(EventQueue &events, NetworkConfig config)
    : events_(events), config_(config), switch_(config.switchConfig),
      jitterRng_(config.jitterSeed)
{
    INC_ASSERT(config_.nodes >= 2, "cluster needs >= 2 nodes");
    INC_ASSERT(config_.segmentBytes % mssFor(config_.nicConfig.mtu) == 0,
               "segmentBytes must be a multiple of the MSS (%llu)",
               static_cast<unsigned long long>(
                   mssFor(config_.nicConfig.mtu)));
    for (int i = 0; i < config_.nodes; ++i) {
        double bps = config_.linkBitsPerSecond;
        for (const auto &[host, rate] : config_.linkSpeedOverrides) {
            if (host == i)
                bps = rate;
        }
        hosts_.push_back(std::make_unique<Host>(i, config_.nicConfig));
        uplinks_.push_back(std::make_unique<Link>(
            "host" + std::to_string(i) + "->switch", bps,
            config_.linkLatency));
        downlinks_.push_back(std::make_unique<Link>(
            "switch->host" + std::to_string(i), bps,
            config_.linkLatency));
    }
    if (config_.hostsPerRack > 0) {
        INC_ASSERT(config_.nodes % config_.hostsPerRack == 0,
                   "%d hosts do not fill racks of %d", config_.nodes,
                   config_.hostsPerRack);
        for (int r = 0; r < racks(); ++r) {
            rackUplinks_.push_back(std::make_unique<Link>(
                "tor" + std::to_string(r) + "->core",
                config_.coreLinkBitsPerSecond, config_.coreLinkLatency));
            rackDownlinks_.push_back(std::make_unique<Link>(
                "core->tor" + std::to_string(r),
                config_.coreLinkBitsPerSecond, config_.coreLinkLatency));
        }
    }
}

int
Network::rackOf(int i) const
{
    return config_.hostsPerRack > 0 ? i / config_.hostsPerRack : 0;
}

int
Network::racks() const
{
    return config_.hostsPerRack > 0 ? config_.nodes / config_.hostsPerRack
                                    : 1;
}

void
Network::transfer(const TransferRequest &req,
                  std::function<void(Tick)> on_delivered)
{
    INC_ASSERT(req.src >= 0 && req.src < nodes() && req.dst >= 0 &&
                   req.dst < nodes() && req.src != req.dst,
               "bad transfer %d->%d", req.src, req.dst);
    INC_ASSERT(req.payloadBytes > 0, "empty transfer");

    Host &src = host(req.src);
    Host &dst = host(req.dst);
    Link &up = uplink(req.src);
    Link &down = downlink(req.dst);

    // Both endpoint NICs must have engines for in-network compression to
    // be transparent; otherwise the packets travel uncompressed.
    const bool compressed =
        src.nic().compresses(req.tos) && dst.nic().compresses(req.tos);
    const uint8_t effective_tos = compressed ? req.tos : kDefaultTos;

    const uint64_t seg_size = config_.segmentBytes;
    Tick last_delivery = 0;
    uint64_t remaining = req.payloadBytes;
    const Tick now = events_.now();

    while (remaining > 0) {
        const uint64_t chunk = std::min(remaining, seg_size);
        remaining -= chunk;

        const SegmentMeta meta =
            src.nic().planTx(chunk, effective_tos, req.wireRatio);

        // TX driver path: per-packet DMA/driver work pipelines with
        // transmission (the driver prepares packet k+1 while k is on the
        // wire), so the uplink may start after the *first* packet's host
        // work; the host resource stays occupied for the total so that
        // other flows from this host queue behind. This assumes the
        // driver is at least line-rate (perPacketTxCost below one packet
        // serialization time), which holds for all shipped configs.
        const Tick tx_total = src.nic().txHostCost(meta);
        const Tick tx_end = src.occupyTx(now, tx_total);
        const Tick tx_start = tx_end - tx_total;

        // Compression engine pipeline latency (if engaged).
        Tick ready = tx_start + config_.nicConfig.perPacketTxCost;
        uint64_t wire_bits = meta.wireBits(config_.nicConfig.mtu);
        if (compressed) {
            ready += src.nic().engineLatency();
            // If the engine is slower than the line, intake throttles the
            // effective serialization.
            const double engine_bps = src.nic().engineBitsPerSecond();
            if (engine_bps < config_.linkBitsPerSecond) {
                const uint64_t min_bits = static_cast<uint64_t>(
                    static_cast<double>(meta.payloadBytes * 8) *
                    config_.linkBitsPerSecond / engine_bps);
                wire_bits = std::max(wire_bits, min_bits);
            }
        }

        // The link path: host->ToR, (ToR->core, core->ToR for
        // cross-rack traffic in two-tier mode), ToR->host. Every switch
        // stores-and-forwards per *packet*, which at segment granularity
        // is cut-through with a one-packet delay: each hop may start
        // once the first packet has fully arrived on the previous link
        // (plus forwarding latency) and cannot finish before the last
        // bit has arrived.
        std::vector<Link *> path{&up};
        if (config_.hostsPerRack > 0 &&
            rackOf(req.src) != rackOf(req.dst)) {
            path.push_back(rackUplinks_[static_cast<size_t>(
                                            rackOf(req.src))]
                               .get());
            path.push_back(rackDownlinks_[static_cast<size_t>(
                                              rackOf(req.dst))]
                               .get());
        }
        path.push_back(&down);

        const uint64_t packet_bits =
            (mssFor(config_.nicConfig.mtu) + kHeaderBytes +
             kFramingBytes) *
            8;
        Tick at_dst = 0;
        Tick prev_start = 0;
        Tick prev_tx_end = 0;
        Tick prev_pkt_time = 0;
        for (size_t h = 0; h < path.size(); ++h) {
            Link &l = *path[h];
            Tick hop_ready = ready;
            if (h > 0) {
                const Tick ser = l.serializationTime(wire_bits);
                const Tick ct = prev_start + prev_pkt_time;
                const Tick tail = prev_tx_end + prev_pkt_time;
                const Tick no_outrun = tail > ser ? tail - ser : 0;
                hop_ready =
                    switch_.readyToForward(std::max(ct, no_outrun));
                switch_.noteForward();
            }
            Tick start = 0;
            at_dst = l.transmit(hop_ready, wire_bits, &start);
            if (timeline_) {
                char label[64];
                std::snprintf(label, sizeof(label), "%s %llu B%s",
                              compressed ? "comp" : "seg",
                              static_cast<unsigned long long>(
                                  meta.wirePayloadBytes),
                              compressed ? " (0x28)" : "");
                timeline_->record(l.name(), label, start,
                                  l.serializationTime(wire_bits));
            }
            prev_start = start;
            prev_tx_end = at_dst - l.latency();
            prev_pkt_time = l.serializationTime(packet_bits);
        }

        // RX side: decompression engine latency, then driver work. RX
        // processing keeps up with line rate and all arrivals at this
        // host are already serialized by its downlink, so the segment is
        // in host memory one packet's driver work after the last bit
        // lands. rxHostCost() still tallies packet counters.
        Tick rx_ready = at_dst;
        if (compressed)
            rx_ready += dst.nic().engineLatency();
        (void)dst.nic().rxHostCost(meta);
        Tick delivered = rx_ready + config_.nicConfig.perPacketRxCost;
        if (config_.jitterStddevSeconds > 0.0) {
            delivered += fromSeconds(std::abs(
                jitterRng_.gaussian(0.0, config_.jitterStddevSeconds)));
        }

        last_delivery = std::max(last_delivery, delivered);
    }

    deliveredBytes_ += req.payloadBytes;
    INC_TRACE(Net, now,
              "transfer %d->%d %llu B tos=0x%02x %s: delivers at "
              "%.6f ms",
              req.src, req.dst,
              static_cast<unsigned long long>(req.payloadBytes), req.tos,
              compressed ? "compressed" : "plain",
              toSeconds(last_delivery) * 1e3);
    events_.schedule(last_delivery,
                     [cb = std::move(on_delivered), last_delivery] {
                         cb(last_delivery);
                     });
}

} // namespace inc
