/**
 * @file
 * Deterministic multi-tenant background-traffic generation. A traffic
 * pattern — which host pairs talk, how much, starting when — is a pure
 * function of (seed, host count, config), so the same heavy neighbour
 * load can be replayed under every transport variant a benchmark
 * compares (Reno vs DCTCP, ECN on/off, in-network vs host collectives)
 * and across reruns, machines, and thread counts.
 *
 * Two layers:
 *  - generateTrafficPattern(): the pattern itself, transport-agnostic —
 *    a sorted list of flows with src/dst/bytes/start/flowId;
 *  - TrafficReplay: drives one pattern over a serial Fabric through
 *    ReliableChannels (one per flow), so the background load contends
 *    for the same links, rides the same fault model, and obeys the
 *    same congestion control as the foreground traffic.
 */

#ifndef INCEPTIONN_NET_TRAFFIC_GEN_H
#define INCEPTIONN_NET_TRAFFIC_GEN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "net/reliable.h"
#include "sim/event_queue.h"

namespace inc {

/** Parameters of one background-traffic pattern. */
struct TrafficGenConfig
{
    /** Pattern seed; same seed + host count = same flows, always. */
    uint64_t seed = 0x7E11;
    /** Concurrent background flows (distinct ReliableChannels). */
    int flows = 4;
    /** Messages each flow sends back-to-back. */
    int messagesPerFlow = 4;
    /** Payload of each message. */
    uint64_t messageBytes = 1 << 20;
    /** First flow's start tick. */
    Tick startAt = 0;
    /** Deterministic stagger between consecutive flow starts. */
    Tick interStart = 50 * kMicrosecond;
    /** Transport tunables shared by every background channel. */
    ReliableConfig transport{};
    /** Base of the flow-id block (flow i uses flowIdBase + i); keep
     *  disjoint from foreground flow ids. */
    uint64_t flowIdBase = 0xB6000000ULL;
};

/** One generated background flow. */
struct TrafficFlow
{
    int src = 0;
    int dst = 0; ///< != src
    uint64_t flowId = 0;
    uint64_t messageBytes = 0;
    int messages = 0;
    Tick startAt = 0;
};

/**
 * The pure pattern: @p cfg.flows flows over @p hosts hosts with
 * seed-derived endpoints (src uniform, dst uniform excluding src) and
 * staggered starts. Requires hosts >= 2. Independent of any fabric.
 */
std::vector<TrafficFlow> generateTrafficPattern(const TrafficGenConfig &cfg,
                                                int hosts);

/** Aggregate outcome of one replay. */
struct TrafficReplayStats
{
    uint64_t messagesDelivered = 0;
    uint64_t bytesDelivered = 0;
    uint64_t packetsSent = 0;
    uint64_t retransmits = 0;
    uint64_t timeouts = 0;
    uint64_t dropsObserved = 0;
    uint64_t ecnCePackets = 0;
    uint64_t dctcpCwndCuts = 0;
    Tick finish = 0; ///< last message delivery
};

/**
 * Replay a pattern over @p net as live reliable flows. start() seeds
 * the sends; the caller drives the EventQueue (typically alongside a
 * foreground collective). The replay must outlive the queue drain.
 */
class TrafficReplay
{
  public:
    TrafficReplay(Fabric &net, TrafficGenConfig config);

    /** Schedule every flow's sends. Call once, from outside the run. */
    void start();

    /** True once every message of every flow was delivered. */
    bool
    finished() const
    {
        return delivered_ == totalMessages_;
    }

    const std::vector<TrafficFlow> &flows() const { return flows_; }
    /** Summed channel counters + delivery clock. */
    TrafficReplayStats stats() const;

  private:
    Fabric *net_;
    TrafficGenConfig cfg_;
    std::vector<TrafficFlow> flows_;
    std::vector<std::unique_ptr<ReliableChannel>> channels_;
    int delivered_ = 0;
    int totalMessages_ = 0;
    Tick finish_ = 0;
};

} // namespace inc

#endif // INCEPTIONN_NET_TRAFFIC_GEN_H
