/**
 * @file
 * Explicit topology graphs for datacenter-scale fabrics. The classic
 * Network keeps its implicit star / two-tier wiring; everything at
 * 1000+ workers (fat-tree, dragonfly) is described here as an explicit
 * node/link graph with deterministic structured routing, and executed
 * by the LP-partitioned fabric (net/lp_fabric.h).
 *
 * Node ids are global: hosts occupy [0, hosts), switches
 * [hosts, hosts + switches). Links are *directed* (full-duplex cable =
 * two entries) and sorted by (src, dst) after generation, so link
 * indices are a pure function of the topology — never of generation
 * order.
 *
 * Routing is structured per topology kind (up/down for fat-tree,
 * minimal local-global-local for dragonfly), with multipath choices
 * resolved by a deterministic function of (src, dst) — the same
 * flavour of ECMP-by-hash real fabrics use, minus the physical-port
 * entropy. route() therefore never consults global state and is safe
 * to call from any logical process.
 */

#ifndef INCEPTIONN_NET_TOPOLOGY_H
#define INCEPTIONN_NET_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace inc {

/** One directed link of a topology graph. */
struct TopoLink
{
    int src = 0;
    int dst = 0;
    double bitsPerSecond = 10e9;
    Tick latency = 500 * kNanosecond;
};

/** Which generator built the graph (selects the routing function). */
enum class TopologyKind { Star, TwoTier, FatTree, Dragonfly };

/** An explicit fabric graph plus its structured routing parameters. */
struct Topology
{
    TopologyKind kind = TopologyKind::Star;
    std::string name;
    int hosts = 0;
    int switches = 0;
    std::vector<TopoLink> links; ///< directed, sorted by (src, dst)

    // Generator parameters consulted by route(); meaningful fields
    // depend on kind (see the generator functions below).
    int radix = 0;           ///< fat-tree k
    int hostsPerRack = 0;    ///< two-tier
    int routersPerGroup = 0; ///< dragonfly a
    int hostsPerRouter = 0;  ///< dragonfly p
    int globalsPerRouter = 0;///< dragonfly h
    int groups = 0;          ///< dragonfly g

    int nodeCount() const { return hosts + switches; }
    bool isSwitch(int node) const { return node >= hosts; }

    /** Index into links of the directed link src->dst; -1 if absent. */
    int linkIndex(int src, int dst) const;
    const TopoLink &link(int idx) const
    {
        return links[static_cast<size_t>(idx)];
    }

    /**
     * Node sequence (src host ... dst host, inclusive) of the
     * deterministic minimal route. @pre src != dst, both hosts.
     */
    std::vector<int> route(int src, int dst) const;

    /** Smallest link latency — the LP scheduler's safe lookahead. */
    Tick minLatency() const;

    // --- analysis helpers (BFS-based; meant for tests and small
    // --- graphs, not the simulation hot path) ---

    /** Max over host pairs of the minimal hop count (links traversed). */
    int diameterHops() const;
    /**
     * Directed links leaving @p side (a host bipartition given as a
     * 0/1 flag per *node*; switches count on the side they are
     * flagged). Used to check bisection width on canonical halves.
     */
    int crossLinks(const std::vector<int> &side) const;

    /** Sort links by (src, dst) and sanity-check endpoints. */
    void finalize();
};

/** Hosts around one switch — the classic star, as an explicit graph. */
Topology starTopology(int hosts, double bitsPerSecond = 10e9,
                      Tick latency = 500 * kNanosecond);

/**
 * Racks of @p hostsPerRack hosts under ToR switches, one core switch
 * above (paper Sec. VII-C as an explicit graph).
 */
Topology twoTierTopology(int hosts, int hostsPerRack,
                         double edgeBitsPerSecond = 10e9,
                         Tick edgeLatency = 500 * kNanosecond,
                         double coreBitsPerSecond = 10e9,
                         Tick coreLatency = 1 * kMicrosecond);

/**
 * k-ary fat-tree (Al-Fares et al.): k pods of k/2 edge + k/2
 * aggregation switches, (k/2)^2 core switches, k^3/4 hosts; full
 * bisection bandwidth. @p k must be even and >= 2. Up-path choices
 * (which aggregation, which core) are deterministic functions of the
 * destination host, matching per-destination ECMP.
 */
Topology fatTreeTopology(int k, double bitsPerSecond = 10e9,
                         Tick latency = 500 * kNanosecond);

/**
 * Canonical dragonfly (Kim et al.): @p groups groups of
 * @p routersPerGroup routers, each router serving @p hostsPerRouter
 * hosts and @p globalsPerRouter global links; routers within a group
 * form a complete graph. Requires
 * groups - 1 <= routersPerGroup * globalsPerRouter and
 * groups >= 1. Global links get @p globalLatency (longer cables).
 * Minimal routing: local hop to the exit router, one global hop, local
 * hop to the destination router.
 */
Topology dragonflyTopology(int routersPerGroup, int hostsPerRouter,
                           int globalsPerRouter, int groups,
                           double bitsPerSecond = 10e9,
                           Tick latency = 500 * kNanosecond,
                           double globalBitsPerSecond = 10e9,
                           Tick globalLatency = 2 * kMicrosecond);

/**
 * LP partition of a topology: every node (host or switch) is its own
 * logical process, each directed link is owned by its transmitting
 * node's LP, and the conservative lookahead is the minimum link
 * latency. lpOf is indexed by node id.
 */
struct LpPlan
{
    int lpCount = 0;
    std::vector<int> lpOf;
    Tick lookahead = 0;
};

LpPlan makeLpPlan(const Topology &topo);

} // namespace inc

#endif // INCEPTIONN_NET_TOPOLOGY_H
