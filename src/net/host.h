/**
 * @file
 * A cluster node: a NIC plus serialized host-side resources (CPU for
 * aggregation arithmetic, TX/RX driver paths). Each resource is a
 * busy-until serializer; contention on them is what makes a designated
 * aggregator the bottleneck in the worker-aggregator runs.
 */

#ifndef INCEPTIONN_NET_HOST_H
#define INCEPTIONN_NET_HOST_H

#include <algorithm>

#include "net/nic.h"
#include "sim/event_queue.h"

namespace inc {

/** One node of the simulated cluster. */
class Host
{
  public:
    Host(int id, NicConfig nic_config)
        : id_(id), nic_(nic_config)
    {
    }

    int id() const { return id_; }
    Nic &nic() { return nic_; }
    const Nic &nic() const { return nic_; }

    /**
     * Occupy the CPU for @p duration starting no earlier than @p ready.
     * @return completion tick.
     */
    Tick
    compute(Tick ready, Tick duration)
    {
        const Tick start = std::max(ready, cpuBusyUntil_);
        cpuBusyUntil_ = start + duration;
        cpuBusyTime_ += duration;
        return cpuBusyUntil_;
    }

    /** Occupy the TX driver path. @return completion tick. */
    Tick
    occupyTx(Tick ready, Tick duration)
    {
        const Tick start = std::max(ready, txBusyUntil_);
        txBusyUntil_ = start + duration;
        return txBusyUntil_;
    }

    /** Occupy the RX driver path. @return completion tick. */
    Tick
    occupyRx(Tick ready, Tick duration)
    {
        const Tick start = std::max(ready, rxBusyUntil_);
        rxBusyUntil_ = start + duration;
        return rxBusyUntil_;
    }

    Tick cpuBusyUntil() const { return cpuBusyUntil_; }
    Tick cpuBusyTime() const { return cpuBusyTime_; }

  private:
    int id_;
    Nic nic_;
    Tick cpuBusyUntil_ = 0;
    Tick cpuBusyTime_ = 0;
    Tick txBusyUntil_ = 0;
    Tick rxBusyUntil_ = 0;
};

} // namespace inc

#endif // INCEPTIONN_NET_HOST_H
