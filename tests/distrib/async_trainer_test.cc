#include "distrib/async_trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic_digits.h"
#include "nn/model_zoo.h"

namespace inc {
namespace {

AsyncTrainerConfig
asyncConfig(int delay)
{
    AsyncTrainerConfig cfg;
    cfg.workers = 4;
    cfg.batchPerWorker = 16;
    cfg.sgd.learningRate = 0.05;
    cfg.sgd.lrDecayEvery = 0;
    cfg.sgd.clipGradNorm = 5.0;
    cfg.delay = delay;
    cfg.seed = 13;
    return cfg;
}

TEST(AsyncTrainer, ZeroDelayLearns)
{
    SyntheticDigits train(1600, 1), test(400, 2);
    AsyncTrainer t(&buildHdcSmall, train, test, asyncConfig(0));
    t.train(200);
    EXPECT_GT(t.evaluate(), 0.6);
    EXPECT_EQ(t.updatesApplied(), 200u);
}

TEST(AsyncTrainer, ModerateStalenessStillLearns)
{
    // Stale gradients interact badly with momentum at full LR (the
    // classic async instability); the standard remedy is a smaller
    // step, after which delay-3 converges fine.
    SyntheticDigits train(1600, 1), test(400, 2);
    AsyncTrainerConfig cfg = asyncConfig(3);
    cfg.sgd.learningRate = 0.02;
    AsyncTrainer t(&buildHdcSmall, train, test, cfg);
    t.train(400);
    EXPECT_GT(t.evaluate(), 0.5);
}

TEST(AsyncTrainer, ExtremeStalenessHurts)
{
    // A hard task shows the stale-gradient penalty within few updates.
    SyntheticDigits train(1600, 1, true, 0.35f, 3);
    SyntheticDigits test(400, 2, true, 0.35f, 3);

    AsyncTrainer fresh(&buildHdcSmall, train, test, asyncConfig(0));
    fresh.train(250);
    AsyncTrainer stale(&buildHdcSmall, train, test, asyncConfig(48));
    stale.train(250);
    // Staleness never helps; usually it costs several points.
    EXPECT_GE(fresh.evaluate() + 0.03, stale.evaluate());
}

TEST(AsyncTrainer, DeterministicForSeed)
{
    SyntheticDigits train(800, 1), test(200, 2);
    AsyncTrainer a(&buildHdcSmall, train, test, asyncConfig(2));
    AsyncTrainer b(&buildHdcSmall, train, test, asyncConfig(2));
    a.train(50);
    b.train(50);
    EXPECT_DOUBLE_EQ(a.evaluate(), b.evaluate());
    EXPECT_DOUBLE_EQ(a.lastMeanLoss(), b.lastMeanLoss());
}

} // namespace
} // namespace inc
