#include "distrib/sim_trainer.h"

#include <gtest/gtest.h>

namespace inc {
namespace {

SimTrainerConfig
baseConfig(const Workload &w, ExchangeAlgorithm algo, uint64_t iters = 5)
{
    SimTrainerConfig cfg;
    cfg.workload = w;
    cfg.workers = 4;
    cfg.algorithm = algo;
    cfg.iterations = iters;
    return cfg;
}

TEST(Workloads, TableOneHyperparameters)
{
    const auto ws = allWorkloads();
    ASSERT_EQ(ws.size(), 4u);
    EXPECT_EQ(ws[0].name, "AlexNet");
    EXPECT_EQ(ws[0].perNodeBatch, 64u);
    EXPECT_EQ(ws[0].totalIterations, 320000u);
    EXPECT_DOUBLE_EQ(ws[1].hyper.learningRate, 0.1);
    EXPECT_DOUBLE_EQ(ws[1].hyper.lrDecayFactor, 5.0);
    EXPECT_EQ(ws[2].hyper.lrDecayEvery, 200000u);
    EXPECT_DOUBLE_EQ(ws[3].hyper.weightDecay, 5e-5);
}

TEST(Workloads, GammaIsMemoryBandwidthClass)
{
    // Table II implies ~0.1 ns per summed byte on every model.
    for (const auto &w : allWorkloads()) {
        const double gamma = w.sumSecondsPerByte();
        EXPECT_GT(gamma, 2e-11) << w.name;
        EXPECT_LT(gamma, 3e-10) << w.name;
    }
}

TEST(SimTrainer, AlexNetWaBreakdownMatchesTableTwoShape)
{
    // Paper Table II: communication is ~75% of AlexNet training time on
    // the 5-node 10 GbE cluster.
    const auto result = runSimTraining(
        baseConfig(alexNetWorkload(), ExchangeAlgorithm::WorkerAggregator));
    const double comm_frac = result.breakdown.communicationFraction();
    EXPECT_GT(comm_frac, 0.60);
    EXPECT_LT(comm_frac, 0.90);
    // Per-iteration total in the paper: ~1.96 s. Same order here.
    EXPECT_GT(result.secondsPerIteration(), 1.0);
    EXPECT_LT(result.secondsPerIteration(), 4.0);
}

TEST(SimTrainer, HdcWaCommunicationDominatesDespiteTinyModel)
{
    const auto result = runSimTraining(
        baseConfig(hdcWorkload(), ExchangeAlgorithm::WorkerAggregator));
    // Paper: 80.2% communication for HDC.
    EXPECT_GT(result.breakdown.communicationFraction(), 0.5);
}

TEST(SimTrainer, RingBeatsWaOnEveryWorkload)
{
    for (const auto &w : allWorkloads()) {
        const auto wa = runSimTraining(
            baseConfig(w, ExchangeAlgorithm::WorkerAggregator));
        const auto ring =
            runSimTraining(baseConfig(w, ExchangeAlgorithm::Ring));
        EXPECT_LT(ring.totalSeconds, wa.totalSeconds) << w.name;
        EXPECT_LT(ring.gradientExchangeSeconds,
                  wa.gradientExchangeSeconds)
            << w.name;
    }
}

TEST(SimTrainer, CompressionReducesRingCommunication)
{
    SimTrainerConfig cfg =
        baseConfig(alexNetWorkload(), ExchangeAlgorithm::Ring);
    const auto plain = runSimTraining(cfg);
    cfg.compressGradients = true;
    cfg.wireRatio = 10.0;
    const auto comp = runSimTraining(cfg);
    EXPECT_LT(comp.breakdown.seconds(TrainStep::Communicate),
              plain.breakdown.seconds(TrainStep::Communicate) * 0.6);
    // Compute steps unchanged.
    EXPECT_DOUBLE_EQ(comp.breakdown.seconds(TrainStep::Forward),
                     plain.breakdown.seconds(TrainStep::Forward));
}

TEST(SimTrainer, FullIncVsWaSpeedupInPaperRange)
{
    // Paper Fig. 12: INC+C over WA = 2.2x (VGG-16) to 3.1x (AlexNet).
    // Our simulated ring runs closer to ideal than the authors' software
    // ring (no TCP/MPI inefficiency), so the band is generous upward;
    // EXPERIMENTS.md discusses the deviation.
    for (const auto &w : {alexNetWorkload(), vgg16Workload()}) {
        const auto wa = runSimTraining(
            baseConfig(w, ExchangeAlgorithm::WorkerAggregator));
        SimTrainerConfig inc_cfg = baseConfig(w, ExchangeAlgorithm::Ring);
        inc_cfg.compressGradients = true;
        inc_cfg.wireRatio = 10.0; // class of INC(2^-10) on real gradients
        const auto inc = runSimTraining(inc_cfg);
        const double speedup = wa.totalSeconds / inc.totalSeconds;
        EXPECT_GT(speedup, 1.8) << w.name;
        EXPECT_LT(speedup, 5.5) << w.name;
    }
}

TEST(SimTrainer, WaExchangeScalesLinearlyRingStaysFlat)
{
    // Paper Fig. 15 shape.
    auto exchange = [](ExchangeAlgorithm algo, int workers) {
        SimTrainerConfig cfg =
            baseConfig(alexNetWorkload(), algo, /*iters=*/3);
        cfg.workers = workers;
        return runSimTraining(cfg).gradientExchangeSeconds;
    };
    const double wa4 = exchange(ExchangeAlgorithm::WorkerAggregator, 4);
    const double wa8 = exchange(ExchangeAlgorithm::WorkerAggregator, 8);
    const double ring4 = exchange(ExchangeAlgorithm::Ring, 4);
    const double ring8 = exchange(ExchangeAlgorithm::Ring, 8);
    EXPECT_GT(wa8 / wa4, 1.6);
    EXPECT_NEAR(ring8 / ring4, 1.0, 0.25);
}

TEST(SimTrainer, HierarchicalAlgorithmsCompleteAndOrderSanely)
{
    // At 8 workers: WA star is worst, the tree helps, hierarchical
    // rings help more, and the flat ring wins on pure bandwidth (paper
    // Fig. 1 narrative at small scale).
    auto total = [](ExchangeAlgorithm algo) {
        SimTrainerConfig cfg = baseConfig(alexNetWorkload(), algo, 3);
        cfg.workers = 8;
        cfg.groupSize = 4;
        return runSimTraining(cfg).totalSeconds;
    };
    const double wa = total(ExchangeAlgorithm::WorkerAggregator);
    const double tree = total(ExchangeAlgorithm::Tree);
    const double hier = total(ExchangeAlgorithm::HierRing);
    const double ring = total(ExchangeAlgorithm::Ring);
    EXPECT_LT(tree, wa);
    EXPECT_LT(hier, tree);
    EXPECT_LT(ring, hier);
}

TEST(SimTrainer, OverlapBucketsHideCommunication)
{
    // Gradient bucketing overlaps the exchange with the backward pass:
    // more buckets, shorter iterations — up to the point where the
    // exchange itself is the critical path.
    auto total = [](int buckets) {
        SimTrainerConfig cfg =
            baseConfig(vgg16Workload(), ExchangeAlgorithm::Ring, 3);
        cfg.overlapBuckets = buckets;
        return runSimTraining(cfg).totalSeconds;
    };
    const double none = total(1);
    const double four = total(4);
    const double sixteen = total(16);
    EXPECT_LT(four, none);
    EXPECT_LE(sixteen, four * 1.02);
    // Lower bound: the iteration can never be shorter than compute
    // alone.
    const Workload w = vgg16Workload();
    EXPECT_GT(sixteen / 3.0, w.timing.localCompute() + w.timing.update);
}

TEST(SimTrainer, SingleBucketMatchesLegacyPath)
{
    SimTrainerConfig cfg =
        baseConfig(alexNetWorkload(), ExchangeAlgorithm::Ring, 3);
    cfg.overlapBuckets = 1;
    const auto a = runSimTraining(cfg);
    const auto b = runSimTraining(cfg);
    EXPECT_DOUBLE_EQ(a.totalSeconds, b.totalSeconds); // deterministic
    EXPECT_GT(a.gradientExchangeSeconds, 0.0);
}

TEST(SimTrainer, IterationsScaleLinearly)
{
    SimTrainerConfig cfg =
        baseConfig(hdcWorkload(), ExchangeAlgorithm::Ring, 4);
    const auto four = runSimTraining(cfg);
    cfg.iterations = 8;
    const auto eight = runSimTraining(cfg);
    EXPECT_NEAR(eight.totalSeconds / four.totalSeconds, 2.0, 0.05);
}

// Regression for the inc_analyze taint-float-accum audit: total() now
// folds the per-step seconds through metrics::ExactSum, so the Table
// II totals are correctly rounded — a naive left-to-right double fold
// of these parts silently drops the 0.1 against the 1e16.
TEST(TimeBreakdown, TotalIsExactUnderCancellation)
{
    const double parts[] = {1e16, 0.1, -1e16, 1e-9, 2.5, 0.7};
    TimeBreakdown tb;
    for (int i = 0; i < kTrainStepCount; ++i)
        tb.add(static_cast<TrainStep>(i), parts[i]);
    double naive = 0.0;
    for (int i = 0; i < kTrainStepCount; ++i)
        naive += parts[i];
    ASSERT_NE(naive, 0.1 + 1e-9 + 2.5 + 0.7)
        << "sample set no longer exercises cancellation";
    EXPECT_NE(tb.total(), naive);
    EXPECT_NEAR(tb.total(), 0.1 + 1e-9 + 2.5 + 0.7, 1e-12);
}

} // namespace
} // namespace inc
