#include "distrib/func_trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic_digits.h"
#include "nn/model_zoo.h"

namespace inc {
namespace {

FuncTrainerConfig
smallConfig()
{
    FuncTrainerConfig cfg;
    cfg.nodes = 4;
    cfg.batchPerNode = 16;
    cfg.sgd.learningRate = 0.05;
    cfg.sgd.lrDecayEvery = 0;
    cfg.sgd.clipGradNorm = 5.0;
    cfg.seed = 11;
    return cfg;
}

TEST(FuncTrainer, RingLearnsLossless)
{
    SyntheticDigits train(1600, 1), test(400, 2);
    FuncTrainer t(&buildHdcSmall, train, test, smallConfig());
    t.train(150);
    EXPECT_GT(t.evaluate(), 0.55);
    EXPECT_EQ(t.iteration(), 150u);
}

TEST(FuncTrainer, RingAndStarAgreeWhenLossless)
{
    // Same seeds, no compression: ring all-reduce and the aggregator
    // compute the same summed gradient, so both converge to similar
    // accuracy (bit-exact equality is not expected: float summation
    // order differs).
    SyntheticDigits train(1600, 1), test(400, 2);

    FuncTrainerConfig ring_cfg = smallConfig();
    ring_cfg.exchange = FuncExchange::Ring;
    FuncTrainer ring(&buildHdcSmall, train, test, ring_cfg);
    ring.train(120);

    FuncTrainerConfig star_cfg = smallConfig();
    star_cfg.exchange = FuncExchange::Star;
    FuncTrainer star(&buildHdcSmall, train, test, star_cfg);
    star.train(120);

    EXPECT_NEAR(ring.evaluate(), star.evaluate(), 0.12);
}

TEST(FuncTrainer, RingReplicasStayInSyncLossless)
{
    SyntheticDigits train(800, 1), test(200, 2);
    FuncTrainer t(&buildHdcSmall, train, test, smallConfig());
    t.train(30);
    // Lossless exchange: every replica applies identical gradients.
    EXPECT_LT(t.replicaDivergence(), 1e-6);
}

TEST(FuncTrainer, CodecBoundsReplicaDrift)
{
    SyntheticDigits train(800, 1), test(200, 2);
    const InceptionnCodec codec(8);
    FuncTrainerConfig cfg = smallConfig();
    cfg.codec = &codec;
    FuncTrainer t(&buildHdcSmall, train, test, cfg);
    const int iters = 30;
    t.train(iters);
    // The block owner keeps a copy within one bound of everyone else,
    // per hop; drift accumulates at most linearly in iterations through
    // the optimizer (LR < 1 shrinks it further).
    EXPECT_LT(t.replicaDivergence(),
              codec.errorBound() * iters);
    EXPECT_GT(t.codecTags().total(), 0u);
}

TEST(FuncTrainer, CompressedTrainingStillLearns)
{
    // The paper's headline accuracy claim, at bench scale: INC(2^-10)
    // training reaches accuracy comparable to lossless.
    SyntheticDigits train(1600, 1), test(400, 2);

    FuncTrainer base(&buildHdcSmall, train, test, smallConfig());
    base.train(150);
    const double base_acc = base.evaluate();

    const InceptionnCodec codec(10);
    FuncTrainerConfig cfg = smallConfig();
    cfg.codec = &codec;
    FuncTrainer comp(&buildHdcSmall, train, test, cfg);
    comp.train(150);
    const double comp_acc = comp.evaluate();

    EXPECT_GT(comp_acc, base_acc - 0.08);
    // And the codec really ran hard: ratio far above lossless class.
    EXPECT_GT(comp.achievedWireRatio(), 3.0);
}

TEST(FuncTrainer, AggressiveWeightTruncationHurtsMore)
{
    // Fig. 4's core claim: truncating w is far more damaging than
    // truncating g at the same depth.
    SyntheticDigits train(1600, 1), test(400, 2);
    const TruncationCodec deep(24);

    FuncTrainerConfig g_cfg = smallConfig();
    g_cfg.exchange = FuncExchange::Star;
    g_cfg.truncateGradients = &deep;
    FuncTrainer g_only(&buildHdcSmall, train, test, g_cfg);
    g_only.train(150);

    FuncTrainerConfig w_cfg = smallConfig();
    w_cfg.exchange = FuncExchange::Star;
    w_cfg.truncateWeights = &deep;
    FuncTrainer w_only(&buildHdcSmall, train, test, w_cfg);
    w_only.train(150);

    EXPECT_GT(g_only.evaluate(), w_only.evaluate() - 0.02);
}

TEST(FuncTrainer, StarWithCodecOnGradientLegLearns)
{
    // WA+C functional mode: codec on the worker->aggregator leg only
    // (weights return exact), as the paper's WA+C configuration.
    SyntheticDigits train(1600, 1), test(400, 2);
    const InceptionnCodec codec(10);
    FuncTrainerConfig cfg = smallConfig();
    cfg.exchange = FuncExchange::Star;
    cfg.codec = &codec;
    FuncTrainer t(&buildHdcSmall, train, test, cfg);
    t.train(150);
    EXPECT_GT(t.evaluate(), 0.55);
    EXPECT_GT(t.codecTags().total(), 0u);
    // Star compresses once per worker per iteration: N whole vectors.
    EXPECT_EQ(t.codecTags().total(),
              150u * 4u * t.paramCount());
}

TEST(FuncTrainer, AtSourceCompressionLearns)
{
    SyntheticDigits train(1600, 1), test(400, 2);
    const InceptionnCodec codec(10);
    FuncTrainerConfig cfg = smallConfig();
    cfg.codec = &codec;
    cfg.compressionPoint = CompressionPoint::AtSource;
    FuncTrainer t(&buildHdcSmall, train, test, cfg);
    t.train(150);
    EXPECT_GT(t.evaluate(), 0.5);
    EXPECT_GT(t.codecTags().total(), 0u);
}

TEST(FuncTrainer, AtSourceCompressesOncePerIterationPerNode)
{
    SyntheticDigits train(800, 1), test(200, 2);
    const InceptionnCodec codec(10);

    FuncTrainerConfig hop_cfg = smallConfig();
    hop_cfg.codec = &codec;
    hop_cfg.compressionPoint = CompressionPoint::PerHop;
    FuncTrainer hop(&buildHdcSmall, train, test, hop_cfg);
    hop.train(5);

    FuncTrainerConfig src_cfg = smallConfig();
    src_cfg.codec = &codec;
    src_cfg.compressionPoint = CompressionPoint::AtSource;
    FuncTrainer src(&buildHdcSmall, train, test, src_cfg);
    src.train(5);

    // Per-hop tags: 2(N-1) block-sized payloads per node pair per
    // iteration = 2(N-1)/N of the vector per node; at-source tags: the
    // whole vector once per node. Ratio of totals = 2(N-1)/N : 1 = 1.5
    // for N = 4.
    EXPECT_NEAR(static_cast<double>(hop.codecTags().total()) /
                    static_cast<double>(src.codecTags().total()),
                1.5, 0.05);
}

TEST(FuncTrainer, ErrorFeedbackPreservesGradientMassOverTime)
{
    // With a very coarse bound most values vanish; error feedback must
    // keep the model learning anyway by accumulating the loss locally.
    SyntheticDigits train(1600, 1), test(400, 2);
    const InceptionnCodec codec(4); // brutal 2^-4 bound

    FuncTrainerConfig ef_cfg = smallConfig();
    ef_cfg.codec = &codec;
    ef_cfg.compressionPoint = CompressionPoint::AtSource;
    ef_cfg.errorFeedback = true;
    FuncTrainer with_ef(&buildHdcSmall, train, test, ef_cfg);
    with_ef.train(150);

    FuncTrainerConfig raw_cfg = ef_cfg;
    raw_cfg.errorFeedback = false;
    FuncTrainer without(&buildHdcSmall, train, test, raw_cfg);
    without.train(150);

    // Error feedback should at least match the raw coarse codec.
    EXPECT_GE(with_ef.evaluate() + 0.05, without.evaluate());
    EXPECT_GT(with_ef.evaluate(), 0.3);
}

TEST(FuncTrainer, GradientCaptureAndDistribution)
{
    SyntheticDigits train(800, 1), test(200, 2);
    FuncTrainer t(&buildHdcSmall, train, test, smallConfig());
    t.captureGradientsAt({0, 20});
    t.train(25);
    const GradientTrace &trace = t.gradientTrace();
    ASSERT_EQ(trace.entries().size(), 2u);
    EXPECT_EQ(trace.entries()[0].iteration, 0u);
    EXPECT_EQ(trace.entries()[0].gradient.size(), t.paramCount());
    // Paper Fig. 5: gradients live in [-1, 1], peaked near zero.
    EXPECT_GT(trace.fractionInUnitRange(), 0.99);
    EXPECT_GT(trace.fractionWithin(0.01), 0.5);
}

TEST(FuncTrainer, EpochAccounting)
{
    SyntheticDigits train(640, 1), test(100, 2);
    FuncTrainerConfig cfg = smallConfig();
    cfg.batchPerNode = 16; // shard = 160 rows -> 10 batches/epoch
    FuncTrainer t(&buildHdcSmall, train, test, cfg);
    t.train(25);
    EXPECT_EQ(t.epoch(), 2u);
}

} // namespace
} // namespace inc
