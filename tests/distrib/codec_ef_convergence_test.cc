/**
 * @file
 * Error-feedback convergence regression for the codec zoo on the
 * accuracy-mode trainer: aggressive top-k sparsification WITH error
 * feedback must reach the lossless baseline's final training loss
 * within tolerance, while the same codec WITHOUT error feedback is
 * pinned strictly worse — the zoo's headline accuracy claim, and the
 * reason residual state lives in the trainers.
 *
 * Also pins the differential baseline: the lossless fp32 zoo codec
 * must produce bit-identical training to no codec at all (same seeds,
 * same arithmetic — the wire envelope may not perturb a single bit).
 */

#include <gtest/gtest.h>

#include "comm/codec_zoo.h"
#include "data/synthetic_digits.h"
#include "distrib/async_trainer.h"
#include "distrib/func_trainer.h"
#include "nn/model_zoo.h"

namespace inc {
namespace {

FuncTrainerConfig
baseConfig()
{
    FuncTrainerConfig cfg;
    cfg.nodes = 4;
    cfg.batchPerNode = 16;
    cfg.sgd.learningRate = 0.05;
    cfg.sgd.lrDecayEvery = 0;
    cfg.sgd.clipGradNorm = 5.0;
    cfg.seed = 11;
    return cfg;
}

/** Final-segment mean training loss after a warmup + measure split. */
double
finalLoss(FuncTrainer &t, uint64_t warmup, uint64_t measure)
{
    t.train(warmup);
    t.train(measure);
    return t.lastMeanLoss();
}

TEST(CodecEfConvergence, TopKWithErrorFeedbackMatchesLossless)
{
    SyntheticDigits train(1600, 1), test(400, 2);
    const uint64_t warmup = 185, measure = 15;
    // 1% keep per block, and a learning rate low enough that the
    // lossless baseline converges smoothly. The no-EF variant floors
    // two orders of magnitude above the baseline — the bias of always
    // discarding 99% of the gradient — while the residual accumulator
    // closes that gap to within a small constant factor.
    const TopKEfCodec topk(0.01);
    FuncTrainerConfig base = baseConfig();
    base.sgd.learningRate = 0.02;

    FuncTrainer lossless(&buildHdcSmall, train, test, base);
    const double loss_lossless = finalLoss(lossless, warmup, measure);

    FuncTrainerConfig ef_cfg = base;
    ef_cfg.zooCodec = &topk;
    ef_cfg.errorFeedback = true;
    FuncTrainer with_ef(&buildHdcSmall, train, test, ef_cfg);
    const double loss_ef = finalLoss(with_ef, warmup, measure);

    FuncTrainerConfig raw_cfg = base;
    raw_cfg.zooCodec = &topk;
    raw_cfg.errorFeedback = false;
    FuncTrainer no_ef(&buildHdcSmall, train, test, raw_cfg);
    const double loss_no_ef = finalLoss(no_ef, warmup, measure);

    // WITH error feedback: lands with the lossless baseline (observed
    // ~4e-6 vs ~9e-7; the bound leaves a 10x margin plus noise floor).
    EXPECT_LE(loss_ef, loss_lossless * 10.0 + 1e-5)
        << "lossless=" << loss_lossless << " ef=" << loss_ef;
    // WITHOUT: pinned strictly worse than both (observed ~5e-4 — more
    // than 100x the EF run; asserted at 10x for seed robustness).
    EXPECT_GT(loss_no_ef, loss_ef * 10.0)
        << "no_ef=" << loss_no_ef << " ef=" << loss_ef;
    EXPECT_GT(loss_no_ef, loss_lossless * 10.0)
        << "no_ef=" << loss_no_ef << " lossless=" << loss_lossless;

    // The bandwidth the sparsifier claims is real: ~1% of the values
    // plus index overhead, through the actual wire format.
    EXPECT_GT(with_ef.achievedWireRatio(), 20.0);
}

TEST(CodecEfConvergence, LosslessZooCodecIsBitIdenticalToNoCodec)
{
    SyntheticDigits train(800, 1), test(200, 2);

    FuncTrainer plain(&buildHdcSmall, train, test, baseConfig());
    plain.train(40);

    const Fp32Codec fp32;
    FuncTrainerConfig zoo_cfg = baseConfig();
    zoo_cfg.zooCodec = &fp32;
    FuncTrainer via_zoo(&buildHdcSmall, train, test, zoo_cfg);
    via_zoo.train(40);

    // decode(encode(x)) is bit-exact, so training must not move by one
    // ulp — exact double equality on the loss trajectory's mean.
    EXPECT_EQ(plain.lastMeanLoss(), via_zoo.lastMeanLoss());
    EXPECT_EQ(plain.evaluate(), via_zoo.evaluate());
    // Framing overhead puts the fp32 wire slightly above raw bytes.
    EXPECT_LE(via_zoo.achievedWireRatio(), 1.0);
    EXPECT_GT(via_zoo.achievedWireRatio(), 0.9);
}

TEST(CodecEfConvergence, QuantizerWithErrorFeedbackStillLearns)
{
    SyntheticDigits train(1600, 1), test(400, 2);
    const UniformQuantCodec quant(4);
    FuncTrainerConfig cfg = baseConfig();
    cfg.zooCodec = &quant;
    cfg.errorFeedback = true;
    FuncTrainer t(&buildHdcSmall, train, test, cfg);
    t.train(150);
    EXPECT_GT(t.evaluate(), 0.5);
    // 4-bit levels + per-block header: ~7-8x bandwidth reduction.
    EXPECT_GT(t.achievedWireRatio(), 6.0);
}

TEST(CodecEfConvergence, AsyncUplinkCodecWithErrorFeedbackLearns)
{
    SyntheticDigits train(1200, 1), test(300, 2);
    const UniformQuantCodec quant(8);
    AsyncTrainerConfig cfg;
    cfg.workers = 4;
    cfg.batchPerWorker = 16;
    cfg.delay = 3;
    cfg.sgd.learningRate = 0.03;
    cfg.sgd.lrDecayEvery = 0;
    cfg.sgd.clipGradNorm = 5.0;
    cfg.seed = 7;
    cfg.codec = &quant;
    cfg.errorFeedback = true;
    AsyncTrainer t(&buildHdcSmall, train, test, cfg);
    t.train(200);
    EXPECT_GT(t.evaluate(), 0.5);
}

} // namespace
} // namespace inc
