/**
 * @file
 * End-to-end causal-attribution properties of the span subsystem over
 * real training runs: DAG well-formedness, bit-exact critical-path
 * decomposition per collective algorithm, agreement between the star
 * stall metric and the span record, bit-identical span streams across
 * INC_THREADS settings and reruns, and an injected-fault retransmit
 * provably landing on the critical path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "distrib/sim_trainer.h"
#include "sim/metrics.h"
#include "sim/span.h"
#include "sim/thread_pool.h"
#include "stats/critical_path.h"

namespace inc {
namespace {

using spans::Kind;
using spans::Span;

SimTrainerConfig
smallConfig(ExchangeAlgorithm algo, int workers = 4)
{
    SimTrainerConfig cfg;
    cfg.workload.name = "attr-test";
    cfg.workload.modelBytes = 400 * 1000;
    cfg.workload.timing.forward = 0.002;
    cfg.workload.timing.backward = 0.004;
    cfg.workload.timing.gpuCopy = 0.001;
    cfg.workload.timing.gradientSum = 0.002;
    cfg.workload.timing.update = 0.001;
    cfg.workers = workers;
    cfg.algorithm = algo;
    cfg.iterations = 2;
    cfg.groupSize = 2;
    return cfg;
}

/** Run with tracing on; spans stay in the global tracer afterwards. */
SimTrainerResult
runTraced(const SimTrainerConfig &cfg)
{
    spans::reset();
    spans::setEnabled(true);
    const SimTrainerResult r = runSimTraining(cfg);
    spans::setEnabled(false);
    return r;
}

/** Kinds allowed to outlive their structural parent (a spurious
 *  retransmit's flight can land after its message was delivered; the
 *  RTO silence span likewise closes at firing time). */
bool
nestingExempt(Kind kind)
{
    return kind == Kind::Flight || kind == Kind::Retransmit ||
           kind == Kind::RtoWait;
}

void
checkWellFormed(const std::vector<Span> &all, uint64_t iterations)
{
    ASSERT_FALSE(all.empty());
    std::vector<const Span *> byId(all.size() + 1, nullptr);
    uint64_t roots = 0;
    for (const Span &s : all) {
        ASSERT_GE(s.id, 1u);
        ASSERT_LE(s.id, all.size());
        ASSERT_EQ(byId[s.id], nullptr) << "duplicate id " << s.id;
        byId[s.id] = &s;
        // Causes and parents are strictly earlier emissions: the DAG
        // is acyclic by construction.
        EXPECT_LT(s.parent, s.id);
        EXPECT_LT(s.cause, s.id);
        EXPECT_FALSE(s.open()) << "span " << s.id << " never closed";
        EXPECT_LE(s.t0, s.t1);
        if (s.parent == 0) {
            EXPECT_EQ(s.kind, Kind::Iteration)
                << "non-iteration root: span " << s.id << " ("
                << spans::kindName(s.kind) << ")";
            ++roots;
        }
    }
    EXPECT_EQ(roots, iterations);

    for (const Span &s : all) {
        if (s.parent == 0)
            continue;
        const Span *p = byId[s.parent];
        ASSERT_NE(p, nullptr);
        EXPECT_GE(s.t0, p->t0) << "span " << s.id << " starts before "
                               << "its parent " << p->id;
        if (!nestingExempt(s.kind)) {
            EXPECT_LE(s.t1, p->t1)
                << spans::kindName(s.kind) << " span " << s.id
                << " outlives its parent " << p->id;
        }
        // Ancestry terminates at an Iteration root.
        const Span *a = p;
        while (a->parent != 0)
            a = byId[a->parent];
        EXPECT_EQ(a->kind, Kind::Iteration);
    }
}

TEST(Attribution, SpanDagWellFormedPerAlgorithm)
{
    for (ExchangeAlgorithm algo :
         {ExchangeAlgorithm::WorkerAggregator, ExchangeAlgorithm::Ring,
          ExchangeAlgorithm::Tree, ExchangeAlgorithm::HierRing}) {
        const SimTrainerConfig cfg = smallConfig(algo);
        (void)runTraced(cfg);
        SCOPED_TRACE(static_cast<int>(algo));
        EXPECT_EQ(spans::global().openCount(), 0u);
        checkWellFormed(spans::global().spans(), cfg.iterations);
        spans::reset();
    }
}

TEST(Attribution, BlameSumsExactlyPerAlgorithm)
{
    for (ExchangeAlgorithm algo :
         {ExchangeAlgorithm::WorkerAggregator, ExchangeAlgorithm::Ring,
          ExchangeAlgorithm::Tree, ExchangeAlgorithm::HierRing}) {
        const SimTrainerConfig cfg = smallConfig(algo);
        (void)runTraced(cfg);
        SCOPED_TRACE(static_cast<int>(algo));

        const CriticalPathReport rep =
            analyzeCriticalPath(spans::global().spans());
        ASSERT_EQ(rep.iterations.size(), cfg.iterations);
        EXPECT_TRUE(rep.exact());
        // Iterations tile the run back to back: window sums telescope
        // to last-end minus first-start, bit-exactly.
        Tick tiled = 0;
        for (size_t i = 0; i < rep.iterations.size(); ++i) {
            const IterationPath &it = rep.iterations[i];
            EXPECT_EQ(it.blame.total(), it.windowTicks());
            if (i > 0) {
                EXPECT_EQ(it.t0, rep.iterations[i - 1].t1);
            }
            tiled += it.windowTicks();
        }
        EXPECT_EQ(tiled, rep.elapsedTicks);
        EXPECT_EQ(rep.elapsedTicks, rep.iterations.back().t1 -
                                        rep.iterations.front().t0);
        spans::reset();
    }
}

/**
 * Satellite check: the star gather stall metric must agree with the
 * span record. The aggregator's idle time during the gather phase is
 * the phase window minus the union of its per-stream busy intervals
 * [delivered, sum done] — the metric (aggregator CPU idle before each
 * stream, summed) must equal that, and in particular can never exceed
 * the exchange window the way the old per-stream-latency accounting
 * did.
 */
TEST(Attribution, StarStallMetricAgreesWithSpanRecord)
{
    SimTrainerConfig cfg = smallConfig(ExchangeAlgorithm::WorkerAggregator);
    cfg.iterations = 1;
    metrics::reset();
    metrics::setEnabled(true);
    (void)runTraced(cfg);
    const uint64_t stall =
        metrics::global().counter("comm.star.gather.stall_ticks");
    metrics::setEnabled(false);
    metrics::reset();

    const std::vector<Span> &all = spans::global().spans();
    const Span *exch = nullptr;
    for (const Span &s : all)
        if (s.kind == Kind::Exchange && s.name.rfind("star", 0) == 0)
            exch = &s;
    ASSERT_NE(exch, nullptr);

    // Busy intervals: [delivered, done_at] from each SumReduce span
    // and its causing MsgOverhead (whose t0 is the delivery tick).
    std::vector<std::pair<Tick, Tick>> busy;
    Tick gather_end = 0;
    for (const Span &s : all) {
        if (s.parent != exch->id || s.kind != Kind::SumReduce)
            continue;
        ASSERT_NE(s.cause, 0u);
        const Span &ov = all[s.cause - 1];
        ASSERT_EQ(ov.id, s.cause);
        ASSERT_EQ(ov.kind, Kind::MsgOverhead);
        busy.emplace_back(ov.t0, s.t1);
        gather_end = std::max(gather_end, s.t1);
    }
    ASSERT_EQ(busy.size(), static_cast<size_t>(cfg.workers));

    std::sort(busy.begin(), busy.end());
    Tick covered = 0, cursor = exch->t0;
    for (const auto &[from, to] : busy) {
        const Tick lo = std::max(cursor, from);
        if (to > lo)
            covered += to - lo;
        cursor = std::max(cursor, to);
    }
    const Tick window = gather_end - exch->t0;
    EXPECT_EQ(stall, window - covered);
    // The old accounting summed each stream's full delivery latency,
    // which overshoots the window itself with >1 concurrent streams.
    EXPECT_LE(stall, static_cast<uint64_t>(exch->t1 - exch->t0));
    spans::reset();
}

TEST(Attribution, SpanStreamBitIdenticalAcrossThreadsAndReruns)
{
    SimTrainerConfig cfg = smallConfig(ExchangeAlgorithm::Ring);
    // A lossy-fabric run exercises the retransmit spans too.
    SimTrainerConfig lossy = smallConfig(ExchangeAlgorithm::Ring, 2);
    lossy.faultInjection.enabled = true;
    lossy.faultInjection.faults.defaultLink.loss = LossKind::Bernoulli;
    lossy.faultInjection.faults.defaultLink.lossRate = 0.02;

    auto capture = [&](const SimTrainerConfig &c) {
        (void)runTraced(c);
        std::string csv = spans::global().renderCsv();
        csv += analyzeCriticalPath(spans::global().spans()).renderCsv();
        spans::reset();
        return csv;
    };

    setGlobalThreadCount(1);
    const std::string ideal1 = capture(cfg);
    const std::string lossy1 = capture(lossy);
    setGlobalThreadCount(8);
    const std::string ideal8 = capture(cfg);
    const std::string lossy8 = capture(lossy);
    setGlobalThreadCount(0); // restore the hardware default

    EXPECT_EQ(ideal1, ideal8);
    EXPECT_EQ(lossy1, lossy8);
    // Same seed, same stream: rerun is bit-identical too.
    const std::string lossy_again = capture(lossy);
    EXPECT_EQ(lossy1, lossy_again);
}

TEST(Attribution, InjectedFaultRetransmitLandsOnCriticalPath)
{
    SimTrainerConfig cfg = smallConfig(ExchangeAlgorithm::Ring, 2);
    cfg.workload.modelBytes = 2 * 1000 * 1000;
    cfg.faultInjection.enabled = true;
    cfg.faultInjection.faults.defaultLink.loss = LossKind::Bernoulli;
    cfg.faultInjection.faults.defaultLink.lossRate = 0.03;

    const SimTrainerResult r = runTraced(cfg);
    ASSERT_GT(r.retransmits, 0u);

    const CriticalPathReport rep =
        analyzeCriticalPath(spans::global().spans());
    ASSERT_EQ(rep.iterations.size(), cfg.iterations);
    EXPECT_TRUE(rep.exact());
    // Loss recovery is visible, attributed, and on the chain.
    EXPECT_GT(rep.totals.get(spans::Blame::Retransmit), 0u);
    EXPECT_TRUE(rep.chainContains(Kind::Retransmit) ||
                rep.chainContains(Kind::RtoWait));
    spans::reset();
}

TEST(Attribution, DisabledTracingRecordsNothing)
{
    spans::reset();
    spans::setEnabled(false);
    const SimTrainerConfig cfg = smallConfig(ExchangeAlgorithm::Ring);
    (void)runSimTraining(cfg);
    EXPECT_EQ(spans::global().size(), 0u);
}

} // namespace
} // namespace inc
