#include "data/dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic_digits.h"
#include "data/synthetic_images.h"

namespace inc {
namespace {

TEST(SyntheticDigits, Deterministic)
{
    SyntheticDigits a(100, 1), b(100, 1);
    std::vector<float> sa(784), sb(784);
    for (size_t i : {0u, 13u, 99u}) {
        a.fill(i, sa);
        b.fill(i, sb);
        EXPECT_EQ(sa, sb);
        EXPECT_EQ(a.label(i), b.label(i));
    }
}

TEST(SyntheticDigits, DifferentSeedsDiffer)
{
    SyntheticDigits a(100, 1), b(100, 2);
    std::vector<float> sa(784), sb(784);
    a.fill(0, sa);
    b.fill(0, sb);
    EXPECT_NE(sa, sb);
}

TEST(SyntheticDigits, PixelsInRangeAndLabelsBalanced)
{
    SyntheticDigits d(2000, 5);
    std::vector<int> counts(10, 0);
    std::vector<float> s(784);
    for (size_t i = 0; i < d.size(); ++i) {
        ++counts[static_cast<size_t>(d.label(i))];
        if (i < 50) {
            d.fill(i, s);
            for (float v : s) {
                ASSERT_GE(v, 0.0f);
                ASSERT_LE(v, 1.0f);
            }
        }
    }
    for (int c : counts)
        EXPECT_NEAR(c, 200, 80);
}

TEST(SyntheticDigits, SameClassMoreSimilarThanCrossClass)
{
    // The task must be learnable: intra-class distance < inter-class.
    SyntheticDigits d(500, 7);
    std::vector<float> x(784), y(784);
    double intra = 0, inter = 0;
    int intra_n = 0, inter_n = 0;
    for (size_t i = 0; i < 60; ++i) {
        for (size_t j = i + 1; j < 60; ++j) {
            d.fill(i, x);
            d.fill(j, y);
            double dist = 0;
            for (size_t k = 0; k < 784; ++k)
                dist += (x[k] - y[k]) * (x[k] - y[k]);
            if (d.label(i) == d.label(j)) {
                intra += dist;
                ++intra_n;
            } else {
                inter += dist;
                ++inter_n;
            }
        }
    }
    ASSERT_GT(intra_n, 0);
    ASSERT_GT(inter_n, 0);
    EXPECT_LT(intra / intra_n, 0.7 * inter / inter_n);
}

TEST(SyntheticDigits, ShapeFlag)
{
    SyntheticDigits flat(10, 1, true);
    EXPECT_EQ(flat.sampleShape(), (std::vector<size_t>{784}));
    SyntheticDigits chw(10, 1, false);
    EXPECT_EQ(chw.sampleShape(), (std::vector<size_t>{1, 28, 28}));
}

TEST(SyntheticImages, DeterministicAndInRange)
{
    SyntheticImages a(50, 3), b(50, 3);
    std::vector<float> sa(3 * 32 * 32), sb(3 * 32 * 32);
    a.fill(7, sa);
    b.fill(7, sb);
    EXPECT_EQ(sa, sb);
    for (float v : sa) {
        ASSERT_GE(v, 0.0f);
        ASSERT_LE(v, 1.0f);
    }
}

TEST(SyntheticImages, ClassSeparability)
{
    SyntheticImages d(300, 9);
    std::vector<float> x(3 * 32 * 32), y(3 * 32 * 32);
    double intra = 0, inter = 0;
    int intra_n = 0, inter_n = 0;
    for (size_t i = 0; i < 40; ++i) {
        for (size_t j = i + 1; j < 40; ++j) {
            d.fill(i, x);
            d.fill(j, y);
            double dist = 0;
            for (size_t k = 0; k < x.size(); ++k)
                dist += (x[k] - y[k]) * (x[k] - y[k]);
            if (d.label(i) == d.label(j)) {
                intra += dist;
                ++intra_n;
            } else {
                inter += dist;
                ++inter_n;
            }
        }
    }
    EXPECT_LT(intra / intra_n, 0.7 * inter / inter_n);
}

TEST(Batch, MaterializesShapeAndLabels)
{
    SyntheticDigits d(100, 1);
    const std::vector<size_t> idx{3, 14, 15};
    const Batch b = d.batch(idx);
    EXPECT_EQ(b.x.shapeString(), "[3x784]");
    ASSERT_EQ(b.labels.size(), 3u);
    for (size_t k = 0; k < 3; ++k)
        EXPECT_EQ(b.labels[k], d.label(idx[k]));
}

TEST(MinibatchSampler, CoversShardEachEpoch)
{
    SyntheticDigits d(100, 1);
    MinibatchSampler s(d, 10, /*seed=*/4);
    EXPECT_EQ(s.shardSize(), 100u);
    EXPECT_EQ(s.batchesPerEpoch(), 10u);
    // One epoch = 10 batches; all 100 indices appear exactly once —
    // verified via label multiset equality on a tagged dataset.
    std::multiset<int> seen;
    for (int i = 0; i < 10; ++i) {
        const Batch b = s.next();
        for (int l : b.labels)
            seen.insert(l);
    }
    std::multiset<int> expect;
    for (size_t i = 0; i < 100; ++i)
        expect.insert(d.label(i));
    EXPECT_EQ(seen, expect);
    EXPECT_EQ(s.epoch(), 0u);
    s.next();
    EXPECT_EQ(s.epoch(), 1u);
}

TEST(MinibatchSampler, ShardsPartitionTheDataset)
{
    SyntheticDigits d(100, 1);
    std::set<size_t> all;
    size_t total = 0;
    for (int shard = 0; shard < 4; ++shard) {
        MinibatchSampler s(d, 5, 1, shard, 4);
        total += s.shardSize();
    }
    EXPECT_EQ(total, 100u);
    (void)all;
}

TEST(MinibatchSampler, DeterministicForSeed)
{
    SyntheticDigits d(100, 1);
    MinibatchSampler a(d, 7, 42), b(d, 7, 42);
    for (int i = 0; i < 5; ++i) {
        const Batch ba = a.next(), bb = b.next();
        EXPECT_EQ(ba.labels, bb.labels);
    }
}

} // namespace
} // namespace inc
