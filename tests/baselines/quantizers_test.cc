#include "baselines/quantizers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace inc {
namespace {

std::vector<float>
gradientLike(size_t n, double sigma, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, sigma));
    return v;
}

TEST(TernGrad, OutputIsTernary)
{
    auto v = gradientLike(10000, 0.05, 1);
    float max_abs = 0.0f;
    for (float x : v)
        max_abs = std::max(max_abs, std::abs(x));
    TernGradCodec codec(7);
    codec.roundtrip(v);
    std::set<float> levels;
    for (float x : v)
        levels.insert(x);
    EXPECT_LE(levels.size(), 3u);
    for (float x : v)
        EXPECT_TRUE(x == 0.0f || std::abs(x) == max_abs) << x;
}

TEST(TernGrad, UnbiasedInExpectation)
{
    // Quantize the same vector many times: the average converges to it.
    const auto original = gradientLike(200, 0.05, 2);
    std::vector<double> acc(original.size(), 0.0);
    const int trials = 600;
    TernGradCodec codec(3);
    for (int t = 0; t < trials; ++t) {
        std::vector<float> v = original;
        codec.roundtrip(v);
        for (size_t i = 0; i < v.size(); ++i)
            acc[i] += v[i];
    }
    double worst = 0.0;
    for (size_t i = 0; i < original.size(); ++i)
        worst = std::max(worst,
                         std::abs(acc[i] / trials - original[i]));
    EXPECT_LT(worst, 0.02); // scale is ~0.2; estimator noise ~ s/sqrt(T)
}

TEST(TernGrad, ZeroVectorUntouchedAndRatio)
{
    std::vector<float> zeros(64, 0.0f);
    TernGradCodec codec;
    codec.roundtrip(zeros);
    for (float v : zeros)
        EXPECT_EQ(v, 0.0f);
    EXPECT_NEAR(TernGradCodec::ratio(1 << 20), 16.0, 0.01);
}

TEST(Qsgd, LevelsAreRespected)
{
    auto v = gradientLike(5000, 0.05, 3);
    double norm_sq = 0.0;
    for (float x : v)
        norm_sq += static_cast<double>(x) * x;
    const double norm = std::sqrt(norm_sq);

    QsgdCodec codec(4, 11);
    codec.roundtrip(v);
    for (float x : v) {
        const double level = std::abs(x) / norm * 4.0;
        EXPECT_NEAR(level, std::round(level), 1e-4);
        EXPECT_LE(level, 4.0 + 1e-9);
    }
}

TEST(Qsgd, UnbiasedInExpectation)
{
    const auto original = gradientLike(100, 0.05, 4);
    std::vector<double> acc(original.size(), 0.0);
    const int trials = 800;
    QsgdCodec codec(4, 5);
    for (int t = 0; t < trials; ++t) {
        std::vector<float> v = original;
        codec.roundtrip(v);
        for (size_t i = 0; i < v.size(); ++i)
            acc[i] += v[i];
    }
    double worst = 0.0;
    for (size_t i = 0; i < original.size(); ++i)
        worst = std::max(worst,
                         std::abs(acc[i] / trials - original[i]));
    EXPECT_LT(worst, 0.02);
}

TEST(Qsgd, BitsPerValueFormula)
{
    const QsgdCodec s4(4);
    // sign + 3 level bits (+ amortized norm).
    EXPECT_NEAR(s4.bitsPerValue(1 << 20), 4.0, 0.01);
    const QsgdCodec s1(1);
    EXPECT_NEAR(s1.bitsPerValue(1 << 20), 2.0, 0.01);
}

TEST(TopK, KeepsExactlyTheLargest)
{
    std::vector<float> v{0.1f, -0.9f, 0.05f, 0.5f, -0.2f, 0.0f, 0.3f,
                         -0.4f, 0.08f, 0.02f};
    TopKSparsifier sp(0.3); // keep 3 of 10
    sp.roundtrip(v);
    EXPECT_FLOAT_EQ(v[1], -0.9f);
    EXPECT_FLOAT_EQ(v[3], 0.5f);
    EXPECT_FLOAT_EQ(v[7], -0.4f);
    int nonzero = 0;
    for (float x : v)
        nonzero += (x != 0.0f);
    EXPECT_EQ(nonzero, 3);
}

TEST(TopK, KeepAllIsIdentity)
{
    auto v = gradientLike(100, 0.05, 6);
    const auto before = v;
    TopKSparsifier sp(1.0);
    sp.roundtrip(v);
    EXPECT_EQ(v, before);
}

TEST(TopK, RatioFormula)
{
    EXPECT_NEAR(TopKSparsifier(0.01).ratio(), 50.0, 1e-9);
    EXPECT_NEAR(TopKSparsifier(0.1).ratio(), 5.0, 1e-9);
}

} // namespace
} // namespace inc
