#include "baselines/half_precision.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/random.h"

namespace inc {
namespace {

TEST(HalfPrecision, ExactValuesSurvive)
{
    for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1024.0f,
                    0.09375f}) {
        EXPECT_EQ(HalfPrecisionCodec::roundtrip(f), f) << f;
    }
}

TEST(HalfPrecision, KnownEncodings)
{
    EXPECT_EQ(floatToHalf(0.0f), 0x0000);
    EXPECT_EQ(floatToHalf(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalf(1.0f), 0x3C00);
    EXPECT_EQ(floatToHalf(-2.0f), 0xC000);
    EXPECT_EQ(floatToHalf(65504.0f), 0x7BFF); // largest normal half
    // 2^-14: smallest normal; 2^-24: smallest subnormal.
    EXPECT_EQ(floatToHalf(std::ldexp(1.0f, -14)), 0x0400);
    EXPECT_EQ(floatToHalf(std::ldexp(1.0f, -24)), 0x0001);
    EXPECT_EQ(floatToHalf(std::ldexp(1.0f, -15)), 0x0200);
}

TEST(HalfPrecision, OverflowToInfinity)
{
    EXPECT_EQ(floatToHalf(1e6f), 0x7C00);
    EXPECT_EQ(floatToHalf(-1e6f), 0xFC00);
    EXPECT_TRUE(std::isinf(halfToFloat(0x7C00)));
}

TEST(HalfPrecision, NanSurvives)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(HalfPrecisionCodec::roundtrip(nan)));
}

TEST(HalfPrecision, UnderflowToZero)
{
    EXPECT_EQ(HalfPrecisionCodec::roundtrip(1e-9f), 0.0f);
    EXPECT_EQ(floatToHalf(-1e-9f), 0x8000);
}

TEST(HalfPrecision, RelativeErrorBoundInNormalRange)
{
    Rng rng(1);
    for (int i = 0; i < 100000; ++i) {
        const float f =
            static_cast<float>(rng.uniform(-1.0, 1.0));
        if (std::abs(f) < std::ldexp(1.0f, -14))
            continue; // subnormal range has absolute, not relative, bound
        const float back = HalfPrecisionCodec::roundtrip(f);
        // Round-to-nearest: relative error <= 2^-11.
        ASSERT_LE(std::abs(back - f) / std::abs(f),
                  std::ldexp(1.0, -11) + 1e-12)
            << f;
    }
}

TEST(HalfPrecision, SubnormalAbsoluteErrorBound)
{
    Rng rng(2);
    for (int i = 0; i < 50000; ++i) {
        const float f = static_cast<float>(
            rng.uniform(-1.0, 1.0) * std::ldexp(1.0, -14));
        const float back = HalfPrecisionCodec::roundtrip(f);
        // Half a subnormal ULP = 2^-25.
        ASSERT_LE(std::abs(back - f), std::ldexp(1.0, -25) + 1e-16) << f;
    }
}

TEST(HalfPrecision, RoundTripIsIdempotent)
{
    Rng rng(3);
    for (int i = 0; i < 50000; ++i) {
        const float f = static_cast<float>(rng.gaussian(0.0, 0.3));
        const float once = HalfPrecisionCodec::roundtrip(f);
        ASSERT_EQ(HalfPrecisionCodec::roundtrip(once), once) << f;
    }
}

TEST(HalfPrecision, ExhaustiveHalfDecodeEncodeIdentity)
{
    // Every finite half value decodes to a float that re-encodes to the
    // same bit pattern.
    for (uint32_t h = 0; h < 0x10000u; ++h) {
        const uint32_t exp = (h >> 10) & 0x1Fu;
        if (exp == 0x1F)
            continue; // Inf/NaN payloads need not round-trip bit-exact
        const float f = halfToFloat(static_cast<uint16_t>(h));
        ASSERT_EQ(floatToHalf(f), static_cast<uint16_t>(h)) << h;
    }
}

} // namespace
} // namespace inc
