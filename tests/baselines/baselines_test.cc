#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "baselines/snappy_like.h"
#include "baselines/software_cost.h"
#include "baselines/sz_like.h"
#include "baselines/truncation.h"
#include "sim/random.h"

namespace inc {
namespace {

std::vector<float>
gradientLike(size_t n, double sigma, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, sigma));
    return v;
}

TEST(Truncation, RatioTable)
{
    EXPECT_DOUBLE_EQ(TruncationCodec(16).ratio(), 2.0);
    EXPECT_DOUBLE_EQ(TruncationCodec(22).ratio(), 3.2);
    EXPECT_DOUBLE_EQ(TruncationCodec(24).ratio(), 4.0);
    EXPECT_DOUBLE_EQ(TruncationCodec(0).ratio(), 1.0);
}

TEST(Truncation, ZeroBitsIsIdentity)
{
    const TruncationCodec t(0);
    for (float f : {0.1f, -3.7f, 1e-9f})
        EXPECT_EQ(t.roundtrip(f), f);
}

TEST(Truncation, SixteenBitKeepsMagnitude)
{
    const TruncationCodec t(16);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const float f = static_cast<float>(rng.uniform(-1.0, 1.0));
        const float back = t.roundtrip(f);
        // 16 dropped mantissa bits: relative error < 2^-7 + a bit.
        if (std::abs(f) > 1e-6)
            ASSERT_LT(std::abs(f - back) / std::abs(f), 0.008 + 1e-6)
                << f;
        // Truncation moves toward zero.
        ASSERT_LE(std::abs(back), std::abs(f));
    }
}

TEST(Truncation, TwentyFourBitsDamagesExponent)
{
    // 24b-T zeroes the whole mantissa plus one exponent LSB: Fig. 14's
    // accuracy cliff. The worst error model reports unbounded damage.
    const TruncationCodec t(24);
    EXPECT_TRUE(std::isinf(t.worstError(1.0)));
    // 0.25 has biased exponent 125 (LSB set): zeroing bit 23 halves the
    // exponent's contribution, collapsing the value to 0.125.
    EXPECT_EQ(t.roundtrip(0.25f), 0.125f);
    // 0.7's mantissa is wiped: it lands on 0.5 exactly.
    EXPECT_EQ(t.roundtrip(0.7f), 0.5f);
}

TEST(Truncation, WorstErrorBoundHolds)
{
    const TruncationCodec t(22);
    const double bound = t.worstError(1.0);
    Rng rng(2);
    for (int i = 0; i < 20000; ++i) {
        const float f = static_cast<float>(rng.uniform(-1.0, 1.0));
        ASSERT_LE(std::abs(f - t.roundtrip(f)), bound) << f;
    }
}

TEST(Truncation, BufferRoundtrip)
{
    const TruncationCodec t(16);
    auto v = gradientLike(100, 0.1, 3);
    auto expect = v;
    for (auto &x : expect)
        x = t.roundtrip(x);
    t.roundtrip(std::span<float>(v));
    EXPECT_EQ(v, expect);
}

TEST(SnappyLike, RoundTripText)
{
    const char *text = "the quick brown fox jumps over the lazy dog and "
                       "the quick brown fox jumps over the lazy dog again "
                       "and again and again and again";
    std::span<const uint8_t> in(
        reinterpret_cast<const uint8_t *>(text), std::strlen(text));
    const auto compressed = SnappyLikeCodec::compress(in);
    const auto back = SnappyLikeCodec::decompress(compressed);
    ASSERT_EQ(back.size(), in.size());
    EXPECT_TRUE(std::equal(back.begin(), back.end(), in.begin()));
    EXPECT_LT(compressed.size(), in.size()); // repetitive text shrinks
}

TEST(SnappyLike, RoundTripEmpty)
{
    const auto compressed = SnappyLikeCodec::compress({});
    EXPECT_TRUE(SnappyLikeCodec::decompress(compressed).empty());
}

TEST(SnappyLike, RoundTripRandomBinary)
{
    Rng rng(4);
    std::vector<uint8_t> data(50000);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.below(256));
    const auto compressed = SnappyLikeCodec::compress(data);
    EXPECT_EQ(SnappyLikeCodec::decompress(compressed), data);
}

TEST(SnappyLike, RoundTripRunLengthData)
{
    std::vector<uint8_t> data(10000, 0xAB); // overlapping-copy stress
    const auto compressed = SnappyLikeCodec::compress(data);
    EXPECT_EQ(SnappyLikeCodec::decompress(compressed), data);
    // Copy length caps at 67 bytes/op (3-byte ops): ~21x on pure runs.
    EXPECT_LT(compressed.size(), data.size() / 10);
}

TEST(SnappyLike, RoundTripAllSegmentBoundaries)
{
    Rng rng(5);
    for (size_t n : {1u, 3u, 4u, 5u, 127u, 128u, 129u, 255u, 256u}) {
        std::vector<uint8_t> data(n);
        for (auto &b : data)
            b = static_cast<uint8_t>(rng.below(4)); // compressible
        const auto compressed = SnappyLikeCodec::compress(data);
        ASSERT_EQ(SnappyLikeCodec::decompress(compressed), data)
            << "n=" << n;
    }
}

TEST(SnappyLike, GradientFloatsBarelyCompress)
{
    // The paper's motivation: lossless on FP gradients gives only ~1.5x.
    const auto grads = gradientLike(100000, 0.02, 6);
    const double ratio = SnappyLikeCodec::measureRatio(
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(grads.data()),
            grads.size() * 4));
    EXPECT_LT(ratio, 2.0);
    EXPECT_GT(ratio, 0.8);
}

TEST(SzLike, RoundTripWithinBound)
{
    const SzLikeCodec codec(1.0 / 1024.0);
    const auto vals = gradientLike(20000, 0.05, 7);
    const auto compressed = codec.compress(vals);
    const auto back = codec.decompress(compressed);
    ASSERT_EQ(back.size(), vals.size());
    for (size_t i = 0; i < vals.size(); ++i)
        ASSERT_LE(std::abs(vals[i] - back[i]), codec.errorBound() + 1e-12)
            << i;
}

TEST(SzLike, SmoothDataCompressesHard)
{
    std::vector<float> smooth(10000);
    for (size_t i = 0; i < smooth.size(); ++i)
        smooth[i] = std::sin(static_cast<float>(i) * 0.001f);
    const SzLikeCodec codec(1e-3);
    EXPECT_GT(codec.measureRatio(smooth), 3.0);
}

TEST(SzLike, GradientDataModestRatio)
{
    // Gradients are noise-like: the 1-d predictor buys little beyond the
    // code shrinkage. Expect a ratio well below INCEPTIONN's.
    const auto grads = gradientLike(50000, 0.02, 8);
    const SzLikeCodec codec(1.0 / 1024.0);
    const double ratio = codec.measureRatio(grads);
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 6.0);
}

TEST(SzLike, EscapesPreserveWildValues)
{
    std::vector<float> vals{0.0f, 100.0f, -250.5f, 0.001f, 1e8f};
    const SzLikeCodec codec(1e-4);
    const auto back = codec.decompress(codec.compress(vals));
    for (size_t i = 0; i < vals.size(); ++i)
        ASSERT_LE(std::abs(vals[i] - back[i]),
                  codec.errorBound() + 1e-12);
}

TEST(SoftwareCost, DefaultsAndOverrides)
{
    SoftwareCostModel m;
    EXPECT_NEAR(m.compressSeconds(SoftwareCodecKind::SnappyLike,
                                  250 * 1000 * 1000),
                1.0, 1e-9);
    EXPECT_GT(m.compressSeconds(SoftwareCodecKind::SzLike, 1000000),
              m.compressSeconds(SoftwareCodecKind::SnappyLike, 1000000));
    m.setThroughput(SoftwareCodecKind::SnappyLike, {500e6, 2000e6});
    EXPECT_NEAR(m.compressSeconds(SoftwareCodecKind::SnappyLike, 500e6),
                1.0, 1e-9);
}

} // namespace
} // namespace inc
