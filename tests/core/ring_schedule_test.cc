#include "core/ring_schedule.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "sim/random.h"

namespace inc {
namespace {

TEST(RingSchedule, StepCount)
{
    EXPECT_EQ(ringStepCount(2), 2);
    EXPECT_EQ(ringStepCount(4), 6);
    EXPECT_EQ(ringStepCount(8), 14);
}

TEST(RingSchedule, MatchesPaperFig6WalkThrough)
{
    // N = 4, paper Fig. 6(b): step 1, worker[0] sends blk[0] to worker[1].
    const RingStep s1w0 = ringStepFor(0, 1, 4);
    EXPECT_EQ(s1w0.phase, RingPhase::ReduceScatter);
    EXPECT_EQ(s1w0.sendBlock, 0);

    // End of reduce-scatter (step 3): worker i fully aggregates
    // blk[(i+1) % 4] — i.e. receives it in step 3.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ringStepFor(i, 3, 4).recvBlock, (i + 1) % 4);

    // Step 4 ("Step 4: send back reduced results"): worker[3] sends
    // blk[0] to worker[0].
    const RingStep s4w3 = ringStepFor(3, 4, 4);
    EXPECT_EQ(s4w3.phase, RingPhase::AllGather);
    EXPECT_EQ(s4w3.sendBlock, 0);
    EXPECT_EQ(ringStepFor(0, 4, 4).recvBlock, 0);
}

TEST(RingSchedule, SendEqualsDownstreamReceive)
{
    for (int n : {2, 3, 4, 5, 8, 16}) {
        for (int step = 1; step <= ringStepCount(n); ++step) {
            for (int i = 0; i < n; ++i) {
                const RingStep mine = ringStepFor(i, step, n);
                const RingStep next = ringStepFor((i + 1) % n, step, n);
                EXPECT_EQ(mine.sendBlock, next.recvBlock)
                    << "n=" << n << " step=" << step << " i=" << i;
            }
        }
    }
}

TEST(RingSchedule, NoNodeSendsAndWritesSameBlockInOneStep)
{
    for (int n : {2, 3, 4, 8}) {
        for (int step = 1; step <= ringStepCount(n); ++step) {
            for (int i = 0; i < n; ++i) {
                const RingStep rs = ringStepFor(i, step, n);
                EXPECT_NE(rs.sendBlock, rs.recvBlock);
            }
        }
    }
}

TEST(RingSchedule, EveryNodeSeesEveryBlockExactlyOncePerPhase)
{
    for (int n : {3, 4, 7}) {
        for (int i = 0; i < n; ++i) {
            std::set<int> p1_recv, p2_recv;
            for (int step = 1; step < n; ++step)
                p1_recv.insert(ringStepFor(i, step, n).recvBlock);
            for (int step = n; step <= 2 * n - 2; ++step)
                p2_recv.insert(ringStepFor(i, step, n).recvBlock);
            EXPECT_EQ(p1_recv.size(), static_cast<size_t>(n - 1));
            EXPECT_EQ(p2_recv.size(), static_cast<size_t>(n - 1));
        }
    }
}

TEST(PartitionBlocks, EvenSplit)
{
    const auto blocks = partitionBlocks(100, 4);
    ASSERT_EQ(blocks.size(), 4u);
    for (int b = 0; b < 4; ++b) {
        EXPECT_EQ(blocks[static_cast<size_t>(b)].second, 25u);
        EXPECT_EQ(blocks[static_cast<size_t>(b)].first,
                  static_cast<size_t>(b) * 25u);
    }
}

TEST(PartitionBlocks, UnevenSplitCoversAll)
{
    for (size_t total : {1u, 5u, 17u, 1023u}) {
        for (int n : {2, 3, 4, 8}) {
            const auto blocks = partitionBlocks(total, n);
            size_t covered = 0;
            size_t expect_offset = 0;
            for (const auto &[off, len] : blocks) {
                EXPECT_EQ(off, expect_offset);
                expect_offset += len;
                covered += len;
            }
            EXPECT_EQ(covered, total);
            // Near-equal: sizes differ by at most one element.
            EXPECT_LE(blocks.front().second - blocks.back().second, 1u);
        }
    }
}

class RingAllReduceParam
    : public ::testing::TestWithParam<std::tuple<int, size_t>>
{
};

TEST_P(RingAllReduceParam, MatchesReferenceSum)
{
    const auto [n, total] = GetParam();
    Rng rng(static_cast<uint64_t>(n) * 1000 + total);

    std::vector<std::vector<float>> replicas(static_cast<size_t>(n),
                                             std::vector<float>(total));
    std::vector<float> expect(total, 0.0f);
    for (auto &rep : replicas) {
        for (size_t k = 0; k < total; ++k) {
            rep[k] = static_cast<float>(rng.uniform(-0.1, 0.1));
            expect[k] += rep[k];
        }
    }

    std::vector<std::span<float>> spans;
    for (auto &rep : replicas)
        spans.emplace_back(rep);
    const RingExchangeStats stats = ringAllReduce(spans, nullptr);

    for (const auto &rep : replicas)
        for (size_t k = 0; k < total; ++k)
            ASSERT_NEAR(rep[k], expect[k], 1e-4) << "n=" << n << " k=" << k;

    // Traffic accounting: 2(N-1)/N of the vector per node, N nodes.
    const uint64_t expected_bytes =
        static_cast<uint64_t>(2 * (n - 1)) * (total * 4 / n) *
        static_cast<uint64_t>(n);
    // Uneven blocks make this approximate; allow one block of slack.
    EXPECT_NEAR(static_cast<double>(stats.totalPayloadBytes),
                static_cast<double>(expected_bytes),
                static_cast<double>(4 * total));
    EXPECT_EQ(stats.totalWireBytes, stats.totalPayloadBytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RingAllReduceParam,
    ::testing::Values(std::make_tuple(2, 16u), std::make_tuple(3, 17u),
                      std::make_tuple(4, 1024u), std::make_tuple(5, 333u),
                      std::make_tuple(8, 4096u), std::make_tuple(4, 3u),
                      std::make_tuple(6, 1000u)));

TEST(RingAllReduce, CompressedStaysWithinAccumulatedBound)
{
    const int n = 4;
    const size_t total = 2048;
    const InceptionnCodec codec(10);
    Rng rng(1);

    std::vector<std::vector<float>> replicas(n, std::vector<float>(total));
    std::vector<float> expect(total, 0.0f);
    for (auto &rep : replicas) {
        for (size_t k = 0; k < total; ++k) {
            rep[k] = static_cast<float>(rng.gaussian(0.0, 0.02));
            expect[k] += rep[k];
        }
    }

    std::vector<std::span<float>> spans;
    for (auto &rep : replicas)
        spans.emplace_back(rep);
    const RingExchangeStats stats = ringAllReduce(spans, &codec);

    // Each element passes through at most 2(N-1) lossy hops; every hop
    // adds at most one error bound.
    const double worst = codec.errorBound() * 2.0 * (n - 1);
    for (const auto &rep : replicas)
        for (size_t k = 0; k < total; ++k)
            ASSERT_NEAR(rep[k], expect[k], worst);

    EXPECT_LT(stats.totalWireBytes, stats.totalPayloadBytes);
    EXPECT_GT(stats.ratio(), 1.5);
    EXPECT_GT(stats.tags.total(), 0u);
}

TEST(RingAllReduce, ReplicasAgreeWithinOneBoundAfterExchange)
{
    // Each fully-reduced block has one owner whose copy never crosses a
    // NIC; every other worker receives the once-round-tripped copy, and —
    // because the codec is idempotent — all non-owners agree bit-exactly
    // with each other, while the owner differs by at most one error bound.
    const int n = 5;
    const size_t total = 515;
    const InceptionnCodec codec(8);
    Rng rng(2);

    std::vector<std::vector<float>> replicas(n, std::vector<float>(total));
    for (auto &rep : replicas)
        for (auto &v : rep)
            v = static_cast<float>(rng.gaussian(0.0, 0.05));

    std::vector<std::span<float>> spans;
    for (auto &rep : replicas)
        spans.emplace_back(rep);
    ringAllReduce(spans, &codec);

    const auto blocks = partitionBlocks(total, n);
    // At the end of reduce-scatter (step N-1) node i owns the block it
    // received last: block (i + 1) mod N.
    for (int b = 0; b < n; ++b) {
        const int owner = (b + n - 1) % n;
        const auto [off, len] = blocks[static_cast<size_t>(b)];
        const float *ref = nullptr;
        for (int i = 0; i < n; ++i) {
            if (i == owner)
                continue;
            const float *mine =
                replicas[static_cast<size_t>(i)].data() + off;
            if (!ref) {
                ref = mine;
                continue;
            }
            for (size_t k = 0; k < len; ++k)
                ASSERT_EQ(mine[k], ref[k]) << "block " << b << " node " << i;
        }
        const float *own = replicas[static_cast<size_t>(owner)].data() + off;
        for (size_t k = 0; k < len; ++k)
            ASSERT_NEAR(own[k], ref[k], codec.errorBound());
    }
}

} // namespace
} // namespace inc
