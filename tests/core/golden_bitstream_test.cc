/**
 * @file
 * Golden-bitstream pinning of the wire format. The serialized bytes of
 * encodeStream() over a fixed input vector are checked into the repo
 * (tests/core/golden/*.bin); any change to tag encoding, payload
 * packing, group layout, or the stream header shows up as a byte
 * mismatch here — catching silent wire-format breaks that value-level
 * round-trip tests cannot see.
 *
 * Regenerate after an *intentional* format change with:
 *
 *     INC_UPDATE_GOLDEN=1 ./build/tests/test_core \
 *         --gtest_filter='GoldenBitstream*'
 *
 * and commit the rewritten .bin files with the change that caused them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/codec.h"
#include "core/compressed_stream.h"
#include "core/fp32.h"
#include "sim/random.h"

#ifndef INC_GOLDEN_DIR
#error "INC_GOLDEN_DIR must point at tests/core/golden"
#endif

namespace inc {
namespace {

/**
 * The pinned input vector: 256 floats mixing specials (zeros,
 * subnormals, exact threshold values, +/-1, large magnitudes) with
 * seeded gradient-like noise. Fixed seed on purpose — golden files are
 * byte-exact artifacts, not a property sweep (codec_property_test.cc
 * handles seed matrices).
 */
std::vector<float>
goldenInput()
{
    std::vector<float> v = {
        0.0f,          -0.0f,         1.0f,          -1.0f,
        0.5f,          -0.5f,         0.25f,         -0.25f,
        0.0078125f,    -0.0078125f, // 2^-7: 8-bit window edge
        0.00390625f,   -0.00390625f, // 2^-8
        0.0009765625f, -0.0009765625f, // 2^-10
        1.5f,          -2.75f,        123456.0f,     -3.0e-5f,
    };
    v.push_back(Fp32Bits{0, 0, 1}.pack());        // smallest subnormal
    v.push_back(Fp32Bits{1, 0, 0x7FFFFFu}.pack()); // largest subnormal
    v.push_back(Fp32Bits{0, 1, 0}.pack());        // smallest normal
    v.push_back(Fp32Bits{0, 126, 0x7FFFFFu}.pack()); // just below 1.0

    Rng rng(0x601DB175ULL); // fixed: golden bits
    while (v.size() < 224)
        v.push_back(static_cast<float>(rng.gaussian(0.0, 0.05)));
    while (v.size() < 256)
        v.push_back(static_cast<float>(rng.uniform(-1.2, 1.2)));
    return v;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(INC_GOLDEN_DIR) + "/" + name;
}

bool
readFile(const std::string &path, std::vector<uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    out.resize(size > 0 ? static_cast<size_t>(size) : 0);
    const size_t got = out.empty()
                           ? 0
                           : std::fread(out.data(), 1, out.size(), f);
    std::fclose(f);
    return got == out.size();
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

struct GoldenCase
{
    const char *file;
    int bound;
    CodecPolicy policy;
};

const GoldenCase kCases[] = {
    {"stream_b6_residual.bin", 6, CodecPolicy::kResidualMask},
    {"stream_b8_residual.bin", 8, CodecPolicy::kResidualMask},
    {"stream_b10_residual.bin", 10, CodecPolicy::kResidualMask},
    {"stream_b8_expthresh.bin", 8, CodecPolicy::kExponentThreshold},
};

class GoldenBitstream : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenBitstream, EncodeStreamMatchesPinnedBytes)
{
    const GoldenCase &gc = GetParam();
    const InceptionnCodec codec(gc.bound, gc.policy);
    const std::vector<float> input = goldenInput();
    const CompressedStream stream = encodeStream(codec, input);
    const std::vector<uint8_t> wire = serialize(stream);

    const std::string path = goldenPath(gc.file);
    if (std::getenv("INC_UPDATE_GOLDEN")) {
        writeFile(path, wire);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::vector<uint8_t> golden;
    ASSERT_TRUE(readFile(path, golden))
        << "missing golden vector " << path
        << " (run with INC_UPDATE_GOLDEN=1 to generate)";
    ASSERT_EQ(wire.size(), golden.size()) << gc.file;
    for (size_t i = 0; i < wire.size(); ++i)
        ASSERT_EQ(wire[i], golden[i])
            << gc.file << " first differs at byte " << i;
}

TEST_P(GoldenBitstream, ChunkedEncoderMatchesPinnedBytes)
{
    const GoldenCase &gc = GetParam();
    if (std::getenv("INC_UPDATE_GOLDEN"))
        GTEST_SKIP() << "regeneration handled by the serial test";
    const InceptionnCodec codec(gc.bound, gc.policy);
    const std::vector<float> input = goldenInput();
    // Small chunks so the 256-value vector spans several; the stitched
    // stream must still serialize to the exact pinned bytes.
    const ChunkedStream chunked =
        encodeStreamChunked(codec, input, /*chunk_elems=*/64);
    const std::vector<uint8_t> wire = serialize(chunked.stream);

    std::vector<uint8_t> golden;
    ASSERT_TRUE(readFile(goldenPath(gc.file), golden));
    ASSERT_EQ(wire, golden) << gc.file;
}

TEST_P(GoldenBitstream, PinnedBytesDecodeLosslessly)
{
    const GoldenCase &gc = GetParam();
    if (std::getenv("INC_UPDATE_GOLDEN"))
        GTEST_SKIP();
    std::vector<uint8_t> golden;
    ASSERT_TRUE(readFile(goldenPath(gc.file), golden));

    const InceptionnCodec codec(gc.bound, gc.policy);
    const CompressedStream stream = deserialize(golden);
    const std::vector<float> input = goldenInput();
    ASSERT_EQ(stream.count, input.size());
    std::vector<float> decoded(stream.count);
    decodeStream(codec, stream, decoded);
    for (size_t i = 0; i < input.size(); ++i) {
        const float expect =
            codec.decompress(codec.compress(input[i]));
        ASSERT_EQ(floatToBits(decoded[i]), floatToBits(expect))
            << gc.file << " value " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(WireFormat, GoldenBitstream,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             std::string n = info.param.file;
                             return n.substr(0, n.size() - 4);
                         });

} // namespace
} // namespace inc
