#include "core/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/fp32.h"
#include "sim/random.h"

namespace inc {
namespace {

TEST(Fp32Bits, UnpackPackRoundTrip)
{
    for (float f : {0.0f, 1.0f, -1.0f, 0.5f, -0.03125f, 123.456f}) {
        const Fp32Bits b = Fp32Bits::unpack(f);
        EXPECT_EQ(b.pack(), f);
    }
}

TEST(Fp32Bits, FieldsOfOne)
{
    const Fp32Bits b = Fp32Bits::unpack(1.0f);
    EXPECT_EQ(b.sign, 0u);
    EXPECT_EQ(b.exponent, 127u);
    EXPECT_EQ(b.mantissa, 0u);
}

TEST(InceptionnCodec, ValuesAtLeastOnePassThrough)
{
    const InceptionnCodec codec(10);
    for (float f : {1.0f, -1.0f, 1.5f, -273.15f, 1e30f}) {
        const CompressedValue cv = codec.compress(f);
        EXPECT_EQ(cv.tag, Tag::NoCompress);
        EXPECT_EQ(codec.decompress(cv), f);
    }
}

TEST(InceptionnCodec, NonFinitePassThrough)
{
    const InceptionnCodec codec(10);
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(codec.compress(inf).tag, Tag::NoCompress);
    EXPECT_EQ(codec.decompress(codec.compress(inf)), inf);
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(codec.compress(nan).tag, Tag::NoCompress);
    EXPECT_TRUE(std::isnan(codec.decompress(codec.compress(nan))));
}

TEST(InceptionnCodec, TinyValuesBecomeZeroTag)
{
    const InceptionnCodec codec(10); // bound 2^-10
    for (float f : {0.0f, -0.0f, 1e-20f, -1e-20f, 0.0009f, -0.0009f}) {
        const CompressedValue cv = codec.compress(f);
        EXPECT_EQ(cv.tag, Tag::Zero) << "f=" << f;
        EXPECT_EQ(codec.decompress(cv), 0.0f);
    }
}

TEST(InceptionnCodec, BoundaryValuesAroundTheBound)
{
    const InceptionnCodec codec(10);
    // Strictly below the bound vanishes...
    const float below = std::nextafter(std::ldexp(1.0f, -10), 0.0f);
    EXPECT_EQ(codec.compress(below).tag, Tag::Zero);
    // ...but exactly at the bound stays representable (and exact), so a
    // value that truncates down onto the bound is stable on recompress.
    const float at = std::ldexp(1.0f, -10);
    EXPECT_NE(codec.compress(at).tag, Tag::Zero);
    EXPECT_EQ(codec.decompress(codec.compress(at)), at);
    EXPECT_EQ(codec.decompress(codec.compress(-at)), -at);
    const float above = std::nextafter(at, 1.0f);
    EXPECT_NE(codec.compress(above).tag, Tag::Zero);
}

TEST(InceptionnCodec, SubnormalsBecomeZeroTag)
{
    const InceptionnCodec codec(15);
    const float sub = std::numeric_limits<float>::denorm_min();
    EXPECT_EQ(codec.compress(sub).tag, Tag::Zero);
}

TEST(InceptionnCodec, ExactDyadicValuesRoundTripExactly)
{
    const InceptionnCodec codec(10);
    for (float f : {0.5f, -0.5f, 0.25f, 0.75f, -0.375f, 0.0078125f}) {
        const CompressedValue cv = codec.compress(f);
        EXPECT_EQ(codec.decompress(cv), f) << "f=" << f;
    }
}

TEST(InceptionnCodec, SignSurvivesAllWidths)
{
    const InceptionnCodec codec(10);
    for (float mag : {0.9f, 0.0123f, 0.002f}) {
        const float pos = codec.decompress(codec.compress(mag));
        const float neg = codec.decompress(codec.compress(-mag));
        EXPECT_GT(pos, 0.0f);
        EXPECT_LT(neg, 0.0f);
        EXPECT_FLOAT_EQ(pos, -neg);
    }
}

/** The headline invariant: round-trip error <= 2^-b for every input. */
class CodecErrorBound : public ::testing::TestWithParam<int>
{
};

TEST_P(CodecErrorBound, RandomUniformValues)
{
    const int b = GetParam();
    const InceptionnCodec codec(b);
    const double bound = codec.errorBound();
    Rng rng(1234);
    for (int i = 0; i < 200000; ++i) {
        const float f = static_cast<float>(rng.uniform(-1.0, 1.0));
        const float back = codec.decompress(codec.compress(f));
        ASSERT_LE(std::abs(static_cast<double>(f - back)), bound)
            << "f=" << f << " back=" << back << " b=" << b;
    }
}

TEST_P(CodecErrorBound, RandomGaussianGradientLikeValues)
{
    const int b = GetParam();
    const InceptionnCodec codec(b);
    const double bound = codec.errorBound();
    Rng rng(99);
    for (int i = 0; i < 200000; ++i) {
        const float f = static_cast<float>(rng.gaussian(0.0, 0.02));
        const float back = codec.decompress(codec.compress(f));
        ASSERT_LE(std::abs(static_cast<double>(f - back)), bound)
            << "f=" << f << " back=" << back << " b=" << b;
    }
}

TEST_P(CodecErrorBound, ExhaustiveExponentMantissaCorners)
{
    const int b = GetParam();
    const InceptionnCodec codec(b);
    const double bound = codec.errorBound();
    // Sweep every exponent below 127 with corner mantissas.
    for (uint32_t e = 0; e < 127; ++e) {
        for (uint32_t m : {0u, 1u, 0x400000u, 0x7FFFFFu, 0x555555u}) {
            for (uint32_t s : {0u, 1u}) {
                const float f = Fp32Bits{s, e, m}.pack();
                const float back = codec.decompress(codec.compress(f));
                ASSERT_LE(std::abs(static_cast<double>(f - back)), bound)
                    << "e=" << e << " m=" << m << " s=" << s;
            }
        }
    }
}

TEST_P(CodecErrorBound, ThresholdPolicyAlsoHonoursBoundWhenApplicable)
{
    const int b = GetParam();
    const InceptionnCodec codec(b, CodecPolicy::kExponentThreshold);
    const double bound = codec.errorBound();
    Rng rng(5);
    for (int i = 0; i < 50000; ++i) {
        const float f = static_cast<float>(rng.uniform(-1.0, 1.0));
        const float back = codec.decompress(codec.compress(f));
        ASSERT_LE(std::abs(static_cast<double>(f - back)), bound);
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, CodecErrorBound,
                         ::testing::Values(1, 2, 4, 6, 8, 10, 12, 15));

TEST(InceptionnCodec, LooserBoundNeverCompressesWorse)
{
    Rng rng(321);
    std::vector<float> vals(20000);
    for (auto &v : vals)
        v = static_cast<float>(rng.gaussian(0.0, 0.05));
    const InceptionnCodec tight(10), loose(6);
    const uint64_t bits_tight = tight.measure(vals);
    const uint64_t bits_loose = loose.measure(vals);
    EXPECT_LE(bits_loose, bits_tight);
}

TEST(InceptionnCodec, GradientLikeDataCompressesHard)
{
    // Paper Sec. VIII-C: with bound 2^-6 nearly all gradients become
    // 2-bit vectors and the ratio approaches 15x.
    Rng rng(77);
    std::vector<float> vals(100000);
    for (auto &v : vals)
        v = static_cast<float>(rng.gaussian(0.0, 0.005));
    TagHistogram hist;
    const InceptionnCodec codec(6);
    codec.measure(vals, &hist);
    EXPECT_GT(hist.fraction(Tag::Zero), 0.90);
    EXPECT_GT(hist.compressionRatio(), 10.0);
}

TEST(InceptionnCodec, TightBoundShiftsMassTo16Bit)
{
    // Table III shape: at 2^-10 the non-zero mass is mostly 16-bit with a
    // small 8-bit share (values whose dropped bits vanish early).
    Rng rng(78);
    std::vector<float> vals(100000);
    for (auto &v : vals)
        v = static_cast<float>(rng.gaussian(0.0, 0.02));
    TagHistogram hist;
    const InceptionnCodec codec(10);
    codec.measure(vals, &hist);
    EXPECT_GT(hist.fraction(Tag::Bits16), hist.fraction(Tag::Bits8));
    EXPECT_GT(hist.fraction(Tag::Bits8), 0.0);
    EXPECT_LT(hist.fraction(Tag::NoCompress), 0.01);
}

TEST(InceptionnCodec, ThresholdPolicyNever16BitAtLooseBound)
{
    Rng rng(79);
    const InceptionnCodec codec(6, CodecPolicy::kExponentThreshold);
    TagHistogram hist;
    std::vector<float> vals(50000);
    for (auto &v : vals)
        v = static_cast<float>(rng.gaussian(0.0, 0.05));
    codec.measure(vals, &hist);
    EXPECT_EQ(hist.counts[static_cast<size_t>(Tag::Bits16)], 0u);
}

TEST(InceptionnCodec, CompressionIsIdempotent)
{
    // decompress(compress(x)) must be a fixed point: compressing the
    // reconstructed value reproduces it exactly (the NIC may recompress a
    // block on the next ring hop).
    const InceptionnCodec codec(8);
    Rng rng(42);
    for (int i = 0; i < 50000; ++i) {
        const float f = static_cast<float>(rng.uniform(-1.5, 1.5));
        const float once = codec.decompress(codec.compress(f));
        const float twice = codec.decompress(codec.compress(once));
        ASSERT_EQ(once, twice) << "f=" << f;
    }
}

TEST(InceptionnCodec, MeasureCountsTagsAndBits)
{
    const InceptionnCodec codec(10);
    const std::vector<float> vals{0.0f, 2.0f, 0.5f, 1e-9f};
    TagHistogram hist;
    const uint64_t bits = codec.measure(vals, &hist);
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_EQ(hist.counts[static_cast<size_t>(Tag::Zero)], 2u);
    EXPECT_EQ(hist.counts[static_cast<size_t>(Tag::NoCompress)], 1u);
    // 0.5 is dyadic: residual mask admits the 8-bit form.
    EXPECT_EQ(hist.counts[static_cast<size_t>(Tag::Bits8)], 1u);
    EXPECT_EQ(bits, 2u + (2u + 32u) + (2u + 8u) + 2u);
}

TEST(InceptionnCodec, RoundtripBufferMatchesScalar)
{
    const InceptionnCodec codec(10);
    Rng rng(31);
    std::vector<float> vals(999);
    for (auto &v : vals)
        v = static_cast<float>(rng.gaussian(0.0, 0.1));
    std::vector<float> expect;
    expect.reserve(vals.size());
    for (float v : vals)
        expect.push_back(codec.decompress(codec.compress(v)));
    codec.roundtrip(vals);
    EXPECT_EQ(vals, expect);
}

TEST(TagHistogram, RatioOfAllZeroTags)
{
    TagHistogram h;
    for (int i = 0; i < 10; ++i)
        h.add(Tag::Zero);
    EXPECT_DOUBLE_EQ(h.meanBitsPerValue(), 2.0);
    EXPECT_DOUBLE_EQ(h.compressionRatio(), 16.0);
}

TEST(TagHistogram, Accumulate)
{
    TagHistogram a, b;
    a.add(Tag::Zero);
    b.add(Tag::Bits16);
    b.add(Tag::Bits16);
    a += b;
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.counts[static_cast<size_t>(Tag::Bits16)], 2u);
}

TEST(InceptionnCodec, RejectsBadBound)
{
    EXPECT_DEATH({ InceptionnCodec bad(0); }, "error bound");
    EXPECT_DEATH({ InceptionnCodec bad(16); }, "error bound");
}

} // namespace
} // namespace inc
