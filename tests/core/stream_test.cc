#include "core/compressed_stream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"

namespace inc {
namespace {

TEST(BitWriter, PacksLsbFirst)
{
    BitWriter w;
    w.append(0b1, 1);
    w.append(0b0, 1);
    w.append(0b11, 2);
    EXPECT_EQ(w.bitSize(), 4u);
    ASSERT_EQ(w.bytes().size(), 1u);
    EXPECT_EQ(w.bytes()[0], 0b00001101);
}

TEST(BitWriter, CrossesByteBoundaries)
{
    BitWriter w;
    w.append(0xABCD, 16);
    w.append(0x5, 3);
    EXPECT_EQ(w.bitSize(), 19u);
    BitReader r(w.bytes());
    EXPECT_EQ(r.read(16), 0xABCDu);
    EXPECT_EQ(r.read(3), 0x5u);
}

TEST(BitReaderWriter, RandomRoundTrip)
{
    Rng rng(3);
    std::vector<std::pair<uint32_t, int>> items;
    BitWriter w;
    for (int i = 0; i < 2000; ++i) {
        const int nbits = static_cast<int>(rng.below(33));
        const uint32_t v =
            nbits == 32 ? static_cast<uint32_t>(rng.next())
                        : static_cast<uint32_t>(rng.next()) &
                              ((nbits == 0) ? 0u : ((1u << nbits) - 1u));
        items.emplace_back(v, nbits);
        w.append(v, nbits);
    }
    BitReader r(w.bytes());
    for (const auto &[v, nbits] : items)
        ASSERT_EQ(r.read(nbits), v);
}

TEST(BitReader, SeekRepositions)
{
    BitWriter w;
    w.append(0xFF, 8);
    w.append(0x00, 8);
    BitReader r(w.bytes());
    EXPECT_EQ(r.read(8), 0xFFu);
    r.seek(0);
    EXPECT_EQ(r.read(4), 0xFu);
}

TEST(Stream, EmptyInput)
{
    const InceptionnCodec codec(10);
    const CompressedStream s = encodeStream(codec, {});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.bitSize, 0u);
    std::vector<float> out;
    decodeStream(codec, s, out);
}

TEST(Stream, SingleValue)
{
    const InceptionnCodec codec(10);
    const std::vector<float> in{0.25f};
    const CompressedStream s = encodeStream(codec, in);
    EXPECT_EQ(s.count, 1u);
    std::vector<float> out(1);
    decodeStream(codec, s, out);
    EXPECT_EQ(out[0], 0.25f);
}

TEST(Stream, PartialFinalGroupPadsWithZeroTags)
{
    const InceptionnCodec codec(10);
    std::vector<float> in(11, 0.5f); // 8 + 3
    const CompressedStream s = encodeStream(codec, in);
    // Two groups: 2x16 tag bits + 11 payloads of 8 bits (0.5 is dyadic).
    EXPECT_EQ(s.bitSize, 2u * 16u + 11u * 8u);
    std::vector<float> out(11);
    decodeStream(codec, s, out);
    for (float f : out)
        EXPECT_EQ(f, 0.5f);
}

TEST(Stream, RoundTripErrorWithinBoundLargeRandom)
{
    const InceptionnCodec codec(8);
    Rng rng(10);
    std::vector<float> in(4096 + 5);
    for (auto &v : in)
        v = static_cast<float>(rng.gaussian(0.0, 0.05));
    const CompressedStream s = encodeStream(codec, in);
    std::vector<float> out(in.size());
    decodeStream(codec, s, out);
    for (size_t i = 0; i < in.size(); ++i)
        ASSERT_LE(std::abs(in[i] - out[i]), codec.errorBound());
}

TEST(Stream, MatchesScalarRoundTripExactly)
{
    const InceptionnCodec codec(10);
    Rng rng(8);
    std::vector<float> in(777);
    for (auto &v : in)
        v = static_cast<float>(rng.gaussian(0.0, 0.1));
    const CompressedStream s = encodeStream(codec, in);
    std::vector<float> out(in.size());
    decodeStream(codec, s, out);
    for (size_t i = 0; i < in.size(); ++i)
        ASSERT_EQ(out[i], codec.decompress(codec.compress(in[i])));
}

TEST(Stream, HistogramMatchesMeasure)
{
    const InceptionnCodec codec(10);
    Rng rng(9);
    std::vector<float> in(512);
    for (auto &v : in)
        v = static_cast<float>(rng.gaussian(0.0, 0.02));
    TagHistogram from_stream, from_measure;
    encodeStream(codec, in, &from_stream);
    codec.measure(in, &from_measure);
    EXPECT_EQ(from_stream.counts, from_measure.counts);
}

TEST(Stream, WireRatioAccountsHeaderAndPadding)
{
    const InceptionnCodec codec(6);
    std::vector<float> in(8000, 0.0f); // all zero-tag
    const CompressedStream s = encodeStream(codec, in);
    // 1000 groups x 16 bits = 2000 bytes + 8 header.
    EXPECT_EQ(s.wireBytes(), 2008u);
    EXPECT_NEAR(s.wireRatio(), 32000.0 / 2008.0, 1e-9);
}

TEST(Stream, IncompressibleDataExpandsOnlyByTags)
{
    const InceptionnCodec codec(10);
    std::vector<float> in(800, 7.5f); // all |f| >= 1: verbatim
    const CompressedStream s = encodeStream(codec, in);
    EXPECT_EQ(s.bitSize, 100u * 16u + 800u * 32u);
    std::vector<float> out(in.size());
    decodeStream(codec, s, out);
    for (float f : out)
        ASSERT_EQ(f, 7.5f);
}

} // namespace
} // namespace inc
