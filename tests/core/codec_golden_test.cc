/**
 * @file
 * Golden-model differential testing of the INCEPTIONN codec: an
 * independent reference implementation written purely in float
 * arithmetic (ldexp/floor — no bit twiddling) must agree with the
 * production bit-twiddled codec on every input, for every bound and
 * both payload policies.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/codec.h"
#include "core/fp32.h"
#include "sim/random.h"

namespace inc {
namespace {

/** Reference decompressed value, computed with float math only. */
double
goldenRoundtrip(float f, int b, CodecPolicy policy)
{
    if (!std::isfinite(f))
        return static_cast<double>(f);
    const double mag = std::abs(static_cast<double>(f));
    if (mag >= 1.0)
        return static_cast<double>(f); // verbatim

    const double bound = std::ldexp(1.0, -b);
    if (mag < bound)
        return 0.0;

    const double sign = f < 0.0f ? -1.0 : 1.0;
    // The 31-bit fixed-point fraction the hardware forms (truncated).
    const double f31 = std::floor(mag * std::ldexp(1.0, 31));

    // 8-bit payload keeps fraction bits of weight 2^-1..2^-7.
    const double kept7 = std::floor(mag * std::ldexp(1.0, 7));
    const double rt8 = kept7 * std::ldexp(1.0, -7);
    // 16-bit payload keeps weights 2^-1..2^-15.
    const double kept15 = std::floor(mag * std::ldexp(1.0, 15));
    const double rt16 = kept15 * std::ldexp(1.0, -15);

    bool use8 = false;
    if (policy == CodecPolicy::kResidualMask) {
        // 8-bit admissible iff its kept window contains the leading 1
        // (value >= 2^-7, i.e. kept7 >= 1) and the dropped fixed-point
        // bits are strictly below the bound.
        const double residual = f31 - kept7 * std::ldexp(1.0, 24);
        use8 = kept7 >= 1.0 && residual < std::ldexp(1.0, 31 - b);
    } else {
        // Exponent threshold: 8-bit iff b <= 7 and mag >= 2^-7... the
        // production rule is d <= 7, i.e. mag >= 2^-8 with the leading
        // bit inside the window; values in [2^-8, 2^-7) keep a zero
        // 7-bit field and decode to 0 only if kept7 == 0, matching the
        // fixed-point truncation rt8.
        use8 = b <= 7 && mag >= std::ldexp(1.0, -8);
    }
    return sign * (use8 ? rt8 : rt16);
}

class CodecGolden
    : public ::testing::TestWithParam<std::tuple<int, CodecPolicy>>
{
};

TEST_P(CodecGolden, RandomValuesAgree)
{
    const auto [b, policy] = GetParam();
    const InceptionnCodec codec(b, policy);
    Rng rng(static_cast<uint64_t>(b) * 7 + 1);
    for (int i = 0; i < 150000; ++i) {
        float f;
        switch (i % 3) {
          case 0:
            f = static_cast<float>(rng.uniform(-1.2, 1.2));
            break;
          case 1:
            f = static_cast<float>(rng.gaussian(0.0, 0.02));
            break;
          default:
            f = static_cast<float>(rng.gaussian(0.0, 1e-4));
        }
        const float prod = codec.decompress(codec.compress(f));
        const double gold = goldenRoundtrip(f, b, policy);
        ASSERT_DOUBLE_EQ(static_cast<double>(prod), gold)
            << "f=" << f << " b=" << b;
    }
}

TEST_P(CodecGolden, ExponentBoundaryValuesAgree)
{
    const auto [b, policy] = GetParam();
    const InceptionnCodec codec(b, policy);
    for (uint32_t e = 100; e < 128; ++e) {
        for (uint32_t m :
             {0u, 1u, 0x7FFFFFu, 0x400000u, 0x3FFFFFu, 0x555555u}) {
            for (uint32_t s : {0u, 1u}) {
                const float f = Fp32Bits{s, e, m}.pack();
                const float prod = codec.decompress(codec.compress(f));
                const double gold = goldenRoundtrip(f, b, policy);
                ASSERT_DOUBLE_EQ(static_cast<double>(prod), gold)
                    << "e=" << e << " m=" << m << " s=" << s
                    << " b=" << b;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    BoundsAndPolicies, CodecGolden,
    ::testing::Combine(::testing::Values(4, 6, 8, 10, 12, 15),
                       ::testing::Values(CodecPolicy::kResidualMask,
                                         CodecPolicy::kExponentThreshold)));

} // namespace
} // namespace inc
