#include "core/burst_compressor.h"
#include "core/burst_decompressor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"

namespace inc {
namespace {

std::vector<float>
gradientLike(size_t n, double sigma, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, sigma));
    return v;
}

TEST(BurstCompressor, ByteExactWithScalarStream)
{
    const InceptionnCodec codec(10);
    const auto vals = gradientLike(4096 + 3, 0.05, 21);

    const CompressedStream scalar = encodeStream(codec, vals);

    BurstCompressor engine(codec);
    engine.feed(vals);
    const CompressedStream hw = engine.finish();

    EXPECT_EQ(hw.count, scalar.count);
    EXPECT_EQ(hw.bitSize, scalar.bitSize);
    EXPECT_EQ(hw.bytes, scalar.bytes);
}

TEST(BurstCompressor, ChunkedFeedMatchesSingleFeed)
{
    const InceptionnCodec codec(8);
    const auto vals = gradientLike(1000, 0.02, 22);

    BurstCompressor one(codec);
    one.feed(vals);
    const CompressedStream a = one.finish();

    BurstCompressor many(codec);
    size_t i = 0;
    const size_t chunks[] = {1, 3, 8, 13, 100, 501, 374};
    for (size_t c : chunks) {
        many.feed(std::span<const float>(vals).subspan(i, c));
        i += c;
    }
    ASSERT_EQ(i, vals.size());
    const CompressedStream b = many.finish();

    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.bitSize, b.bitSize);
}

TEST(BurstCompressor, CycleCountTracksInputWhenCompressible)
{
    const InceptionnCodec codec(6);
    const auto vals = gradientLike(8000, 0.001, 23); // nearly all zero-tag

    BurstCompressor engine(codec, /*pipeline_depth=*/4);
    engine.feed(vals);
    const CompressedStream s = engine.finish();
    const EngineStats &st = engine.stats();

    EXPECT_EQ(st.inputBursts, 1000u);
    // Compressible traffic: output is a trickle, intake never stalls.
    EXPECT_LE(st.cycles, st.inputBursts + st.outputBursts + 4u);
    EXPECT_LT(s.bitSize, 8000u * 32u / 8u); // >8x compressed
}

TEST(BurstCompressor, IncompressibleTrafficThrottlesOnOutput)
{
    const InceptionnCodec codec(10);
    std::vector<float> vals(8000, 3.14159f); // all verbatim: 272 bits/burst

    BurstCompressor engine(codec);
    engine.feed(vals);
    const CompressedStream s = engine.finish();
    const EngineStats &st = engine.stats();

    EXPECT_EQ(s.bitSize, 1000u * 272u);
    EXPECT_EQ(st.outputBursts, (1000u * 272u + 255u) / 256u);
    // Output side is the bottleneck: cycles track output bursts.
    EXPECT_GE(st.cycles, st.outputBursts);
}

TEST(BurstDecompressor, RecoversScalarRoundTrip)
{
    const InceptionnCodec codec(10);
    const auto vals = gradientLike(2048 + 7, 0.05, 24);

    BurstCompressor comp(codec);
    comp.feed(vals);
    const CompressedStream s = comp.finish();

    BurstDecompressor decomp(codec);
    const std::vector<float> out = decomp.decompress(s);

    ASSERT_EQ(out.size(), vals.size());
    for (size_t i = 0; i < vals.size(); ++i)
        ASSERT_EQ(out[i], codec.decompress(codec.compress(vals[i])));
}

TEST(BurstDecompressor, HandlesGroupsStraddlingBursts)
{
    // Mixed widths make group sizes irregular so groups straddle 256-bit
    // boundaries — the Burst Buffer path the paper calls out.
    const InceptionnCodec codec(10);
    Rng rng(25);
    std::vector<float> vals(5000);
    for (size_t i = 0; i < vals.size(); ++i) {
        switch (rng.below(4)) {
          case 0: vals[i] = 0.0f; break;
          case 1: vals[i] = static_cast<float>(rng.uniform(-1, 1)); break;
          case 2: vals[i] = static_cast<float>(rng.uniform(-4, 4)); break;
          default: vals[i] = static_cast<float>(rng.gaussian(0, 1e-4));
        }
    }
    BurstCompressor comp(codec);
    comp.feed(vals);
    const CompressedStream s = comp.finish();

    BurstDecompressor decomp(codec);
    const std::vector<float> out = decomp.decompress(s);
    ASSERT_EQ(out.size(), vals.size());
    for (size_t i = 0; i < vals.size(); ++i)
        ASSERT_EQ(out[i], codec.decompress(codec.compress(vals[i])));
}

TEST(BurstDecompressor, CycleCountCoversAllBursts)
{
    const InceptionnCodec codec(8);
    const auto vals = gradientLike(8192, 0.05, 26);

    BurstCompressor comp(codec);
    comp.feed(vals);
    const CompressedStream s = comp.finish();

    BurstDecompressor decomp(codec, /*pipeline_depth=*/4);
    decomp.decompress(s);
    const EngineStats &st = decomp.stats();

    EXPECT_EQ(st.outputBursts, 8192u / 8u);
    EXPECT_EQ(st.inputBursts, (s.bitSize + 255u) / 256u);
    EXPECT_GE(st.cycles, st.outputBursts);
    // Decode can stall at most one refill cycle per group.
    EXPECT_LE(st.cycles, st.outputBursts * 2u + st.inputBursts + 4u);
}

TEST(BurstEngines, EmptyStream)
{
    const InceptionnCodec codec(10);
    BurstCompressor comp(codec);
    const CompressedStream s = comp.finish();
    EXPECT_EQ(s.count, 0u);

    BurstDecompressor decomp(codec);
    EXPECT_TRUE(decomp.decompress(s).empty());
}

TEST(BurstEngines, EngineKeepsLineRateAt100MHz)
{
    // Paper Sec. VII-C: engines must not curtail the 10 Gb/s NIC at
    // 100 MHz. 256 bit/cycle * 100 MHz = 25.6 Gb/s input bandwidth.
    const InceptionnCodec codec(10);
    const auto vals = gradientLike(80000, 0.05, 27);
    BurstCompressor comp(codec);
    comp.feed(vals);
    comp.finish();
    const double bps = comp.stats().inputBitsPerSecond(100e6);
    EXPECT_GT(bps, 10e9);
}

} // namespace
} // namespace inc
