/**
 * @file
 * Property-based testing of the INCEPTIONN codec: instead of comparing
 * against a second implementation (codec_golden_test.cc does that), this
 * layer asserts the *contracts* the rest of the system depends on, over
 * adversarial seeded input sweeps:
 *
 *  - bounded error: |f - decode(encode(f))| <= 2^-b for every finite
 *    input under the default residual-mask policy;
 *  - tag/payload well-formedness: payloads fit their tag's width, Zero
 *    carries an empty payload, NoCompress is bit-exact;
 *  - idempotence: a round-tripped value re-compresses to itself (the
 *    ring exchange hops gradients through many NICs);
 *  - sign and magnitude sanity: decode never flips sign or grows
 *    magnitude beyond the input.
 *
 * The sweep is seeded from INC_TEST_SEED (default 1) so CI can run a
 * seed matrix without recompiling.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/codec.h"
#include "core/fp32.h"
#include "sim/random.h"

namespace inc {
namespace {

uint64_t
testSeed()
{
    const char *env = std::getenv("INC_TEST_SEED");
    if (env && *env)
        return std::strtoull(env, nullptr, 10);
    return 1;
}

/**
 * Adversarial input set for one (seed, bound) pair: exact zeros of both
 * signs, subnormals, values straddling the 2^-b bound, the 8/16-bit
 * payload decision thresholds (2^-7, 2^-8), the NoCompress threshold
 * (1.0), plus broad uniform and two-scale gaussian fill.
 */
std::vector<float>
adversarialValues(uint64_t seed, int b)
{
    Rng rng(seed * 1000003ULL + static_cast<uint64_t>(b));
    std::vector<float> v;

    v.push_back(0.0f);
    v.push_back(-0.0f);

    // Subnormals: exponent 0, random mantissas, both signs.
    for (int i = 0; i < 64; ++i) {
        const uint32_t m =
            static_cast<uint32_t>(rng.below((1u << 23) - 1)) + 1;
        v.push_back(Fp32Bits{static_cast<uint32_t>(i & 1), 0, m}.pack());
    }
    // Smallest normals.
    v.push_back(Fp32Bits{0, 1, 0}.pack());
    v.push_back(Fp32Bits{1, 1, 0}.pack());

    // Values straddling thresholds the tag decision keys on: the error
    // bound 2^-b, the 8-bit payload window edges 2^-7 and 2^-8, and the
    // verbatim threshold 1.0. For each threshold t, take t scaled by
    // (1 +/- k ulp-ish nudges) and random mantissas in the adjacent
    // exponent bins.
    for (const int t : {b, 7, 8, 0}) {
        const uint32_t e = static_cast<uint32_t>(127 - t);
        for (const uint32_t de : {0u, 1u}) {
            if (e - de == 0 || e - de > 254)
                continue;
            for (int i = 0; i < 32; ++i) {
                const uint32_t m = (i < 2)
                                       ? (i == 0 ? 0u : 0x7FFFFFu)
                                       : static_cast<uint32_t>(
                                             rng.below(1u << 23));
                v.push_back(Fp32Bits{static_cast<uint32_t>(i & 1),
                                     e - de, m}
                                .pack());
            }
        }
    }

    // Broad fill: uniform across the compressible range and beyond,
    // plus gradient-like gaussians at two scales.
    for (int i = 0; i < 4000; ++i)
        v.push_back(static_cast<float>(rng.uniform(-1.5, 1.5)));
    for (int i = 0; i < 4000; ++i)
        v.push_back(static_cast<float>(rng.gaussian(0.0, 0.05)));
    for (int i = 0; i < 4000; ++i)
        v.push_back(static_cast<float>(rng.gaussian(0.0, 1e-4)));
    return v;
}

class CodecProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CodecProperty, ErrorWithinBoundResidualMask)
{
    const int b = GetParam();
    const InceptionnCodec codec(b, CodecPolicy::kResidualMask);
    const double bound = codec.errorBound();
    for (const float f : adversarialValues(testSeed(), b)) {
        const float rt = codec.decompress(codec.compress(f));
        ASSERT_LE(std::abs(static_cast<double>(f) -
                           static_cast<double>(rt)),
                  bound)
            << "f=" << f << " rt=" << rt << " b=" << b;
    }
}

TEST_P(CodecProperty, TagAndPayloadWellFormed)
{
    const int b = GetParam();
    for (const CodecPolicy policy : {CodecPolicy::kResidualMask,
                                     CodecPolicy::kExponentThreshold}) {
        const InceptionnCodec codec(b, policy);
        for (const float f : adversarialValues(testSeed(), b)) {
            const CompressedValue cv = codec.compress(f);
            const int bits = cv.bits();
            if (bits < 32) {
                // Payload must fit the tag's width exactly.
                ASSERT_LT(cv.payload, 1u << bits)
                    << "f=" << f << " tag=" << static_cast<int>(cv.tag);
            }
            switch (cv.tag) {
              case Tag::Zero:
                ASSERT_EQ(cv.payload, 0u) << "f=" << f;
                ASSERT_LE(std::abs(static_cast<double>(f)),
                          codec.errorBound());
                break;
              case Tag::NoCompress:
                // Verbatim: bit-exact round-trip, reserved for
                // |f| >= 1 and non-finite values.
                ASSERT_EQ(floatToBits(codec.decompress(cv)),
                          floatToBits(f));
                break;
              default:
                break;
            }
        }
    }
}

TEST_P(CodecProperty, RoundtripIdempotent)
{
    const int b = GetParam();
    for (const CodecPolicy policy : {CodecPolicy::kResidualMask,
                                     CodecPolicy::kExponentThreshold}) {
        const InceptionnCodec codec(b, policy);
        for (const float f : adversarialValues(testSeed(), b)) {
            const float once = codec.decompress(codec.compress(f));
            const float twice =
                codec.decompress(codec.compress(once));
            ASSERT_EQ(floatToBits(twice), floatToBits(once))
                << "f=" << f << " once=" << once;
        }
    }
}

TEST_P(CodecProperty, SignAndMagnitudePreserved)
{
    const int b = GetParam();
    for (const CodecPolicy policy : {CodecPolicy::kResidualMask,
                                     CodecPolicy::kExponentThreshold}) {
        const InceptionnCodec codec(b, policy);
        for (const float f : adversarialValues(testSeed(), b)) {
            if (!std::isfinite(f))
                continue;
            const float rt = codec.decompress(codec.compress(f));
            if (rt != 0.0f)
                ASSERT_EQ(std::signbit(rt), std::signbit(f)) << f;
            // Truncation never grows the magnitude.
            ASSERT_LE(std::abs(rt), std::abs(f)) << f;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, CodecProperty,
                         ::testing::Values(6, 8, 10));

} // namespace
} // namespace inc
