#include "core/compressed_stream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"
#include "sim/thread_pool.h"

namespace inc {
namespace {

/** Restore the default pool width when a test exits. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { setGlobalThreadCount(0); }
};

std::vector<float>
gradientLike(size_t n, uint64_t seed = 7)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 0.02));
    return v;
}

TEST(ChunkedStream, BitIdenticalToSerialStream)
{
    const InceptionnCodec codec(10);
    // Lengths around every framing edge: empty, single value, shorter
    // than one chunk, exact chunk multiples, and ragged tails that are
    // and are not multiples of the 8-value group.
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                           size_t{64}, size_t{65}, size_t{128},
                           size_t{129}, size_t{1000}}) {
        const auto vals = gradientLike(n);
        const CompressedStream serial = encodeStream(codec, vals);
        const ChunkedStream chunked =
            encodeStreamChunked(codec, vals, /*chunk_elems=*/64);
        EXPECT_EQ(chunked.stream.count, serial.count) << "n=" << n;
        EXPECT_EQ(chunked.stream.bitSize, serial.bitSize) << "n=" << n;
        EXPECT_EQ(chunked.stream.bytes, serial.bytes) << "n=" << n;
    }
}

TEST(ChunkedStream, NoEmptyTailChunkOnExactMultiple)
{
    const InceptionnCodec codec(10);
    const auto vals = gradientLike(128);
    const ChunkedStream cs = encodeStreamChunked(codec, vals, 64);
    EXPECT_EQ(cs.chunkCount(), 2u);
    EXPECT_EQ(cs.chunkValueCount(0), 64u);
    EXPECT_EQ(cs.chunkValueCount(1), 64u);
}

TEST(ChunkedStream, EmptyInputHasZeroChunks)
{
    const InceptionnCodec codec(10);
    const ChunkedStream cs = encodeStreamChunked(codec, {}, 64);
    EXPECT_EQ(cs.chunkCount(), 0u);
    EXPECT_EQ(cs.stream.count, 0u);
    EXPECT_EQ(cs.stream.bitSize, 0u);
    std::vector<float> out;
    decodeStreamChunked(codec, cs, out);
}

TEST(ChunkedStream, SingleElementInputRoundTrips)
{
    const InceptionnCodec codec(10);
    const std::vector<float> in{0.25f};
    const ChunkedStream cs = encodeStreamChunked(codec, in, 64);
    EXPECT_EQ(cs.chunkCount(), 1u);
    EXPECT_EQ(cs.chunkValueCount(0), 1u);
    std::vector<float> out(1);
    decodeStreamChunked(codec, cs, out);
    EXPECT_EQ(out[0], 0.25f);
}

TEST(ChunkedStream, NonMultipleLengthRoundTripsExactly)
{
    // The regression this guards: a tail shorter than the chunk (and
    // shorter than a group) must decode to exactly the per-value
    // round-trip, with no dropped or phantom tail values.
    const InceptionnCodec codec(8);
    for (const size_t n : {size_t{65}, size_t{127}, size_t{200},
                           size_t{777}}) {
        const auto in = gradientLike(n, 11);
        const ChunkedStream cs = encodeStreamChunked(codec, in, 64);
        EXPECT_EQ(cs.chunkCount(), (n + 63) / 64);
        std::vector<float> out(n);
        decodeStreamChunked(codec, cs, out);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], codec.decompress(codec.compress(in[i])))
                << "n=" << n << " i=" << i;
    }
}

TEST(ChunkedStream, ChunkedDecodeMatchesSerialDecode)
{
    const InceptionnCodec codec(10);
    const auto in = gradientLike(5000, 21);
    const ChunkedStream cs = encodeStreamChunked(codec, in, 512);
    std::vector<float> serial(in.size()), chunked(in.size());
    decodeStream(codec, cs.stream, serial);
    decodeStreamChunked(codec, cs, chunked);
    EXPECT_EQ(serial, chunked);
}

TEST(ChunkedStream, HistogramMatchesSerial)
{
    const InceptionnCodec codec(10);
    const auto in = gradientLike(1234, 5);
    TagHistogram serial, chunked;
    encodeStream(codec, in, &serial);
    encodeStreamChunked(codec, in, 64, &chunked);
    EXPECT_EQ(serial.counts, chunked.counts);
}

TEST(ChunkedStream, BitIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const InceptionnCodec codec(10);
    const auto in = gradientLike(10'000, 3);

    setGlobalThreadCount(1);
    const ChunkedStream one = encodeStreamChunked(codec, in, 256);
    std::vector<float> out_one(in.size());
    decodeStreamChunked(codec, one, out_one);

    for (const int threads : {2, 8}) {
        setGlobalThreadCount(threads);
        const ChunkedStream multi = encodeStreamChunked(codec, in, 256);
        EXPECT_EQ(one.stream.bytes, multi.stream.bytes)
            << threads << " threads";
        EXPECT_EQ(one.chunkBitOffset, multi.chunkBitOffset)
            << threads << " threads";
        std::vector<float> out_multi(in.size());
        decodeStreamChunked(codec, multi, out_multi);
        EXPECT_EQ(out_one, out_multi) << threads << " threads";
    }
}

TEST(CodecParallel, RoundtripBitIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const InceptionnCodec codec(10);
    const auto in = gradientLike(50'000, 17);

    setGlobalThreadCount(1);
    auto serial = in;
    TagHistogram serial_hist;
    codec.roundtrip(serial, &serial_hist);

    for (const int threads : {2, 8}) {
        setGlobalThreadCount(threads);
        auto multi = in;
        TagHistogram multi_hist;
        codec.roundtrip(multi, &multi_hist);
        EXPECT_EQ(serial, multi) << threads << " threads";
        EXPECT_EQ(serial_hist.counts, multi_hist.counts)
            << threads << " threads";
    }
}

TEST(CodecParallel, MeasureBitIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const InceptionnCodec codec(8);
    const auto in = gradientLike(30'000, 19);

    setGlobalThreadCount(1);
    TagHistogram h1;
    const uint64_t bits1 = codec.measure(in, &h1);

    for (const int threads : {2, 8}) {
        setGlobalThreadCount(threads);
        TagHistogram h;
        EXPECT_EQ(codec.measure(in, &h), bits1) << threads << " threads";
        EXPECT_EQ(h.counts, h1.counts) << threads << " threads";
    }
}

TEST(BitWriter, AppendBitsAlignedAndUnaligned)
{
    BitWriter src;
    src.append(0xDEADBEEF, 32);
    src.append(0x2A, 7);

    // Byte-aligned destination.
    BitWriter aligned;
    aligned.appendBits(src.bytes(), src.bitSize());
    BitReader ra(aligned.bytes());
    EXPECT_EQ(ra.read(32), 0xDEADBEEFu);
    EXPECT_EQ(ra.read(7), 0x2Au);
    EXPECT_EQ(aligned.bitSize(), src.bitSize());

    // Unaligned destination (3 bits already written).
    BitWriter unaligned;
    unaligned.append(0x5, 3);
    unaligned.appendBits(src.bytes(), src.bitSize());
    BitReader ru(unaligned.bytes());
    EXPECT_EQ(ru.read(3), 0x5u);
    EXPECT_EQ(ru.read(32), 0xDEADBEEFu);
    EXPECT_EQ(ru.read(7), 0x2Au);
}

} // namespace
} // namespace inc
