/**
 * @file
 * Retransmit/drop byte accounting across the two lossy transports
 * (DESIGN.md section 13.4). The serial datagram path recovers with
 * NewReno/DCTCP (window-driven, can retransmit speculatively); the LP
 * fabric uses idealized selective repeat (exactly one reship per
 * judged loss, no windows). The models legitimately diverge in timing
 * and retransmit counts — what must NOT diverge is each path's own
 * conservation law, asserted here:
 *  - LP: reshipped packets == judged drops == the kind-4 trace tally,
 *    and lossy runs deliver exactly the lossless byte totals;
 *  - serial: packetsSent == unique payload packets + retransmits, and
 *    delivered bytes equal the queued payload exactly once.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/lp_collectives.h"
#include "net/faults.h"
#include "net/lp_fabric.h"
#include "net/network.h"
#include "net/packet.h"
#include "net/reliable.h"
#include "net/topology.h"

namespace inc {
namespace {

constexpr uint64_t kGradient = 1 << 20;

LpFabricConfig
lossyConfig()
{
    LpFabricConfig fc;
    fc.lossy = true;
    fc.faults.seed = 0xACC7;
    fc.faults.defaultLink.loss = LossKind::Bernoulli;
    fc.faults.defaultLink.lossRate = 0.02;
    fc.faults.defaultLink.corruptionRate = 0.002;
    return fc;
}

struct LpAccounting
{
    LpAllreduceResult result;
    uint64_t fabricResent = 0;
    uint64_t judgedDrops = 0;
    uint64_t tracedRetryPackets = 0;
    uint64_t deliveredBytes = 0;
};

LpAccounting
runLpLossy(LpAlgorithm algo)
{
    LpFabric fab(fatTreeTopology(4), lossyConfig(), 1);
    LpCollectiveConfig cc;
    cc.algorithm = algo;
    cc.gradientBytes = kGradient;
    LpAccounting out;
    out.result = runLpAllreduce(fab, cc);
    out.fabricResent = fab.retransmittedPackets();
    out.judgedDrops = fab.faultTotals().drops();
    out.deliveredBytes = fab.deliveredBytes();
    for (const LpTraceRec &rec : fab.mergedTrace())
        if (rec.kind == 4) // retry records carry the reshipped count
            out.tracedRetryPackets += rec.bytes;
    return out;
}

class LpLossyAccounting : public ::testing::TestWithParam<LpAlgorithm>
{
};

TEST_P(LpLossyAccounting, EveryJudgedDropIsReshippedExactlyOnce)
{
    const LpAccounting a = runLpLossy(GetParam());
    ASSERT_GT(a.judgedDrops, 0u) << "loss config drew no drops";
    // Idealized selective repeat: one retry flight entry per judged
    // loss, visible identically through all three counters.
    EXPECT_EQ(a.fabricResent, a.judgedDrops);
    EXPECT_EQ(a.tracedRetryPackets, a.fabricResent);
    // And the result struct surfaces the same accounting.
    EXPECT_EQ(a.result.retransmittedPackets, a.fabricResent);
    EXPECT_EQ(a.result.packetsDropped, a.judgedDrops);
}

TEST_P(LpLossyAccounting, LossNeverChangesDeliveredPayload)
{
    LpFabric clean(fatTreeTopology(4), LpFabricConfig{}, 1);
    LpCollectiveConfig cc;
    cc.algorithm = GetParam();
    cc.gradientBytes = kGradient;
    const LpAllreduceResult cleanResult = runLpAllreduce(clean, cc);
    EXPECT_EQ(cleanResult.retransmittedPackets, 0u);
    EXPECT_EQ(cleanResult.packetsDropped, 0u);

    const LpAccounting lossy = runLpLossy(GetParam());
    EXPECT_EQ(lossy.deliveredBytes, clean.deliveredBytes());
    // Recovery costs time, never bytes.
    EXPECT_GE(lossy.result.finish, cleanResult.finish);
}

INSTANTIATE_TEST_SUITE_P(
    Collectives, LpLossyAccounting,
    ::testing::Values(LpAlgorithm::Ring, LpAlgorithm::Tree,
                      LpAlgorithm::InNetwork),
    [](const ::testing::TestParamInfo<LpAlgorithm> &param) {
        return lpAlgorithmName(param.param);
    });

TEST(SerialLossyAccounting, RenoConservesPacketsAndBytes)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    FaultConfig fc;
    fc.seed = 0xACC7;
    fc.defaultLink.loss = LossKind::Bernoulli;
    fc.defaultLink.lossRate = 0.02;
    FaultModel faults(fc);
    net.attachFaults(&faults);
    ReliableChannel ch(net, 0, 1, {});

    // MSS-aligned payload so the unique-packet count is exact.
    const uint64_t mss = mssFor(net.mtu());
    const uint64_t packetsPerMsg = 800;
    const int messages = 4;
    int delivered = 0;
    for (int m = 0; m < messages; ++m)
        ch.send(packetsPerMsg * mss, 1.0, [&](Tick) { ++delivered; });
    events.run();

    ASSERT_EQ(delivered, messages);
    const ReliableStats &s = ch.stats();
    ASSERT_GT(s.dropsObserved, 0u);
    // Conservation: what went on the wire is the unique payload plus
    // the recovery traffic, nothing else.
    EXPECT_EQ(s.packetsSent,
              packetsPerMsg * static_cast<uint64_t>(messages) +
                  s.retransmits);
    // Exactly-once delivery regardless of how recovery went.
    EXPECT_EQ(s.deliveredBytes,
              packetsPerMsg * mss * static_cast<uint64_t>(messages));
}

} // namespace
} // namespace inc
