/**
 * @file
 * Bit-identity gate for the parallel simulation core (test_parallel;
 * the parallel-determinism CI job runs this binary standalone under an
 * INC_THREADS x INC_EQ_SHUFFLE matrix). Every collective, lossless and
 * lossy, must produce byte-identical event counts, metrics CSV, and
 * canonical trace CSV at execution widths 1, 2, and 8 — the width-1
 * serial drain is the sequential baseline the wider runs are diffed
 * against. Same-tick shuffle seeds are then compared against the FIFO
 * baseline at the pinned invariant tier (delivered bytes, per-kind
 * trace-record counts, fault totals), the LP-mode analogue of the
 * DESIGN.md section 11 tiers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "comm/lp_collectives.h"
#include "net/lp_fabric.h"
#include "net/topology.h"
#include "stats/critical_path.h"

namespace inc {
namespace {

constexpr uint64_t kGradient = 1 << 20; // divides evenly by 16 and 4
constexpr int kFatTreeK = 4;            // 16 hosts, 20 switches
constexpr int kFifo = -1;               // shuffle mode: strict FIFO

/** Everything a run exposes, captured for byte-level comparison. */
struct Capture
{
    std::vector<Tick> hostDone;
    Tick finish = 0;
    uint64_t events = 0;
    uint64_t rounds = 0;
    uint64_t deliveredBytes = 0;
    uint64_t faultsJudged = 0;
    uint64_t faultsDrops = 0;
    std::string metricsCsv;
    std::string traceCsv;
    std::string spansCsv;
    /** Trace-record count per kind (tx/hop/rx/deliver/retry). */
    std::map<int, size_t> kindCounts;
    /** Merged-span count per spans::Kind. */
    std::map<int, size_t> spanKindCounts;
    /** Blame decomposition sums bit-exactly to the window. */
    bool blameExact = false;
};

LpFabricConfig
fabricConfig(bool lossy)
{
    LpFabricConfig fc;
    fc.lossy = lossy;
    fc.captureSpans = true;
    if (lossy) {
        // Stateless hazards only, and no outage/degradation windows:
        // window checks are the one place a fate depends on the
        // judgment *time*, which shuffle seeds legitimately perturb.
        fc.faults.seed = 0xFEED5;
        fc.faults.defaultLink.loss = LossKind::Bernoulli;
        fc.faults.defaultLink.lossRate = 0.02;
        fc.faults.defaultLink.corruptionRate = 0.002;
    }
    return fc;
}

/**
 * One full allreduce on a k=4 fat-tree.
 * @param width LpScheduler width (1 serial, >1 private pool, 0 global).
 * @param shuffleMode kFifo for strict FIFO tie-breaks, >= 0 for a
 *        same-tick shuffle seed. INT_MIN-like sentinel -2 leaves the
 *        ambient INC_EQ_SHUFFLE setting untouched (env matrix mode).
 */
Capture
runOnce(LpAlgorithm algo, bool lossy, int width, int shuffleMode)
{
    LpFabric fab(fatTreeTopology(kFatTreeK), fabricConfig(lossy), width);
    if (shuffleMode == kFifo)
        fab.scheduler().clearSameTickShuffle();
    else if (shuffleMode >= 0)
        fab.scheduler().setSameTickShuffle(
            static_cast<uint64_t>(shuffleMode));

    LpCollectiveConfig cc;
    cc.algorithm = algo;
    cc.gradientBytes = kGradient;
    cc.groupSize = 4;
    const LpAllreduceResult r = runLpAllreduce(fab, cc);

    Capture c;
    c.hostDone = r.hostDone;
    c.finish = r.finish;
    c.events = r.events;
    c.rounds = r.rounds;
    c.deliveredBytes = fab.deliveredBytes();
    const FaultStats fs = fab.faultTotals();
    c.faultsJudged = fs.packetsJudged;
    c.faultsDrops = fs.drops();
    c.metricsCsv = fab.renderMetricsCsv();
    c.traceCsv = fab.renderTraceCsv();
    for (const LpTraceRec &rec : fab.mergedTrace())
        ++c.kindCounts[rec.kind];
    const std::vector<spans::Span> spans = fab.mergedSpans();
    c.spansCsv = spans::renderSpansCsv(spans);
    for (const spans::Span &s : spans)
        ++c.spanKindCounts[static_cast<int>(s.kind)];
    const CriticalPathReport rep = analyzeCriticalPath(spans);
    c.blameExact = rep.exact() && rep.iterations.size() == 1;
    return c;
}

/** Full byte-identity: the gating comparison between widths. */
void
expectIdentical(const Capture &a, const Capture &b, const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.hostDone, b.hostDone);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.metricsCsv, b.metricsCsv);
    EXPECT_EQ(a.traceCsv, b.traceCsv);
    EXPECT_EQ(a.spansCsv, b.spansCsv);
}

/** Pinned invariant tier: what shuffle seeds must preserve. */
void
expectInvariantTier(const Capture &base, const Capture &other,
                    const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(base.deliveredBytes, other.deliveredBytes);
    EXPECT_EQ(base.kindCounts, other.kindCounts);
    EXPECT_EQ(base.faultsJudged, other.faultsJudged);
    EXPECT_EQ(base.faultsDrops, other.faultsDrops);
    // Span streams follow the trace tiers: same-tick shuffle may
    // permute fold order at the switches, but never the span multiset
    // per kind nor the exactness of the blame decomposition.
    EXPECT_EQ(base.spanKindCounts, other.spanKindCounts);
    EXPECT_TRUE(other.blameExact);
}

constexpr std::array<LpAlgorithm, 5> kAlgorithms = {
    LpAlgorithm::Star, LpAlgorithm::Ring, LpAlgorithm::Tree,
    LpAlgorithm::HierRing, LpAlgorithm::InNetwork};

class ParallelDeterminism
    : public ::testing::TestWithParam<LpAlgorithm>
{
};

TEST_P(ParallelDeterminism, WidthsBitIdenticalLossless)
{
    const Capture serial = runOnce(GetParam(), false, 1, kFifo);
    for (const int width : {2, 8}) {
        const Capture wide = runOnce(GetParam(), false, width, kFifo);
        expectIdentical(serial, wide,
                        width == 2 ? "width 2 vs 1" : "width 8 vs 1");
    }
}

TEST_P(ParallelDeterminism, WidthsBitIdenticalLossy)
{
    const Capture serial = runOnce(GetParam(), true, 1, kFifo);
    EXPECT_GT(serial.faultsDrops, 0u) << "lossy run drew no drops; the "
                                         "retransmission path is untested";
    for (const int width : {2, 8}) {
        const Capture wide = runOnce(GetParam(), true, width, kFifo);
        expectIdentical(serial, wide,
                        width == 2 ? "width 2 vs 1" : "width 8 vs 1");
    }
}

TEST_P(ParallelDeterminism, WidthsBitIdenticalUnderShuffle)
{
    // The width contract must hold under shuffled tie-breaks too: the
    // per-LP shuffle keys are functions of (seed, lp, event seq), never
    // of thread placement.
    for (const bool lossy : {false, true}) {
        const Capture serial = runOnce(GetParam(), lossy, 1, 3);
        for (const int width : {2, 8}) {
            const Capture wide = runOnce(GetParam(), lossy, width, 3);
            expectIdentical(serial, wide,
                            lossy ? "lossy, shuffled" : "lossless, shuffled");
        }
    }
}

TEST_P(ParallelDeterminism, ShuffleSeedsPreserveInvariantTier)
{
    for (const bool lossy : {false, true}) {
        const Capture base = runOnce(GetParam(), lossy, 8, kFifo);
        for (const int seed : {0, 1, 3}) {
            const Capture shuffled = runOnce(GetParam(), lossy, 8, seed);
            expectInvariantTier(base, shuffled,
                                lossy ? "lossy shuffle seed"
                                      : "lossless shuffle seed");
        }
    }
}

TEST_P(ParallelDeterminism, SpanCsvWidthInvariantPerShuffleSeed)
{
    // The ISSUE 9 gate: the merged span CSV is byte-identical across
    // INC_THREADS {1, 8} at each INC_EQ_SHUFFLE seed {0, 3}, lossless
    // and lossy (InNetwork included), and the blame decomposition is
    // bit-exact in every cell.
    for (const bool lossy : {false, true}) {
        for (const int seed : {0, 3}) {
            SCOPED_TRACE(std::string(lossy ? "lossy" : "lossless") +
                         ", shuffle seed " + std::to_string(seed));
            const Capture serial = runOnce(GetParam(), lossy, 1, seed);
            const Capture wide = runOnce(GetParam(), lossy, 8, seed);
            EXPECT_EQ(serial.spansCsv, wide.spansCsv);
            EXPECT_TRUE(serial.blameExact);
            EXPECT_TRUE(wide.blameExact);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectives, ParallelDeterminism, ::testing::ValuesIn(kAlgorithms),
    [](const ::testing::TestParamInfo<LpAlgorithm> &param) {
        return lpAlgorithmName(param.param);
    });

TEST(ParallelSpans, MultiIterationBlameTimeSeries)
{
    // Three back-to-back iterations on one fabric: every iteration gets
    // its own Iteration/Exchange roots, windows tile [0, finish] with
    // no overlap, and the per-iteration time-series rows stay exact.
    LpFabric fab(fatTreeTopology(kFatTreeK), fabricConfig(false), 8);
    fab.scheduler().clearSameTickShuffle();
    LpCollectiveConfig cc;
    cc.algorithm = LpAlgorithm::InNetwork;
    cc.gradientBytes = kGradient;
    const std::vector<LpAllreduceResult> runs =
        runLpIterations(fab, cc, 3);
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_LT(runs[0].finish, runs[1].finish);
    EXPECT_LT(runs[1].finish, runs[2].finish);

    const CriticalPathReport rep = analyzeCriticalPath(fab.mergedSpans());
    ASSERT_EQ(rep.iterations.size(), 3u);
    EXPECT_TRUE(rep.exact());
    EXPECT_TRUE(rep.chainContains(spans::Kind::SwitchAgg));
    for (size_t i = 0; i < rep.iterations.size(); ++i) {
        EXPECT_EQ(rep.iterations[i].t0,
                  i == 0 ? 0 : runs[i - 1].finish);
        EXPECT_EQ(rep.iterations[i].t1, runs[i].finish);
    }
    const std::string ts = rep.renderTimeSeriesCsv();
    EXPECT_NE(ts.find("iteration,t0,t1,window_ticks,exact,compute"),
              std::string::npos);
    // Header + one row per iteration.
    EXPECT_EQ(static_cast<size_t>(
                  std::count(ts.begin(), ts.end(), '\n')),
              4u);
}

TEST(ParallelSpans, LossyRetransmitOnCriticalPath)
{
    LpFabric fab(fatTreeTopology(kFatTreeK), fabricConfig(true), 8);
    fab.scheduler().clearSameTickShuffle();
    LpCollectiveConfig cc;
    cc.algorithm = LpAlgorithm::Ring;
    cc.gradientBytes = kGradient;
    const LpAllreduceResult r = runLpAllreduce(fab, cc);
    EXPECT_GT(r.retransmittedPackets, 0u);
    const CriticalPathReport rep = analyzeCriticalPath(fab.mergedSpans());
    EXPECT_TRUE(rep.exact());
    EXPECT_GT(rep.totals.get(spans::Blame::Retransmit), 0u);
}

TEST(ParallelDeterminismTotals, DeliveredBytesMatchExchangeAlgebra)
{
    // 16 hosts, gradient G: star and tree move 15 G up + 15 G down;
    // ring moves 2(m-1) chunks of G/m per member = 30 G; hierarchical
    // (groups of 4) moves 24 G in stage-1 rings, 6 G in the leader
    // ring, 12 G in the fan-out = 42 G.
    const uint64_t g = kGradient;
    EXPECT_EQ(runOnce(LpAlgorithm::Star, false, 8, kFifo).deliveredBytes,
              30 * g);
    EXPECT_EQ(runOnce(LpAlgorithm::Ring, false, 8, kFifo).deliveredBytes,
              30 * g);
    EXPECT_EQ(runOnce(LpAlgorithm::Tree, false, 8, kFifo).deliveredBytes,
              30 * g);
    EXPECT_EQ(
        runOnce(LpAlgorithm::HierRing, false, 8, kFifo).deliveredBytes,
        42 * g);
    // In-network: switches fold in place, so host-delivered bytes are
    // just the aggregate reaching the root (G) plus the broadcast to
    // the other 15 hosts — the whole point of switch reduction.
    EXPECT_EQ(
        runOnce(LpAlgorithm::InNetwork, false, 8, kFifo).deliveredBytes,
        16 * g);
}

TEST(ParallelDeterminismTotals, LossyDeliversEveryByteEventually)
{
    Capture c = runOnce(LpAlgorithm::Ring, true, 8, kFifo);
    EXPECT_EQ(c.deliveredBytes, 30 * kGradient);
    EXPECT_GT(c.kindCounts[4], 0u); // at least one retransmission round
}

TEST(ParallelDeterminismAmbient, GlobalPoolMatchesSerialReference)
{
    // The CI matrix drives this test with INC_THREADS in {1, 2, 8} and
    // INC_EQ_SHUFFLE in {0, 1, 3}: width 0 inherits both ambient
    // settings, and every cell must reproduce the in-process serial
    // drain byte for byte (sentinel -2 leaves the ambient shuffle
    // seed in force on both sides).
    for (const LpAlgorithm algo : kAlgorithms) {
        SCOPED_TRACE(lpAlgorithmName(algo));
        for (const bool lossy : {false, true}) {
            const Capture ambient = runOnce(algo, lossy, 0, -2);
            const Capture serial = runOnce(algo, lossy, 1, -2);
            expectIdentical(serial, ambient,
                            lossy ? "lossy ambient" : "lossless ambient");
        }
    }
}

} // namespace
} // namespace inc
