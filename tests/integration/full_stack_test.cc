/**
 * @file
 * Cross-module integration tests: real gradients from real training,
 * through the real codec / burst engines, with the measured ratio
 * driving the packet-level network simulation — the complete INCEPTIONN
 * data path in one test binary.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <filesystem>

#include "comm/inceptionn_api.h"
#include "core/inceptionn.h"
#include "data/synthetic_digits.h"
#include "distrib/func_trainer.h"
#include "distrib/sim_trainer.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "sim/random.h"

namespace inc {
namespace {

/** Train briefly and hand back a live mid-training gradient. */
std::vector<float>
liveGradient()
{
    SyntheticDigits train(1200, 1), test(200, 2);
    FuncTrainerConfig cfg;
    cfg.nodes = 4;
    cfg.batchPerNode = 8;
    cfg.sgd.learningRate = 0.05;
    cfg.sgd.lrDecayEvery = 0;
    cfg.sgd.clipGradNorm = 5.0;
    FuncTrainer t(&buildHdcSmall, train, test, cfg);
    t.captureGradientsAt({12});
    t.train(16);
    return t.gradientTrace().entries().front().gradient;
}

TEST(FullStack, SerializedStreamSurvivesTransport)
{
    const auto grad = liveGradient();
    const InceptionnCodec codec(10);

    // Compress with the hardware model, serialize, "transport",
    // deserialize, expand with the hardware model.
    BurstCompressor comp(codec);
    comp.feed(grad);
    const CompressedStream sent = comp.finish();
    const std::vector<uint8_t> wire = serialize(sent);

    const CompressedStream received = deserialize(wire);
    EXPECT_EQ(received.count, sent.count);
    EXPECT_EQ(received.bytes, sent.bytes);

    BurstDecompressor decomp(codec);
    const std::vector<float> out = decomp.decompress(received);
    ASSERT_EQ(out.size(), grad.size());
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_LE(std::abs(out[i] - grad[i]), codec.errorBound());
}

TEST(FullStack, MeasuredRatioDrivesConsistentNetworkTiming)
{
    const auto grad = liveGradient();
    const InceptionnCodec codec(10);
    const CompressedStream s = encodeStream(codec, grad);
    const double measured_ratio =
        static_cast<double>(grad.size() * 4) /
        static_cast<double>(s.wireBytes());
    ASSERT_GT(measured_ratio, 1.5);

    // Send the equivalent payload across the simulated fabric plain and
    // compressed with the measured ratio; the time saved must match the
    // payload shrinkage (headers and per-packet costs are preserved).
    const uint64_t payload = grad.size() * 4;
    auto timed = [&](uint8_t tos, double ratio) {
        EventQueue events;
        NetworkConfig cfg;
        cfg.nodes = 2;
        cfg.nicConfig.hasCompressionEngine = true;
        Network net(events, cfg);
        double secs = 0;
        net.transfer({0, 1, payload, tos, ratio},
                     [&](Tick t) { secs = toSeconds(t); });
        events.run();
        return secs;
    };
    const double plain = timed(kDefaultTos, 1.0);
    const double comp = timed(kCompressTos, measured_ratio);
    EXPECT_LT(comp, plain);
    // The speedup is below the codec ratio (incompressible overheads)
    // but must exceed half of it for megabyte-class payloads.
    EXPECT_GT(plain / comp, measured_ratio * 0.5);
    EXPECT_LT(plain / comp, measured_ratio);
}

TEST(FullStack, EndToEndTrainingSpeedupWithMeasuredRatio)
{
    // The complete experiment pipeline of bench_fig12, in miniature:
    // measure the real codec ratio on live HDC gradients, then compare
    // WA vs INC+C full-training simulations using it.
    const auto grad = liveGradient();
    const InceptionnCodec codec(10);
    TagHistogram tags;
    codec.measure(grad, &tags);
    const double ratio = tags.compressionRatio();
    ASSERT_GT(ratio, 1.5);

    SimTrainerConfig wa;
    wa.workload = hdcWorkload();
    wa.workers = 4;
    wa.algorithm = ExchangeAlgorithm::WorkerAggregator;
    wa.iterations = 10;
    const double wa_total = runSimTraining(wa).totalSeconds;

    SimTrainerConfig inc_cfg = wa;
    inc_cfg.algorithm = ExchangeAlgorithm::Ring;
    inc_cfg.compressGradients = true;
    inc_cfg.wireRatio = ratio;
    const double inc_total = runSimTraining(inc_cfg).totalSeconds;

    const double speedup = wa_total / inc_total;
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 6.0);
}

TEST(FullStack, CheckpointRecoveryResumesTraining)
{
    // Train, checkpoint, "crash", restore into a fresh process-worth of
    // state, continue training: the restored run must pick up at the
    // checkpointed quality, not from scratch.
    const std::string path = "/tmp/inc_fullstack_ckpt.bin";
    SyntheticDigits train(1600, 1), test(400, 2);
    SoftmaxCrossEntropy loss;
    auto eval = [&](Model &m) {
        std::vector<size_t> idx(test.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        const Batch b = test.batch(idx);
        const Tensor &logits = m.forward(b.x, false);
        loss.forward(logits, b.labels);
        return loss.accuracy();
    };

    double acc_at_ckpt = 0.0;
    {
        Model m = buildHdcSmall();
        Rng rng(5);
        m.init(rng);
        SgdConfig sgd;
        sgd.learningRate = 0.05;
        sgd.lrDecayEvery = 0;
        sgd.clipGradNorm = 5.0;
        SgdOptimizer opt(m, sgd);
        MinibatchSampler sampler(train, 32, 9);
        for (int it = 0; it < 120; ++it) {
            const Batch b = sampler.next();
            m.zeroGrads();
            loss.forward(m.forward(b.x, true), b.labels);
            m.backward(loss.backward());
            opt.step();
        }
        acc_at_ckpt = eval(m);
        ASSERT_TRUE(saveModelParams(m, path));
    } // "crash"

    Model restored = buildHdcSmall();
    ASSERT_TRUE(loadModelParams(restored, path));
    EXPECT_NEAR(eval(restored), acc_at_ckpt, 1e-12);

    // Continue training from the checkpoint: accuracy holds or improves
    // (fresh momentum, modest steps).
    SgdConfig sgd;
    sgd.learningRate = 0.01;
    sgd.lrDecayEvery = 0;
    sgd.clipGradNorm = 5.0;
    SgdOptimizer opt(restored, sgd);
    MinibatchSampler sampler(train, 32, 10);
    for (int it = 0; it < 60; ++it) {
        const Batch b = sampler.next();
        restored.zeroGrads();
        loss.forward(restored.forward(b.x, true), b.labels);
        restored.backward(loss.backward());
        opt.step();
    }
    EXPECT_GE(eval(restored), acc_at_ckpt - 0.05);
    std::filesystem::remove(path);
}

TEST(FullStack, DataParallelSumMatchesBigBatch)
{
    // Correctness of the distributed semantics: N workers on disjoint
    // shards with summed gradients must produce the same update as one
    // model seeing all N batches (same initial weights, lossless
    // exchange, momentum-free single step).
    SyntheticDigits train(640, 5);

    // Distributed step.
    FuncTrainerConfig cfg;
    cfg.nodes = 4;
    cfg.batchPerNode = 16;
    cfg.sgd.learningRate = 0.1;
    cfg.sgd.momentum = 0.0;
    cfg.sgd.weightDecay = 0.0;
    cfg.sgd.lrDecayEvery = 0;
    cfg.seed = 99;
    SyntheticDigits test(64, 6);
    FuncTrainer dist(&buildHdcSmall, train, test, cfg);
    dist.captureGradientsAt({0});
    dist.train(1);

    // The captured node-0 gradient is one shard's contribution; with
    // lossless ring exchange, all replicas hold the same summed
    // gradient and identical weights after one step.
    EXPECT_LT(dist.replicaDivergence(), 1e-6);

    // And the loss decreased versus the shared initialization: run a
    // second step to ensure the update direction is productive.
    const double before = dist.lastMeanLoss();
    dist.train(8);
    EXPECT_LT(dist.lastMeanLoss(), before);
}

} // namespace
} // namespace inc
