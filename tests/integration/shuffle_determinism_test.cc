/**
 * @file
 * Same-tick event-order race detection (DESIGN.md section 11): replay
 * the four collectives — lossless, and lossy over the reliable
 * transport — under several INC_EQ_SHUFFLE seeds, and require the
 * observable outcome to match the FIFO baseline bit-for-bit.
 *
 * The event queue breaks same-tick ties FIFO by default; shuffle mode
 * replaces that with a seed-keyed deterministic permutation. If any
 * simulation result changes under a shuffle seed, some handler depends
 * on *insertion order* among simultaneous events — a latent
 * nondeterminism that FIFO merely hides (analogous to a data race that
 * one particular thread interleaving fails to expose). Running several
 * seeds is the event-ordering equivalent of a TSan matrix.
 *
 * What must ALWAYS hold (any algorithm, any seed): exchange timings,
 * event counts, transport bookkeeping, the metrics snapshot, and the
 * race-erased span multiset are bit-identical to FIFO.
 *
 * Above that baseline each collective is pinned at the strongest
 * invariant it satisfies, with the reason the next-stronger one is
 * unattainable documented at the Tier definition below. These pins are
 * the "documented divergence" half of the detector's contract: if a
 * regression *weakens* a collective's tier, this test fails.
 *
 * CI runs this suite at INC_THREADS 1 and 8: shuffle must commute with
 * the thread-pool determinism contract too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/comm_world.h"
#include "comm/inceptionn_api.h"
#include "net/faults.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/span.h"

namespace inc {
namespace {

constexpr int kWorkers = 8;
constexpr int kGroupSize = 4;
constexpr uint64_t kBytes = 1 * 1000 * 1000;
constexpr uint64_t kNoShuffle = ~0ull;

/**
 * How much of the span stream a collective can keep invariant under
 * same-tick shuffling, strongest first. Every tier also implies all
 * weaker tiers, and the non-span observables (timings, metrics, event
 * counts) are required at every tier.
 */
enum class Tier {
    /** Raw emission-order CSV is bit-identical. Star achieves this:
     *  every same-tick group serializes through the aggregator, so
     *  firing order never even renumbers the stream. */
    RawStream,
    /** Ancestry-canonical CSV (renderCanonicalCsv) is bit-identical:
     *  the DAG is the same, only emission numbering permutes. Ring
     *  achieves this — simultaneous per-neighbor deliveries renumber
     *  the stream but never change content or causality. */
    CanonicalStream,
    /** The multiset of span *contents* (kind, blame, host, t0, t1,
     *  name — ancestry erased) is identical. Hier-ring sits here:
     *  which of several simultaneous arrivals gets recorded as the
     *  causal predecessor of the next phase is a tie that follows
     *  firing order, but no span's own extent changes. */
    ContentMultiset,
    /** ContentMultiset after anonymizing the sender of Message spans.
     *  Tree sits here: both group aggregators send their partials to
     *  the root at the same tick and race for the root's downlink.
     *  Which contender wins the link is a genuine same-tick tie that
     *  FIFO resolves by insertion order — the two Message spans swap
     *  arrival slots, everything else (including the root's sum, which
     *  is bit-exact either way per the equivalence suite) is
     *  unaffected. */
    RaceErasedMultiset,
};

Tier
tierFor(CollectiveAlgorithm algo)
{
    switch (algo) {
      case CollectiveAlgorithm::WorkerAggregator:
        return Tier::RawStream;
      case CollectiveAlgorithm::Ring:
        return Tier::CanonicalStream;
      case CollectiveAlgorithm::HierRing:
        return Tier::ContentMultiset;
      case CollectiveAlgorithm::Tree:
        return Tier::RaceErasedMultiset;
    }
    return Tier::RaceErasedMultiset;
}

/** Everything observable about one simulated exchange. */
struct Capture
{
    std::string spanCsv;          ///< raw (emission-order) stream
    std::string spanCanonicalCsv; ///< ancestry-canonical stream
    std::string metricsJson;
    Tick start = 0;
    Tick finish = 0;
    uint64_t retransmits = 0;
    uint64_t dropped = 0;
    uint64_t eventsExecuted = 0;
};

/**
 * Sorted multiset of span contents from a raw CSV: drops the id /
 * parent / cause columns; with @p eraseMessageContender also hides
 * which endpoint a Message span belongs to (host and name), leaving
 * only its extent — the link-race eraser for Tier::RaceErasedMultiset.
 */
std::string
contentMultiset(const std::string &csv, bool eraseMessageContender)
{
    std::istringstream in(csv);
    std::string line;
    std::getline(in, line); // header
    std::vector<std::string> lines;
    while (std::getline(in, line)) {
        // id,parent,cause,kind,blame,host,t0,t1,name
        std::vector<std::string> f;
        size_t pos = 0;
        for (int i = 0; i < 8; ++i) {
            const size_t c = line.find(',', pos);
            f.push_back(line.substr(pos, c - pos));
            pos = c + 1;
        }
        f.push_back(line.substr(pos));
        const bool erase = eraseMessageContender && f[3] == "message";
        lines.push_back(f[3] + "," + f[4] + "," + (erase ? "*" : f[5]) +
                        "," + f[6] + "," + f[7] + "," +
                        (erase ? "*" : f[8]));
    }
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

Capture
runOnce(CollectiveAlgorithm algo, bool faults, uint64_t shuffleSeed)
{
    CollectiveCall call;
    call.algorithm = algo;
    call.gradientBytes = kBytes;
    call.workers = kWorkers;
    call.groupSize = kGroupSize;

    spans::reset();
    spans::setEnabled(true);
    metrics::reset();
    metrics::setEnabled(true);

    EventQueue events;
    if (shuffleSeed != kNoShuffle)
        events.setSameTickShuffle(shuffleSeed);
    else
        events.clearSameTickShuffle(); // immune to ambient INC_EQ_SHUFFLE

    NetworkConfig cfg;
    cfg.nodes = nodesRequired(call);
    Network net(events, cfg);

    FaultConfig fc;
    std::unique_ptr<FaultModel> model;
    TransportOptions transport;
    if (faults) {
        fc.defaultLink.loss = LossKind::Bernoulli;
        fc.defaultLink.lossRate = 0.02;
        model = std::make_unique<FaultModel>(fc);
        net.attachFaults(model.get());
        transport.reliable = true;
    }
    CommWorld comm(net, transport);

    Capture cap;
    bool done = false;
    events.schedule(0, [&] {
        collecCommAllReduce(comm, call, [&](ExchangeResult r) {
            cap.start = r.start;
            cap.finish = r.finish;
            cap.retransmits = r.retransmits;
            cap.dropped = r.packetsDropped;
            done = true;
        });
    });
    events.run();
    EXPECT_TRUE(done);

    cap.eventsExecuted = events.executed();
    cap.spanCsv = spans::global().renderCsv();
    cap.spanCanonicalCsv = spans::global().renderCanonicalCsv();
    cap.metricsJson = metrics::global().renderJson();
    EXPECT_EQ(spans::global().openCount(), 0u);

    spans::setEnabled(false);
    spans::reset();
    metrics::setEnabled(false);
    metrics::reset();
    return cap;
}

void
expectIdentical(const Capture &base, const Capture &got, Tier tier,
                const char *label, uint64_t seed)
{
    // Non-span observables: required at every tier.
    EXPECT_EQ(base.start, got.start) << label << " seed=" << seed;
    EXPECT_EQ(base.finish, got.finish) << label << " seed=" << seed;
    EXPECT_EQ(base.retransmits, got.retransmits)
        << label << " seed=" << seed;
    EXPECT_EQ(base.dropped, got.dropped) << label << " seed=" << seed;
    EXPECT_EQ(base.eventsExecuted, got.eventsExecuted)
        << label << " seed=" << seed;
    EXPECT_EQ(base.metricsJson, got.metricsJson)
        << label << " seed=" << seed << ": metrics snapshot diverged";
    EXPECT_EQ(std::count(base.spanCsv.begin(), base.spanCsv.end(), '\n'),
              std::count(got.spanCsv.begin(), got.spanCsv.end(), '\n'))
        << label << " seed=" << seed << ": span count changed";

    // The weakest span invariant: required at every tier.
    EXPECT_EQ(contentMultiset(base.spanCsv, true),
              contentMultiset(got.spanCsv, true))
        << label << " seed=" << seed
        << ": race-erased span multiset diverged — a handler depends "
           "on same-tick insertion order beyond the pinned link race";

    if (tier <= Tier::ContentMultiset) {
        EXPECT_EQ(contentMultiset(base.spanCsv, false),
                  contentMultiset(got.spanCsv, false))
            << label << " seed=" << seed
            << ": span content multiset diverged";
    }
    if (tier <= Tier::CanonicalStream) {
        EXPECT_EQ(base.spanCanonicalCsv, got.spanCanonicalCsv)
            << label << " seed=" << seed
            << ": canonical span stream diverged";
    }
    if (tier <= Tier::RawStream) {
        EXPECT_EQ(base.spanCsv, got.spanCsv)
            << label << " seed=" << seed
            << ": raw span stream diverged";
    }
}

class ShuffleDeterminism
    : public ::testing::TestWithParam<CollectiveAlgorithm>
{
};

/** Lossless fabric, FIFO vs three shuffle seeds. */
TEST_P(ShuffleDeterminism, LosslessCollectiveIsSameTickCommutative)
{
    const Capture base = runOnce(GetParam(), /*faults=*/false, kNoShuffle);
    EXPECT_GT(base.finish, base.start);
    EXPECT_FALSE(base.spanCsv.empty());
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        const Capture got = runOnce(GetParam(), false, seed);
        expectIdentical(base, got, tierFor(GetParam()), "lossless",
                        seed);
    }
}

/** Lossy fabric over the reliable transport: loss draws, retransmits
 *  and RTO bookkeeping must not depend on same-tick insertion order. */
TEST_P(ShuffleDeterminism, LossyReliableRunIsSameTickCommutative)
{
    const Capture base = runOnce(GetParam(), /*faults=*/true, kNoShuffle);
    EXPECT_GT(base.finish, base.start);
    EXPECT_GT(base.dropped, 0u);
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        const Capture got = runOnce(GetParam(), true, seed);
        expectIdentical(base, got, tierFor(GetParam()), "lossy", seed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ShuffleDeterminism,
    ::testing::Values(CollectiveAlgorithm::WorkerAggregator,
                      CollectiveAlgorithm::Ring,
                      CollectiveAlgorithm::Tree,
                      CollectiveAlgorithm::HierRing),
    [](const auto &info) {
        switch (info.param) {
          case CollectiveAlgorithm::WorkerAggregator: return "star";
          case CollectiveAlgorithm::Ring: return "ring";
          case CollectiveAlgorithm::Tree: return "tree";
          case CollectiveAlgorithm::HierRing: return "hier_ring";
        }
        return "unknown";
    });

} // namespace
} // namespace inc
