#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"
#include "sim/thread_pool.h"

namespace inc {
namespace {

/** Naive reference GEMM for validation. */
void
referenceGemm(Trans ta, Trans tb, size_t m, size_t n, size_t k, float alpha,
              const float *a, size_t lda, const float *b, size_t ldb,
              float beta, float *c, size_t ldc)
{
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p) {
                const float av =
                    ta == Trans::No ? a[i * lda + p] : a[p * lda + i];
                const float bv =
                    tb == Trans::No ? b[p * ldb + j] : b[j * ldb + p];
                acc += static_cast<double>(av) * bv;
            }
            c[i * ldc + j] = static_cast<float>(
                alpha * acc + beta * c[i * ldc + j]);
        }
    }
}

class GemmParam
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>>
{
};

TEST_P(GemmParam, MatchesReference)
{
    const auto [mi, ni, ki, tai, tbi] = GetParam();
    const size_t m = static_cast<size_t>(mi), n = static_cast<size_t>(ni),
                 k = static_cast<size_t>(ki);
    const Trans ta = tai ? Trans::Yes : Trans::No;
    const Trans tb = tbi ? Trans::Yes : Trans::No;
    const size_t lda = ta == Trans::No ? k : m;
    const size_t ldb = tb == Trans::No ? n : k;

    Rng rng(static_cast<uint64_t>(mi * 1000 + ni * 100 + ki * 10 + tai * 2 +
                                  tbi));
    std::vector<float> a(m * k), b(k * n), c(m * n), cref;
    for (auto &v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto &v : b)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto &v : c)
        v = static_cast<float>(rng.uniform(-1, 1));
    cref = c;

    gemm(ta, tb, m, n, k, 0.7f, a.data(), lda, b.data(), ldb, 0.3f,
         c.data(), n);
    referenceGemm(ta, tb, m, n, k, 0.7f, a.data(), lda, b.data(), ldb,
                  0.3f, cref.data(), n);

    for (size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], cref[i], 1e-3f) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParam,
    ::testing::Values(std::make_tuple(1, 1, 1, 0, 0),
                      std::make_tuple(3, 5, 7, 0, 0),
                      std::make_tuple(3, 5, 7, 1, 0),
                      std::make_tuple(3, 5, 7, 0, 1),
                      std::make_tuple(3, 5, 7, 1, 1),
                      std::make_tuple(33, 65, 70, 0, 0),
                      std::make_tuple(64, 64, 64, 1, 1),
                      std::make_tuple(100, 1, 200, 0, 1),
                      std::make_tuple(1, 128, 64, 1, 0),
                      std::make_tuple(37, 41, 129, 0, 0)));

TEST(Gemm, MatmulConvenience)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    const float a[] = {1, 2, 3, 4};
    const float b[] = {5, 6, 7, 8};
    float c[4];
    matmul(a, b, c, 2, 2, 2);
    EXPECT_FLOAT_EQ(c[0], 19.0f);
    EXPECT_FLOAT_EQ(c[1], 22.0f);
    EXPECT_FLOAT_EQ(c[2], 43.0f);
    EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Gemm, BetaZeroIgnoresGarbage)
{
    const float a[] = {1, 0, 0, 1};
    const float b[] = {2, 3, 4, 5};
    float c[4] = {1e30f, -1e30f, 1e30f, -1e30f};
    gemm(Trans::No, Trans::No, 2, 2, 2, 1.0f, a, 2, b, 2, 0.0f, c, 2);
    EXPECT_FLOAT_EQ(c[0], 2.0f);
    EXPECT_FLOAT_EQ(c[3], 5.0f);
}

TEST(Gemm, BitIdenticalAcrossThreadCounts)
{
    struct ThreadCountGuard
    {
        ~ThreadCountGuard() { setGlobalThreadCount(0); }
    } guard;

    // Big enough to span many M-blocks and clear the parallel
    // threshold, with both transposes and a nontrivial alpha/beta.
    const size_t m = 173, n = 91, k = 130;
    Rng rng(99);
    std::vector<float> a(m * k), b(k * n), c0(m * n);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    for (auto &v : c0)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));

    auto run = [&](int threads, Trans ta, Trans tb) {
        setGlobalThreadCount(threads);
        std::vector<float> c = c0;
        const size_t lda = ta == Trans::No ? k : m;
        const size_t ldb = tb == Trans::No ? n : k;
        gemm(ta, tb, m, n, k, 1.25f, a.data(), lda, b.data(), ldb, 0.5f,
             c.data(), n);
        return c;
    };

    for (const Trans ta : {Trans::No, Trans::Yes}) {
        for (const Trans tb : {Trans::No, Trans::Yes}) {
            const auto serial = run(1, ta, tb);
            ASSERT_EQ(serial, run(2, ta, tb));
            ASSERT_EQ(serial, run(8, ta, tb));
        }
    }
}

} // namespace
} // namespace inc
