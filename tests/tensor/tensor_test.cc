#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace inc {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.numel(), 0u);
    EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeAndNumel)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.numel(), 24u);
    EXPECT_EQ(t.dim(1), 3u);
    EXPECT_EQ(t.shapeString(), "[2x3x4]");
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({5, 5});
    for (float v : t.data())
        EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, TwoDAccess)
{
    Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);
    EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, FourDAccessRowMajor)
{
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 9.0f;
    EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, FillAndSum)
{
    Tensor t({10});
    t.fill(0.5f);
    EXPECT_DOUBLE_EQ(t.sum(), 5.0);
}

TEST(Tensor, FillGaussianStats)
{
    Tensor t({10000});
    Rng rng(3);
    t.fillGaussian(rng, 2.0f);
    EXPECT_NEAR(t.sum() / 10000.0, 0.0, 0.1);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    t[7] = 3.0f;
    t.reshape({3, 4});
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.dim(0), 3u);
    EXPECT_EQ(t[7], 3.0f);
}

TEST(Tensor, CopyIsDeep)
{
    Tensor a({4});
    a.fill(1.0f);
    Tensor b = a;
    b[0] = 5.0f;
    EXPECT_EQ(a[0], 1.0f);
}

} // namespace
} // namespace inc
