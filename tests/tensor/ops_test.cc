#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"

namespace inc {
namespace {

TEST(ConvGeom, OutputDims)
{
    const ConvGeom g{3, 32, 32, 3, 1, 1};
    EXPECT_EQ(g.outH(), 32u);
    EXPECT_EQ(g.outW(), 32u);
    EXPECT_EQ(g.patchSize(), 27u);

    const ConvGeom s2{16, 32, 32, 3, 2, 1};
    EXPECT_EQ(s2.outH(), 16u);

    const ConvGeom k1{16, 32, 32, 1, 2, 0};
    EXPECT_EQ(k1.outH(), 16u);
}

TEST(Im2Col, IdentityKernelIsCopy)
{
    // 1x1 kernel, stride 1, no pad: columns == image.
    const ConvGeom g{2, 3, 3, 1, 1, 0};
    std::vector<float> img(2 * 9);
    for (size_t i = 0; i < img.size(); ++i)
        img[i] = static_cast<float>(i);
    std::vector<float> cols(g.patchSize() * g.outH() * g.outW());
    im2col(img.data(), g, cols.data());
    EXPECT_EQ(cols, img);
}

TEST(Im2Col, PaddingReadsZero)
{
    const ConvGeom g{1, 2, 2, 3, 1, 1};
    std::vector<float> img{1, 2, 3, 4};
    std::vector<float> cols(g.patchSize() * g.outH() * g.outW());
    im2col(img.data(), g, cols.data());
    // Patch row 0 (ky=0, kx=0) at output (0,0) hits input (-1,-1) -> 0.
    EXPECT_EQ(cols[0], 0.0f);
    // Patch row 4 (ky=1, kx=1) is the center: equals the image itself.
    EXPECT_EQ(cols[4 * 4 + 0], 1.0f);
    EXPECT_EQ(cols[4 * 4 + 3], 4.0f);
}

TEST(Col2Im, IsAdjointOfIm2Col)
{
    // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
    // property that makes the conv backward pass correct.
    const ConvGeom g{3, 8, 8, 3, 2, 1};
    Rng rng(5);
    const size_t img_sz = 3 * 8 * 8;
    const size_t col_sz = g.patchSize() * g.outH() * g.outW();
    std::vector<float> x(img_sz), y(col_sz), ax(col_sz), aty(img_sz);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto &v : y)
        v = static_cast<float>(rng.uniform(-1, 1));
    im2col(x.data(), g, ax.data());
    col2im(y.data(), g, aty.data());
    double lhs = 0, rhs = 0;
    for (size_t i = 0; i < col_sz; ++i)
        lhs += static_cast<double>(ax[i]) * y[i];
    for (size_t i = 0; i < img_sz; ++i)
        rhs += static_cast<double>(x[i]) * aty[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Relu, ForwardClampsNegatives)
{
    const std::vector<float> x{-1.0f, 0.0f, 2.5f};
    std::vector<float> y(3);
    reluForward(x, y);
    EXPECT_EQ(y, (std::vector<float>{0.0f, 0.0f, 2.5f}));
}

TEST(Relu, BackwardMasksByInput)
{
    const std::vector<float> x{-1.0f, 0.5f, 0.0f};
    const std::vector<float> dy{10.0f, 20.0f, 30.0f};
    std::vector<float> dx(3);
    reluBackward(x, dy, dx);
    EXPECT_EQ(dx, (std::vector<float>{0.0f, 20.0f, 0.0f}));
}

TEST(Softmax, RowsSumToOne)
{
    Rng rng(6);
    const size_t rows = 7, cols = 11;
    std::vector<float> x(rows * cols), y(rows * cols);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(-5, 5));
    softmaxRows(x.data(), y.data(), rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        double s = 0;
        for (size_t c = 0; c < cols; ++c) {
            s += y[r * cols + c];
            EXPECT_GT(y[r * cols + c], 0.0f);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Softmax, StableForLargeLogits)
{
    const std::vector<float> x{1000.0f, 1001.0f};
    std::vector<float> y(2);
    softmaxRows(x.data(), y.data(), 1, 2);
    EXPECT_FALSE(std::isnan(y[0]));
    EXPECT_NEAR(y[1] / y[0], std::exp(1.0f), 1e-3);
}

TEST(Bias, AddAndGradAreAdjoint)
{
    const size_t rows = 3, cols = 4;
    std::vector<float> x(rows * cols, 0.0f);
    const std::vector<float> bias{1, 2, 3, 4};
    addRowBias(x.data(), bias.data(), rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            EXPECT_EQ(x[r * cols + c], bias[c]);

    std::vector<float> db(cols, 0.0f);
    rowBiasGrad(x.data(), db.data(), rows, cols);
    for (size_t c = 0; c < cols; ++c)
        EXPECT_EQ(db[c], 3.0f * bias[c]);
}

TEST(Axpy, Accumulates)
{
    const std::vector<float> x{1, 2, 3};
    std::vector<float> y{10, 20, 30};
    axpy(2.0f, x, y);
    EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
}

TEST(SquaredNorm, Basic)
{
    const std::vector<float> x{3, 4};
    EXPECT_DOUBLE_EQ(squaredNorm(x), 25.0);
}

} // namespace
} // namespace inc
