#include <gtest/gtest.h>

#include "net/network.h"

#include "comm/analytical.h"
#include "comm/comm_world.h"
#include "comm/ring_allreduce.h"
#include "comm/star_allreduce.h"
#include "comm/tree_allreduce.h"

namespace inc {
namespace {

constexpr uint64_t kMB = 1000 * 1000;

NetworkConfig
clusterConfig(int nodes, bool engines = false)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.nicConfig.hasCompressionEngine = engines;
    return cfg;
}

StarConfig
starOf(int workers, uint64_t bytes)
{
    StarConfig cfg;
    cfg.gradientBytes = bytes;
    cfg.aggregator = workers; // last rank aggregates
    for (int i = 0; i < workers; ++i)
        cfg.workers.push_back(i);
    return cfg;
}

TEST(CommWorld, SendThenRecv)
{
    EventQueue events;
    Network net(events, clusterConfig(2));
    CommWorld comm(net);
    Tick got = 0;
    comm.send(0, 1, 7, 1460);
    comm.recv(1, 0, 7, [&](Tick t) { got = t; });
    events.run();
    EXPECT_GT(got, 0u);
}

TEST(CommWorld, RecvBeforeSend)
{
    EventQueue events;
    Network net(events, clusterConfig(2));
    CommWorld comm(net);
    Tick got = 0;
    comm.recv(1, 0, 7, [&](Tick t) { got = t; });
    comm.send(0, 1, 7, 1460);
    events.run();
    EXPECT_GT(got, 0u);
}

TEST(CommWorld, TagsMatchIndependentOfRecvOrder)
{
    // Two messages on the same path: FIFO links deliver the first-sent
    // first (head-of-line), and tag matching routes each to the right
    // handler even when the receives are posted in the other order.
    EventQueue events;
    Network net(events, clusterConfig(2));
    CommWorld comm(net);
    int order = 0, got_a = 0, got_b = 0;
    comm.send(0, 1, 1, 146000);
    comm.send(0, 1, 2, 1460); // queues behind the big tag-1 message
    comm.recv(1, 0, 2, [&](Tick) { got_b = ++order; });
    comm.recv(1, 0, 1, [&](Tick) { got_a = ++order; });
    events.run();
    EXPECT_EQ(got_a, 1);
    EXPECT_EQ(got_b, 2);
}

TEST(StarAllReduce, CompletesAndScalesWithWorkers)
{
    auto run = [](int workers) {
        EventQueue events;
        Network net(events, clusterConfig(workers + 1));
        CommWorld comm(net);
        ExchangeResult result{};
        bool done = false;
        events.schedule(0, [&] {
            runStarAllReduce(comm, starOf(workers, 50 * kMB),
                             [&](ExchangeResult r) {
                                 result = r;
                                 done = true;
                             });
        });
        events.run();
        EXPECT_TRUE(done);
        return result.seconds();
    };
    const double t4 = run(4);
    const double t8 = run(8);
    // Aggregator link serializes p streams each way: time ~ linear in p.
    EXPECT_NEAR(t8 / t4, 2.0, 0.3);
}

TEST(StarAllReduce, MatchesAnalyticalModelShape)
{
    const uint64_t n = 100 * kMB;
    EventQueue events;
    Network net(events, clusterConfig(5));
    CommWorld comm(net);
    double measured = 0;
    events.schedule(0, [&] {
        runStarAllReduce(comm, starOf(4, n),
                         [&](ExchangeResult r) { measured = r.seconds(); });
    });
    events.run();

    CostModelParams m;
    // Effective per-byte time includes header overhead (~4%).
    m.beta = 8.0e-10 * 1.04;
    m.gamma = 1e-10;
    // The flat star serializes p streams in and p out at the aggregator:
    // 2 p n b + (p-1) n g; the analytical WA formula's (p + log p) term
    // assumes the up and down legs do not overlap end-to-end. Within 2x
    // either way is the sanity bar here; exact shape tests live in the
    // Fig. 15 bench.
    const double predicted = waExchangeSeconds(4, n, m);
    EXPECT_GT(measured, predicted * 0.5);
    EXPECT_LT(measured, predicted * 2.0);
}

TEST(RingAllReduce, StaysFlatWithNodesForLargeModels)
{
    auto run = [](int nodes, uint64_t bytes) {
        EventQueue events;
        Network net(events, clusterConfig(nodes));
        CommWorld comm(net);
        RingConfig cfg;
        cfg.gradientBytes = bytes;
        double secs = 0;
        events.schedule(0, [&] {
            runRingAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
        EXPECT_GT(secs, 0.0);
        return secs;
    };
    // Paper Fig. 15: ring exchange time is ~constant in cluster size
    // "especially when training larger models such as AlexNet" —
    // bandwidth dominates the per-step software overhead.
    const double big4 = run(4, 250 * kMB);
    const double big8 = run(8, 250 * kMB);
    EXPECT_NEAR(big8 / big4, 1.0, 0.25);
    // A small model (HDC class) grows visibly with the step count: more
    // per-message overheads per exchange.
    const double small4 = run(4, 4 * kMB);
    const double small8 = run(8, 4 * kMB);
    EXPECT_GT(small8 / small4, 1.2);
}

TEST(RingAllReduce, BeatsStarOnSameCluster)
{
    const uint64_t n = 100 * kMB;

    EventQueue ev1;
    Network net1(ev1, clusterConfig(5));
    CommWorld comm1(net1);
    double star_secs = 0;
    ev1.schedule(0, [&] {
        runStarAllReduce(comm1, starOf(4, n),
                         [&](ExchangeResult r) { star_secs = r.seconds(); });
    });
    ev1.run();

    EventQueue ev2;
    Network net2(ev2, clusterConfig(4));
    CommWorld comm2(net2);
    RingConfig rcfg;
    rcfg.gradientBytes = n;
    double ring_secs = 0;
    ev2.schedule(0, [&] {
        runRingAllReduce(comm2, rcfg,
                         [&](ExchangeResult r) { ring_secs = r.seconds(); });
    });
    ev2.run();

    // Paper Fig. 12: INC cuts exchange time substantially vs WA.
    EXPECT_LT(ring_secs, star_secs * 0.6);
}

TEST(RingAllReduce, CompressionHelpsBothLegs)
{
    const uint64_t n = 100 * kMB;
    auto run = [&](bool compress) {
        EventQueue events;
        Network net(events, clusterConfig(4, /*engines=*/true));
        CommWorld comm(net);
        RingConfig cfg;
        cfg.gradientBytes = n;
        cfg.compressGradients = compress;
        cfg.wireRatio = 10.0;
        double secs = 0;
        events.schedule(0, [&] {
            runRingAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
        return secs;
    };
    const double plain = run(false);
    const double comp = run(true);
    EXPECT_LT(comp, plain * 0.5);
    EXPECT_GT(comp, plain * 0.08); // headers etc. remain
}

TEST(StarAllReduce, CompressionHelpsOnlyGradientLeg)
{
    const uint64_t n = 100 * kMB;
    auto run = [&](bool compress) {
        EventQueue events;
        Network net(events, clusterConfig(5, /*engines=*/true));
        CommWorld comm(net);
        StarConfig cfg = starOf(4, n);
        cfg.compressGradients = compress;
        cfg.wireRatio = 10.0;
        double secs = 0;
        events.schedule(0, [&] {
            runStarAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
        return secs;
    };
    const double plain = run(false);
    const double comp = run(true);
    // Paper Sec. VIII-A: WA+C only reduces communication ~31%, because
    // the weight leg cannot be compressed.
    EXPECT_LT(comp, plain * 0.85);
    EXPECT_GT(comp, plain * 0.40);
}

TEST(TreeAllReduce, CompletesTwoLevels)
{
    // 8 workers in 2 groups + 2 group aggregators + 1 root = 11 nodes.
    EventQueue events;
    Network net(events, clusterConfig(11));
    CommWorld comm(net);
    TreeConfig cfg;
    cfg.gradientBytes = 20 * kMB;
    cfg.root = 10;
    cfg.groups.push_back(TreeGroup{8, {0, 1, 2, 3}});
    cfg.groups.push_back(TreeGroup{9, {4, 5, 6, 7}});
    double secs = 0;
    events.schedule(0, [&] {
        runTreeAllReduce(comm, cfg,
                         [&](ExchangeResult r) { secs = r.seconds(); });
    });
    events.run();
    EXPECT_GT(secs, 0.0);
}

TEST(TreeAllReduce, BeatsFlatStarAtScale)
{
    const uint64_t n = 20 * kMB;
    const int workers = 8;

    EventQueue ev1;
    Network net1(ev1, clusterConfig(workers + 1));
    CommWorld comm1(net1);
    double star_secs = 0;
    ev1.schedule(0, [&] {
        runStarAllReduce(comm1, starOf(workers, n),
                         [&](ExchangeResult r) { star_secs = r.seconds(); });
    });
    ev1.run();

    EventQueue ev2;
    Network net2(ev2, clusterConfig(workers + 3));
    CommWorld comm2(net2);
    TreeConfig cfg;
    cfg.gradientBytes = n;
    cfg.root = workers + 2;
    cfg.groups.push_back(TreeGroup{workers, {0, 1, 2, 3}});
    cfg.groups.push_back(TreeGroup{workers + 1, {4, 5, 6, 7}});
    double tree_secs = 0;
    ev2.schedule(0, [&] {
        runTreeAllReduce(comm2, cfg,
                         [&](ExchangeResult r) { tree_secs = r.seconds(); });
    });
    ev2.run();

    // The hierarchy halves the fan-in at every hot link.
    EXPECT_LT(tree_secs, star_secs);
}

TEST(Analytical, RingBeatsWaAndIsScaleFree)
{
    CostModelParams m;
    const uint64_t n = 233 * kMB;
    const double wa4 = waExchangeSeconds(4, n, m);
    const double wa8 = waExchangeSeconds(8, n, m);
    const double ring4 = ringExchangeSeconds(4, n, m);
    const double ring8 = ringExchangeSeconds(8, n, m);
    EXPECT_LT(ring4, wa4);
    // WA grows ~linearly; ring is flat.
    EXPECT_GT(wa8 / wa4, 1.5);
    // (p-1)/p creeps from 0.75 to 0.875: "almost constant".
    EXPECT_NEAR(ring8 / ring4, 1.0, 0.2);
}

} // namespace
} // namespace inc
