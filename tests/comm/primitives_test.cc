#include "comm/primitives.h"

#include "comm/star_allreduce.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/network.h"

namespace inc {
namespace {

constexpr uint64_t kMB = 1000 * 1000;

NetworkConfig
cluster(int nodes, bool engines = false)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.nicConfig.hasCompressionEngine = engines;
    return cfg;
}

double
broadcastSeconds(int nodes, uint64_t bytes, bool compress = false,
                 double ratio = 1.0, int root = 0)
{
    EventQueue events;
    Network net(events, cluster(nodes, compress));
    CommWorld comm(net);
    BroadcastConfig cfg;
    cfg.gradientBytes = bytes;
    cfg.compressGradients = compress;
    cfg.wireRatio = ratio;
    cfg.root = root;
    double secs = -1;
    events.schedule(0, [&] {
        runBroadcast(comm, cfg,
                     [&](ExchangeResult r) { secs = r.seconds(); });
    });
    events.run();
    EXPECT_GT(secs, 0.0);
    return secs;
}

TEST(Broadcast, CompletesForVariousSizes)
{
    for (int nodes : {2, 3, 4, 5, 8, 13}) {
        EXPECT_GT(broadcastSeconds(nodes, 5 * kMB), 0.0)
            << nodes << " nodes";
    }
}

TEST(Broadcast, NonZeroRootWorks)
{
    EXPECT_GT(broadcastSeconds(6, 5 * kMB, false, 1.0, /*root=*/3), 0.0);
}

TEST(Broadcast, ScalesLogarithmically)
{
    // Binomial tree: doubling the cluster adds ~one serialization round,
    // not a linear fan-out.
    const double t4 = broadcastSeconds(4, 50 * kMB);
    const double t8 = broadcastSeconds(8, 50 * kMB);
    const double t16 = broadcastSeconds(16, 50 * kMB);
    EXPECT_NEAR(t8 - t4, t16 - t8, 0.35 * (t8 - t4) + 1e-4);
    // And it beats a sequential root fan-out (p-1 serializations).
    const double serial_estimate = 15.0 * 50.0 * kMB * 8 / 10e9;
    EXPECT_LT(t16, serial_estimate * 0.6);
}

TEST(Broadcast, CompressionHelps)
{
    const double plain = broadcastSeconds(8, 50 * kMB, false);
    const double comp = broadcastSeconds(8, 50 * kMB, true, 8.0);
    EXPECT_LT(comp, plain * 0.6);
}

TEST(Barrier, CompletesQuicklyForAllSizes)
{
    for (int nodes : {2, 3, 4, 7, 8, 16}) {
        EventQueue events;
        Network net(events, cluster(nodes));
        CommWorld comm(net);
        BarrierConfig cfg;
        cfg.perMessageOverhead = 0; // isolate the wire cost
        double secs = -1;
        events.schedule(0, [&] {
            runBarrier(comm, cfg,
                       [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
        ASSERT_GT(secs, 0.0) << nodes;
        // log2(p) rounds of single-packet messages: well under a
        // millisecond.
        EXPECT_LT(secs, 1e-3) << nodes;
    }
}

TEST(StarAblation, TreeBroadcastWeightsBeatsFanOutAtScale)
{
    auto star = [](bool tree) {
        const int workers = 8;
        EventQueue events;
        Network net(events, cluster(workers + 1));
        CommWorld comm(net);
        StarConfig cfg;
        cfg.gradientBytes = 50 * kMB;
        cfg.aggregator = workers;
        for (int i = 0; i < workers; ++i)
            cfg.workers.push_back(i);
        cfg.treeBroadcastWeights = tree;
        double secs = -1;
        events.schedule(0, [&] {
            runStarAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
        EXPECT_GT(secs, 0.0);
        return secs;
    };
    const double fan_out = star(false);
    const double tree = star(true);
    // The tree relieves the weight leg (p serializations -> ~log p)...
    EXPECT_LT(tree, fan_out);
    // ...but the fan-in gradient leg still serializes p streams, so the
    // total improves by well under 2x.
    EXPECT_GT(tree, fan_out * 0.55);
}

TEST(Barrier, RoundsGrowLogarithmically)
{
    auto secs = [](int nodes) {
        EventQueue events;
        Network net(events, cluster(nodes));
        CommWorld comm(net);
        BarrierConfig cfg;
        cfg.perMessageOverhead = 0;
        double s = -1;
        events.schedule(0, [&] {
            runBarrier(comm, cfg,
                       [&](ExchangeResult r) { s = r.seconds(); });
        });
        events.run();
        return s;
    };
    // 4 nodes: 2 rounds; 16 nodes: 4 rounds — about twice the time.
    EXPECT_NEAR(secs(16) / secs(4), 2.0, 0.7);
}

} // namespace
} // namespace inc
