/**
 * @file
 * In-network aggregation tests (comm/innet_collectives.h), covering
 * all three planes:
 *  - the reduction tree over star/fat-tree/dragonfly graphs (a tree,
 *    all hosts participate, children ascending = stable merge order);
 *  - the value plane: with dyadic-rational gradients the switch-fold
 *    order is bit-identical to any host-side summation order;
 *  - the serial star plane: completion, engine accounting, slot
 *    contention, reproducibility, and critical-path attribution
 *    (SwitchAgg blame must be visible to the walker);
 *  - the LP plane: engine counters and kind-5 trace records flow
 *    through the merged snapshots.
 */

#include "comm/innet_collectives.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "comm/lp_collectives.h"
#include "net/lp_fabric.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/random.h"
#include "sim/span.h"
#include "stats/critical_path.h"

namespace inc {
namespace {

void
expectTreeInvariants(const Topology &t, const ReductionTree &tree)
{
    const size_t n = static_cast<size_t>(t.nodeCount());
    ASSERT_EQ(tree.parent.size(), n);
    ASSERT_EQ(tree.children.size(), n);
    ASSERT_FALSE(t.isSwitch(tree.root));

    // Every host participates and its parent chain reaches the root
    // without cycling (at most nodeCount steps).
    for (int h = 0; h < t.hosts; ++h) {
        EXPECT_TRUE(tree.participates(h)) << t.name << " host " << h;
        int node = h, steps = 0;
        while (node != tree.root && steps <= t.nodeCount()) {
            node = tree.parent[static_cast<size_t>(node)];
            ASSERT_GE(node, 0);
            ++steps;
        }
        EXPECT_EQ(node, tree.root) << t.name << " host " << h;
    }

    size_t edges = 0, participants = 0;
    for (int node = 0; node < t.nodeCount(); ++node) {
        const auto &kids = tree.children[static_cast<size_t>(node)];
        if (!tree.participates(node)) {
            EXPECT_TRUE(kids.empty());
            continue;
        }
        ++participants;
        for (size_t i = 0; i < kids.size(); ++i) {
            // Child lists are the merge order: strictly ascending, and
            // each parent/child pair is consistent and wired in the
            // physical graph (one hop apart).
            if (i > 0) {
                EXPECT_LT(kids[i - 1], kids[i]);
            }
            EXPECT_EQ(tree.parent[static_cast<size_t>(kids[i])], node);
            EXPECT_GE(t.linkIndex(kids[i], node), 0);
            ++edges;
        }
    }
    // A tree: exactly one edge per non-root participant, and the root
    // host hangs off exactly one edge switch.
    EXPECT_EQ(edges, participants - 1);
    EXPECT_EQ(tree.children[static_cast<size_t>(tree.root)].size(), 1u);
}

TEST(ReductionTree, InvariantsHoldAcrossTopologies)
{
    expectTreeInvariants(starTopology(8),
                         buildReductionTree(starTopology(8)));
    expectTreeInvariants(fatTreeTopology(4),
                         buildReductionTree(fatTreeTopology(4)));
    expectTreeInvariants(dragonflyTopology(4, 2, 2, 9),
                         buildReductionTree(dragonflyTopology(4, 2, 2, 9)));
}

TEST(ReductionTree, NonZeroRootReroots)
{
    const Topology t = fatTreeTopology(4);
    const ReductionTree tree = buildReductionTree(t, 5);
    EXPECT_EQ(tree.root, 5);
    expectTreeInvariants(t, tree);
}

/** Dyadic gradients: 12-bit fractions in [-0.5, 0.5], so any float
 *  summation order over <= a few hundred hosts is exact. */
std::vector<std::vector<float>>
dyadicInputs(int hosts, size_t elems, uint64_t seed)
{
    std::vector<std::vector<float>> inputs(
        static_cast<size_t>(hosts));
    for (int h = 0; h < hosts; ++h) {
        Rng rng(seed + static_cast<uint64_t>(h));
        auto &v = inputs[static_cast<size_t>(h)];
        v.resize(elems);
        for (float &x : v) {
            const int k = static_cast<int>(rng.below(4097)) - 2048;
            x = static_cast<float>(std::ldexp(k, -12));
        }
    }
    return inputs;
}

TEST(InnetValues, SwitchFoldOrderMatchesHostSummationBitExactly)
{
    for (const Topology &t :
         {starTopology(8), fatTreeTopology(4),
          dragonflyTopology(4, 2, 2, 9)}) {
        SCOPED_TRACE(t.name);
        const size_t elems = 512;
        const auto inputs = dyadicInputs(t.hosts, elems, 0xD7AD);
        const std::vector<float> reduced =
            innetReduceValues(t, inputs);
        ASSERT_EQ(reduced.size(), elems);
        // Host-side reference: plain ascending-rank accumulation, the
        // order a ring schedule realizes. Exact for dyadic inputs, so
        // equality is bitwise, not approximate.
        for (size_t e = 0; e < elems; ++e) {
            float sum = 0.0f;
            for (int h = 0; h < t.hosts; ++h)
                sum += inputs[static_cast<size_t>(h)][e];
            EXPECT_EQ(reduced[e], sum) << "element " << e;
        }
    }
}

InnetStarResult
runStar(int nodes, InnetStarConfig cfg)
{
    EventQueue events;
    NetworkConfig nc;
    nc.nodes = nodes;
    Network net(events, nc);
    InnetStarRun run(net, cfg);
    run.start();
    events.run();
    EXPECT_TRUE(run.finished());
    return run.result();
}

TEST(InnetStar, CompletesWithExactEngineAccounting)
{
    InnetStarConfig cfg;
    cfg.gradientBytes = 1 << 20;
    cfg.chunkBytes = 256 * 1024;
    const InnetStarResult r = runStar(4, cfg);
    EXPECT_EQ(r.chunks, 4u);
    ASSERT_EQ(r.hostDone.size(), 4u);
    Tick last = 0;
    for (const Tick t : r.hostDone) {
        EXPECT_GT(t, 0u);
        last = std::max(last, t);
    }
    EXPECT_EQ(r.finish, last);
    // Every chunk folds one contribution per host and forwards once.
    EXPECT_EQ(r.agg.folds, 4u * 4u);
    EXPECT_EQ(r.agg.forwards, 4u);
    EXPECT_EQ(r.agg.foldedBytes, 4u * cfg.gradientBytes);
    EXPECT_EQ(r.agg.codecBytes, 0u);
}

TEST(InnetStar, SingleSlotParksArrivalsButStillFinishes)
{
    InnetStarConfig cfg;
    cfg.gradientBytes = 1 << 20;
    cfg.chunkBytes = 64 * 1024;
    // Slow the engine far below line rate so a chunk's slot is still
    // held when the next chunk's contributions arrive.
    cfg.agg.clockHz = 2e6;
    cfg.agg.slots = 1;
    const InnetStarResult starved = runStar(4, cfg);
    EXPECT_GT(starved.agg.slotWaits, 0u);
    EXPECT_EQ(starved.agg.peakSlotsInUse, 1u);

    cfg.agg.slots = 8;
    const InnetStarResult pooled = runStar(4, cfg);
    // A deeper pool opens more chunks concurrently, parks fewer
    // arrivals, and can only speed completion up.
    EXPECT_GT(pooled.agg.peakSlotsInUse, 1u);
    EXPECT_LT(pooled.agg.slotWaits, starved.agg.slotWaits);
    EXPECT_LE(pooled.finish, starved.finish);
}

TEST(InnetStar, CodedChunksRideTheCodecDatapath)
{
    InnetStarConfig cfg;
    cfg.gradientBytes = 1 << 20;
    cfg.coded = true;
    cfg.wireRatio = 0.5;
    const InnetStarResult r = runStar(4, cfg);
    EXPECT_GT(r.agg.codecBytes, 0u);

    InnetStarConfig raw = cfg;
    raw.coded = false;
    raw.wireRatio = 1.0;
    EXPECT_GT(runStar(4, raw).agg.foldedBytes, 0u);
}

TEST(InnetStar, TimingIsBitReproducible)
{
    InnetStarConfig cfg;
    cfg.gradientBytes = 2 << 20;
    const InnetStarResult a = runStar(8, cfg);
    const InnetStarResult b = runStar(8, cfg);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.hostDone, b.hostDone);
    EXPECT_EQ(a.agg.cycles, b.agg.cycles);
}

TEST(InnetStar, CriticalPathAttributesSwitchAggregationBlame)
{
    spans::reset();
    spans::setEnabled(true);
    {
        InnetStarConfig cfg;
        cfg.gradientBytes = 1 << 20;
        runStar(4, cfg);
    }
    const CriticalPathReport report =
        analyzeCriticalPath(spans::global().spans());
    spans::setEnabled(false);
    spans::reset();

    ASSERT_EQ(report.iterations.size(), 1u);
    // The walker's exactness contract must survive the new span kinds:
    // every tick of the window is blamed on exactly one category.
    EXPECT_TRUE(report.exact());
    EXPECT_TRUE(report.chainContains(spans::Kind::SwitchAgg));
    EXPECT_GT(report.totals.get(spans::Blame::SwitchAgg), 0u);
}

TEST(InnetLp, EngineCountersAndTraceFlowThroughSnapshots)
{
    LpFabric fab(fatTreeTopology(4), LpFabricConfig{}, 1);
    LpCollectiveConfig cc;
    cc.algorithm = LpAlgorithm::InNetwork;
    cc.gradientBytes = 1 << 20;
    const LpAllreduceResult r = runLpAllreduce(fab, cc);
    ASSERT_EQ(r.hostDone.size(), 16u);
    for (const Tick t : r.hostDone)
        EXPECT_GT(t, 0u);
    EXPECT_EQ(r.finish,
              *std::max_element(r.hostDone.begin(), r.hostDone.end()));

    const SwitchAggStats agg = fab.aggTotals();
    EXPECT_GT(agg.folds, 0u);
    EXPECT_GT(agg.forwards, 0u);
    // Switch reduction means host-delivered bytes collapse to
    // (aggregate to root) + (broadcast to the other 15 hosts).
    EXPECT_EQ(fab.deliveredBytes(), 16u * cc.gradientBytes);
    size_t aggRecords = 0;
    for (const LpTraceRec &rec : fab.mergedTrace())
        if (rec.kind == 5)
            ++aggRecords;
    EXPECT_EQ(aggRecords, agg.folds);
}

TEST(InnetLp, CodedPayloadsChargeSwitchCodec)
{
    LpFabricConfig fc;
    fc.nic.hasCompressionEngine = true;
    LpFabric fab(fatTreeTopology(4), fc, 1);
    LpCollectiveConfig cc;
    cc.algorithm = LpAlgorithm::InNetwork;
    cc.gradientBytes = 1 << 20;
    cc.compressGradients = true;
    cc.wireRatio = 0.5;
    const LpAllreduceResult r = runLpAllreduce(fab, cc);
    EXPECT_GT(r.finish, 0u);
    EXPECT_GT(fab.aggTotals().codecBytes, 0u);
}

} // namespace
} // namespace inc
