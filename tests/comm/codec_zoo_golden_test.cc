/**
 * @file
 * Golden-bitstream pinning of every zoo codec's framed wire format
 * (tests/core/golden/zoo_<name>.bin). Any change to the envelope
 * (magic, name hash, count, block directory) or to a codec's block
 * payload layout shows up as a byte mismatch — silent wire breaks that
 * value-level round-trips cannot see. The INCEPTIONN group format keeps
 * its own scalar-path goldens in core/golden_bitstream_test.cc; these
 * pin the zoo framing on top.
 *
 * Regenerate after an *intentional* format change with:
 *
 *     INC_UPDATE_GOLDEN=1 ./build/tests/test_comm \
 *         --gtest_filter='ZooGolden*'
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "comm/codec_zoo.h"
#include "comm/gradient_codec.h"
#include "core/fp32.h"
#include "sim/random.h"

#ifndef INC_GOLDEN_DIR
#error "INC_GOLDEN_DIR must point at tests/core/golden"
#endif

namespace inc {
namespace {

/**
 * Pinned input: 2100 floats (several blocks for the small-block codecs,
 * a partial tail for all of them) mixing specials with fixed-seed
 * noise. Fixed on purpose — goldens are byte-exact artifacts.
 */
std::vector<float>
goldenInput()
{
    std::vector<float> v = {
        0.0f,       -0.0f,     1.0f,     -1.0f,    0.5f,   -0.25f,
        0.0078125f, -2.75f,    1.5e-3f,  -3.0e-5f, 123.5f, -0.125f,
    };
    v.push_back(Fp32Bits{0, 1, 0}.pack()); // smallest normal
    Rng rng(0x90D1DB175ULL);               // fixed: golden bits
    while (v.size() < 1400)
        v.push_back(static_cast<float>(rng.gaussian(0.0, 0.05)));
    while (v.size() < 2100)
        v.push_back(static_cast<float>(rng.uniform(-1.2, 1.2)));
    return v;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(INC_GOLDEN_DIR) + "/zoo_" + name + ".bin";
}

bool
readFile(const std::string &path, std::vector<uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    out.resize(size > 0 ? static_cast<size_t>(size) : 0);
    const size_t got =
        out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
    std::fclose(f);
    return got == out.size();
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

class ZooGolden : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ZooGolden, EncodeMatchesPinnedBytes)
{
    const auto codec = makeCodec(GetParam());
    ASSERT_NE(codec, nullptr);
    const std::vector<float> input = goldenInput();
    const std::vector<uint8_t> wire = codec->encode(input);

    const std::string path = goldenPath(GetParam());
    if (std::getenv("INC_UPDATE_GOLDEN")) {
        writeFile(path, wire);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::vector<uint8_t> golden;
    ASSERT_TRUE(readFile(path, golden))
        << "missing golden vector " << path
        << " (run with INC_UPDATE_GOLDEN=1 to generate)";
    ASSERT_EQ(wire.size(), golden.size()) << GetParam();
    for (size_t i = 0; i < wire.size(); ++i)
        ASSERT_EQ(wire[i], golden[i])
            << GetParam() << " first differs at byte " << i;
}

TEST_P(ZooGolden, PinnedBytesDecodeToTheLiveRoundtrip)
{
    if (std::getenv("INC_UPDATE_GOLDEN"))
        GTEST_SKIP();
    const auto codec = makeCodec(GetParam());
    ASSERT_NE(codec, nullptr);
    std::vector<uint8_t> golden;
    ASSERT_TRUE(readFile(goldenPath(GetParam()), golden));

    const std::vector<float> input = goldenInput();
    std::vector<float> from_golden(input.size());
    ASSERT_TRUE(codec->decode(golden, from_golden));

    std::vector<float> live = input;
    codec->roundtrip(live);
    for (size_t i = 0; i < input.size(); ++i)
        ASSERT_EQ(floatToBits(from_golden[i]), floatToBits(live[i]))
            << GetParam() << " value " << i;
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &e : codecRegistry())
        names.push_back(e.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, ZooGolden,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace inc
