/**
 * @file
 * Differential property harness for the pluggable codec zoo: every
 * codec in codecRegistry() is driven through the same laws, so adding
 * a codec enrolls it in the whole suite with zero new scaffolding.
 *
 * Laws, per registered codec:
 *  - round-trip: decode(encode(x)) succeeds on seeded random and
 *    adversarial (denormal/inf-free dyadic) tensors at many sizes;
 *  - error bound: every element lands within the codec's own
 *    self-reported errorBound(x); lossless codecs are bit-exact and
 *    report a zero bound;
 *  - chunked-vs-unchunked: encode() and encodeParallel() emit
 *    bit-identical wire bytes (the INC_THREADS law — the CI seed
 *    matrix re-runs this binary at INC_THREADS 1 and 8 and across
 *    INC_EQ_SHUFFLE seeds, where these bytes must not move);
 *  - determinism: two encodes of the same input are identical (no
 *    RNG, no wall clock, no thread identity);
 *  - roundtrip() overrides are pinned to the wire path bit for bit;
 *  - decoder robustness: truncated prefixes are rejected cleanly,
 *    FaultModel-drawn corruption never crashes or invokes UB (the
 *    sanitize CI job runs this suite under ASan/UBSan), and
 *    cross-codec streams, wrong counts, and trailing garbage all
 *    return false.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "comm/codec_zoo.h"
#include "comm/gradient_codec.h"
#include "core/fp32.h"
#include "net/faults.h"
#include "sim/random.h"

namespace inc {
namespace {

uint64_t
testSeed()
{
    const char *env = std::getenv("INC_TEST_SEED");
    if (env && *env)
        return std::strtoull(env, nullptr, 10);
    return 1;
}

/**
 * Adversarial tensor: denormal/inf-free dyadic values (exact powers of
 * two and small sums thereof, both signs) interleaved with seeded
 * gradient-like noise. Dyadic entries are exactly representable, so
 * error-feedback style subtractions in callers are exact too.
 */
std::vector<float>
adversarialTensor(uint64_t seed, size_t n)
{
    Rng rng(seed * 9176046193ULL + n);
    std::vector<float> v(n);
    for (size_t i = 0; i < n; ++i) {
        switch (rng.below(8)) {
        case 0:
            v[i] = 0.0f;
            break;
        case 1:
            v[i] = -0.0f;
            break;
        case 2: {
            // Dyadic: +/- 2^e for e in [-20, 20] (denormal/inf-free).
            const int e = static_cast<int>(rng.below(41)) - 20;
            v[i] = std::ldexp(rng.below(2) ? 1.0f : -1.0f, e);
            break;
        }
        case 3: {
            // Dyadic sum: a + b with exponents close enough to stay
            // exactly representable.
            const int e = static_cast<int>(rng.below(20)) - 10;
            const float a = std::ldexp(1.0f, e);
            const float b = std::ldexp(1.0f, e - static_cast<int>(
                                                     rng.below(8)));
            v[i] = rng.below(2) ? a + b : -(a + b);
            break;
        }
        case 4:
            v[i] = static_cast<float>(rng.gaussian(0.0, 0.05));
            break;
        case 5:
            v[i] = static_cast<float>(rng.gaussian(0.0, 1e-4));
            break;
        default:
            v[i] = static_cast<float>(rng.uniform(-1.5, 1.5));
            break;
        }
    }
    return v;
}

/** Sizes exercising empty, sub-block, exact-block, and multi-block
 *  framing for every registered block size. */
const size_t kSizes[] = {0, 1, 7, 255, 256, 257, 1024, 1025, 5000};

struct ZooCase
{
    std::string name;
};

class CodecZoo : public ::testing::TestWithParam<ZooCase>
{
  protected:
    std::unique_ptr<GradientCodec> codec_ = makeCodec(GetParam().name);

    void
    SetUp() override
    {
        ASSERT_NE(codec_, nullptr) << GetParam().name;
    }
};

TEST(CodecRegistry, HasAtLeastFourSchemesWithUniqueNames)
{
    const auto &reg = codecRegistry();
    ASSERT_GE(reg.size(), 4u);
    for (size_t i = 0; i < reg.size(); ++i) {
        const auto c = reg[i].make();
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->info().name, reg[i].name);
        EXPECT_GT(c->info().blockElems, 0u);
        for (size_t j = i + 1; j < reg.size(); ++j) {
            EXPECT_NE(reg[i].name, reg[j].name);
            EXPECT_NE(codecNameHash(reg[i].name),
                      codecNameHash(reg[j].name));
        }
    }
    EXPECT_EQ(makeCodec("no_such_codec"), nullptr);
}

TEST(CodecRegistry, CoversThePaperCodecAndThreeNewFamilies)
{
    // The tentpole contract: INCEPTIONN plus top-k EF, FFT-domain,
    // and uniform-quantization families all behind the interface.
    EXPECT_NE(makeCodec("inceptionn_b10"), nullptr);
    EXPECT_NE(makeCodec("topk_ef_5"), nullptr);
    EXPECT_NE(makeCodec("fft_25"), nullptr);
    EXPECT_NE(makeCodec("quant8_ef"), nullptr);
    EXPECT_NE(makeCodec("fp32"), nullptr);
}

TEST_P(CodecZoo, RoundTripWithinSelfReportedErrorBound)
{
    for (const size_t n : kSizes) {
        const std::vector<float> input =
            adversarialTensor(testSeed(), n);
        const double bound = codec_->errorBound(input);
        ASSERT_GE(bound, 0.0);
        if (codec_->info().lossless)
            ASSERT_EQ(bound, 0.0);

        std::vector<float> out(n);
        const std::vector<uint8_t> wire = codec_->encode(input);
        ASSERT_TRUE(codec_->decode(wire, out)) << "n=" << n;
        for (size_t i = 0; i < n; ++i) {
            if (codec_->info().lossless) {
                ASSERT_EQ(floatToBits(out[i]), floatToBits(input[i]))
                    << "n=" << n << " i=" << i;
            } else {
                ASSERT_LE(std::abs(static_cast<double>(input[i]) -
                                   static_cast<double>(out[i])),
                          bound)
                    << "n=" << n << " i=" << i << " x=" << input[i]
                    << " rt=" << out[i];
            }
        }
    }
}

TEST_P(CodecZoo, SerialAndParallelEncodesAreBitIdentical)
{
    // The chunked-vs-unchunked law: block coding is independent, so
    // the thread pool cannot move a single wire bit. The CI seed
    // matrix repeats this at INC_THREADS 1 and 8.
    for (const size_t n : kSizes) {
        const std::vector<float> input =
            adversarialTensor(testSeed(), n);
        const std::vector<uint8_t> serial = codec_->encode(input);
        const std::vector<uint8_t> parallel =
            codec_->encodeParallel(input);
        ASSERT_EQ(serial, parallel) << "n=" << n;
    }
}

TEST_P(CodecZoo, EncodeIsDeterministicAcrossCalls)
{
    const std::vector<float> input =
        adversarialTensor(testSeed(), 1025);
    ASSERT_EQ(codec_->encode(input), codec_->encode(input));
}

TEST_P(CodecZoo, RoundtripOverrideMatchesWirePath)
{
    for (const size_t n : {size_t{257}, size_t{1025}}) {
        const std::vector<float> input =
            adversarialTensor(testSeed(), n);
        std::vector<float> via_override = input;
        codec_->roundtrip(via_override);

        std::vector<float> via_wire(n);
        ASSERT_TRUE(codec_->decode(codec_->encode(input), via_wire));
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(floatToBits(via_override[i]),
                      floatToBits(via_wire[i]))
                << "n=" << n << " i=" << i;
    }
}

TEST_P(CodecZoo, WireRatioAndBlockCountAreConsistent)
{
    const std::vector<float> input =
        adversarialTensor(testSeed(), 2100);
    const uint64_t wb = codec_->wireBytes(input);
    EXPECT_EQ(wb, codec_->encode(input).size());
    EXPECT_NEAR(codec_->wireRatio(input),
                static_cast<double>(input.size() * 4) /
                    static_cast<double>(wb),
                1e-12);
    const size_t be = codec_->info().blockElems;
    EXPECT_EQ(codec_->blockCount(input.size()),
              (input.size() + be - 1) / be);
}

TEST_P(CodecZoo, EveryTruncatedPrefixIsRejectedCleanly)
{
    const std::vector<float> input =
        adversarialTensor(testSeed(), 600);
    const std::vector<uint8_t> wire = codec_->encode(input);
    std::vector<float> out(input.size());
    // Every strict prefix must fail the framing or a block check —
    // never crash, never read past the span.
    const size_t step = wire.size() > 2048 ? 13 : 1;
    for (size_t len = 0; len < wire.size(); len += step) {
        ASSERT_FALSE(codec_->decode(
            std::span<const uint8_t>(wire.data(), len), out))
            << "prefix " << len << "/" << wire.size();
    }
}

TEST_P(CodecZoo, FaultModelCorruptionNeverCrashesTheDecoder)
{
    const std::vector<float> input =
        adversarialTensor(testSeed(), 600);
    const std::vector<uint8_t> clean = codec_->encode(input);

    // Corruption positions come from the fault model's stateless named
    // draws — the same machinery the lossy fabric uses — so the sweep
    // is reproducible for any INC_TEST_SEED.
    FaultConfig fc;
    fc.seed = testSeed();
    fc.defaultLink.corruptionRate = 0.25;
    FaultModel model(fc);

    std::vector<float> out(input.size());
    for (uint32_t round = 0; round < 8; ++round) {
        std::vector<uint8_t> wire = clean;
        bool touched = false;
        for (size_t i = 0; i < wire.size(); ++i) {
            const PacketFate fate =
                model.judge(0, LinkDir::Up, 0,
                            /*flow=*/round + 1, /*seq=*/i,
                            /*attempt=*/1);
            if (fate == PacketFate::Corrupted) {
                wire[i] ^= static_cast<uint8_t>(1u << (i % 8));
                touched = true;
            }
        }
        ASSERT_TRUE(touched);
        // A clean bool either way; ASan/UBSan police the "never UB"
        // half of the contract.
        (void)codec_->decode(wire, out);
    }
}

TEST_P(CodecZoo, HeaderTamperingIsRejected)
{
    const std::vector<float> input =
        adversarialTensor(testSeed(), 300);
    std::vector<float> out(input.size());
    const std::vector<uint8_t> wire = codec_->encode(input);

    std::vector<uint8_t> bad = wire;
    bad[0] ^= 0xFF; // magic
    EXPECT_FALSE(codec_->decode(bad, out));

    bad = wire;
    bad[5] ^= 0xFF; // codec name hash
    EXPECT_FALSE(codec_->decode(bad, out));

    bad = wire;
    bad[8] ^= 0x01; // element count
    EXPECT_FALSE(codec_->decode(bad, out));

    bad = wire;
    bad.push_back(0); // trailing garbage
    EXPECT_FALSE(codec_->decode(bad, out));

    std::vector<float> wrong(input.size() + 1);
    EXPECT_FALSE(codec_->decode(wire, wrong));
}

TEST_P(CodecZoo, RejectsEveryOtherCodecsStream)
{
    const std::vector<float> input =
        adversarialTensor(testSeed(), 300);
    const std::vector<uint8_t> wire = codec_->encode(input);
    std::vector<float> out(input.size());
    for (const auto &entry : codecRegistry()) {
        if (entry.name == codec_->info().name)
            continue;
        const auto other = entry.make();
        EXPECT_FALSE(other->decode(wire, out))
            << entry.name << " accepted a " << codec_->info().name
            << " stream";
    }
}

TEST_P(CodecZoo, CostModelIsPriceable)
{
    const CodecCostModel cm = codec_->cost();
    EXPECT_GT(cm.encodeBytesPerSecond, 0.0);
    EXPECT_GT(cm.decodeBytesPerSecond, 0.0);
    if (cm.hardwareOffloadable()) {
        EXPECT_TRUE(codec_->info().streaming);
        EXPECT_GT(cm.hwCyclesForValues(1024), 0.0);
        // Throughput term dominates pipeline fill at scale.
        EXPECT_GT(cm.hwCyclesForValues(1 << 20),
                  cm.hwCyclesForValues(1024));
    } else {
        EXPECT_EQ(cm.hwCyclesForValues(1 << 20), 0.0);
    }
}

std::vector<ZooCase>
allCases()
{
    std::vector<ZooCase> cases;
    for (const auto &e : codecRegistry())
        cases.push_back(ZooCase{e.name});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Registry, CodecZoo,
                         ::testing::ValuesIn(allCases()),
                         [](const auto &info) {
                             return info.param.name;
                         });

} // namespace
} // namespace inc
