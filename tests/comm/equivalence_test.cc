/**
 * @file
 * Cross-algorithm all-reduce equivalence. The simulated collectives
 * carry byte counts, not payloads, so this test checks the contract in
 * two coupled halves:
 *
 *  - data plane: the summation schedule each algorithm induces (star
 *    rank-order fan-in, ring block rotation, two-level tree, hierarchical
 *    rings) is mirrored here over identical seeded gradients. With
 *    dyadic inputs (multiples of 2^-12, |g| <= 0.5) every float sum is
 *    exact, so all four schedules must produce *bit-identical* vectors —
 *    lossless, and also lossy (at-source codec round-trip) where the
 *    per-element error is additionally bounded by workers x 2^-b.
 *
 *  - message plane: the corresponding simulated exchange completes for
 *    every algorithm, with and without fault injection (the reliable
 *    transport masks loss, which is exactly why the data-plane result
 *    cannot depend on it), and each ExchangeResult carries per-exchange
 *    transport deltas — the regression half: tree and hier-ring once
 *    returned zeros here while ring and star filled them.
 *
 * Seeded from INC_TEST_SEED (default 1) for the CI seed matrix.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/codec.h"
#include "comm/comm_world.h"
#include "comm/inceptionn_api.h"
#include "net/faults.h"
#include "net/network.h"
#include "sim/random.h"

namespace inc {
namespace {

constexpr int kWorkers = 8;
constexpr int kGroupSize = 4;
constexpr size_t kElems = 4096;

uint64_t
testSeed()
{
    const char *env = std::getenv("INC_TEST_SEED");
    if (env && *env)
        return std::strtoull(env, nullptr, 10);
    return 1;
}

/** Per-worker gradients on the 2^-12 dyadic grid, |g| <= 0.5: any
 *  summation order over eight of them is exact in float. */
std::vector<std::vector<float>>
dyadicGradients(uint64_t seed)
{
    std::vector<std::vector<float>> g(kWorkers,
                                      std::vector<float>(kElems));
    Rng rng(seed);
    for (auto &w : g)
        for (auto &f : w) {
            const int64_t k =
                static_cast<int64_t>(rng.below(4097)) - 2048;
            f = static_cast<float>(std::ldexp(
                static_cast<double>(k), -12));
        }
    return g;
}

using Grads = std::vector<std::vector<float>>;

/** Star: the aggregator receives and folds workers in rank order. */
std::vector<float>
starSchedule(const Grads &g)
{
    std::vector<float> acc = g[0];
    for (int r = 1; r < kWorkers; ++r)
        for (size_t i = 0; i < kElems; ++i)
            acc[i] += g[r][i];
    return acc;
}

/** Ring reduce-scatter: block j is folded walking the ring from rank
 *  (j+1) mod p around to its final owner. */
std::vector<float>
ringSchedule(const Grads &g)
{
    std::vector<float> out(kElems);
    const size_t block = (kElems + kWorkers - 1) / kWorkers;
    for (int j = 0; j < kWorkers; ++j) {
        const size_t lo = static_cast<size_t>(j) * block;
        const size_t hi = std::min(kElems, lo + block);
        for (size_t i = lo; i < hi; ++i) {
            float acc = g[(j + 1) % kWorkers][i];
            for (int s = 2; s <= kWorkers; ++s)
                acc += g[(j + s) % kWorkers][i];
            out[i] = acc;
        }
    }
    return out;
}

/** Two-level tree: group aggregators fold members in order, the root
 *  folds the group partials in group order. */
std::vector<float>
treeSchedule(const Grads &g)
{
    std::vector<float> root(kElems, 0.0f);
    for (int g0 = 0; g0 < kWorkers; g0 += kGroupSize) {
        std::vector<float> part = g[g0];
        for (int r = g0 + 1; r < g0 + kGroupSize; ++r)
            for (size_t i = 0; i < kElems; ++i)
                part[i] += g[r][i];
        for (size_t i = 0; i < kElems; ++i)
            root[i] += part[i];
    }
    return root;
}

/** Hierarchical rings: an intra-group ring per group, then a ring over
 *  the group leaders' partials. */
std::vector<float>
hierRingSchedule(const Grads &g)
{
    const int groups = kWorkers / kGroupSize;
    std::vector<std::vector<float>> part;
    for (int gi = 0; gi < groups; ++gi) {
        std::vector<float> p(kElems);
        const int base = gi * kGroupSize;
        for (size_t i = 0; i < kElems; ++i) {
            // Rotate the fold start per block as a flat ring would.
            const int j = static_cast<int>(i) % kGroupSize;
            float acc = g[base + (j + 1) % kGroupSize][i];
            for (int s = 2; s <= kGroupSize; ++s)
                acc += g[base + (j + s) % kGroupSize][i];
            p[i] = acc;
        }
        part.push_back(std::move(p));
    }
    std::vector<float> out(kElems);
    for (size_t i = 0; i < kElems; ++i) {
        const int j = static_cast<int>(i) % groups;
        float acc = part[static_cast<size_t>((j + 1) % groups)][i];
        for (int s = 2; s <= groups; ++s)
            acc += part[static_cast<size_t>((j + s) % groups)][i];
        out[i] = acc;
    }
    return out;
}

void
expectBitIdentical(const std::vector<float> &a,
                   const std::vector<float> &b, const char *label)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)),
              0)
        << label;
}

TEST(CollectiveEquivalence, LosslessSchedulesBitIdentical)
{
    const Grads g = dyadicGradients(testSeed());
    const std::vector<float> star = starSchedule(g);
    expectBitIdentical(star, ringSchedule(g), "ring vs star");
    expectBitIdentical(star, treeSchedule(g), "tree vs star");
    expectBitIdentical(star, hierRingSchedule(g), "hier-ring vs star");
}

TEST(CollectiveEquivalence, LossySchedulesBitIdenticalAndBounded)
{
    const int b = 10;
    const InceptionnCodec codec(b);
    const Grads exact = dyadicGradients(testSeed());

    // Lossy compression happens at the source NIC: every worker's
    // gradient is round-tripped once, then summed. Round-tripped
    // values land on the 2^-15 grid, so sums stay exact and order-
    // independent — bit-identity must survive the lossy codec.
    Grads lossy = exact;
    for (auto &w : lossy)
        codec.roundtrip(w);

    const std::vector<float> star = starSchedule(lossy);
    expectBitIdentical(star, ringSchedule(lossy), "ring vs star");
    expectBitIdentical(star, treeSchedule(lossy), "tree vs star");
    expectBitIdentical(star, hierRingSchedule(lossy),
                       "hier-ring vs star");

    // Per-element error: each of the p contributions is within 2^-b of
    // its exact value and the sums are exact, so |lossy - exact| sum is
    // bounded by p * 2^-b.
    const std::vector<float> truth = starSchedule(exact);
    const double bound = kWorkers * codec.errorBound();
    for (size_t i = 0; i < kElems; ++i)
        ASSERT_LE(std::abs(static_cast<double>(star[i]) -
                           static_cast<double>(truth[i])),
                  bound)
            << "element " << i;
}

// ---------------------------------------------------------------------
// Message plane: every algorithm's simulated exchange completes, with
// and without fault injection, and fills its per-exchange transport
// deltas.

struct SimRun
{
    ExchangeResult result{};
    bool done = false;
    TransportStats cumulative{};
};

SimRun
runSim(CollectiveAlgorithm algo, bool faults, uint64_t bytes,
       int exchanges = 1)
{
    CollectiveCall call;
    call.algorithm = algo;
    call.gradientBytes = bytes;
    call.workers = kWorkers;
    call.groupSize = kGroupSize;

    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = nodesRequired(call);
    Network net(events, cfg);

    FaultConfig fc;
    std::unique_ptr<FaultModel> model;
    TransportOptions transport;
    if (faults) {
        fc.defaultLink.loss = LossKind::Bernoulli;
        fc.defaultLink.lossRate = 0.02;
        model = std::make_unique<FaultModel>(fc);
        net.attachFaults(model.get());
        transport.reliable = true;
    }
    CommWorld comm(net, transport);

    SimRun run;
    std::vector<ExchangeResult> results;
    std::vector<TransportStats> at_done;
    std::function<void(int)> launch = [&](int remaining) {
        collecCommAllReduce(comm, call, [&, remaining](ExchangeResult r) {
            results.push_back(r);
            // Snapshot *at completion*: recovery for lost ACKs may
            // still trickle in afterwards and belongs to no exchange.
            at_done.push_back(comm.transportStats());
            if (remaining > 1)
                launch(remaining - 1);
        });
    };
    events.schedule(0, [&] { launch(exchanges); });
    events.run();

    EXPECT_EQ(results.size(), static_cast<size_t>(exchanges));
    if (!results.empty()) {
        run.result = results.back();
        run.done = true;
        // Each exchange's deltas cover exactly its own recovery work:
        // back-to-back exchanges start where the previous one finished,
        // so the deltas must sum to the counters at the last finish.
        uint64_t rexmit_sum = 0, drop_sum = 0;
        for (const ExchangeResult &r : results) {
            rexmit_sum += r.retransmits;
            drop_sum += r.packetsDropped;
        }
        run.cumulative = at_done.back();
        EXPECT_EQ(rexmit_sum, run.cumulative.retransmits);
        EXPECT_EQ(drop_sum, run.cumulative.dropsObserved);
    }
    return run;
}

class SimulatedExchange
    : public ::testing::TestWithParam<CollectiveAlgorithm>
{
};

TEST_P(SimulatedExchange, CompletesLossless)
{
    const SimRun run = runSim(GetParam(), /*faults=*/false,
                              4 * 1000 * 1000);
    ASSERT_TRUE(run.done);
    EXPECT_GT(run.result.finish, run.result.start);
    EXPECT_EQ(run.result.retransmits, 0u);
    EXPECT_EQ(run.result.packetsDropped, 0u);
}

TEST_P(SimulatedExchange, CompletesUnderFaultsWithPerExchangeDeltas)
{
    // Two back-to-back exchanges on one reused CommWorld: the second
    // result must report only its own retransmits/drops, not the
    // cumulative history (regression: tree and hier-ring used to leave
    // the deltas at zero, so the sum check below failed for them).
    const SimRun run = runSim(GetParam(), /*faults=*/true,
                              4 * 1000 * 1000, /*exchanges=*/2);
    ASSERT_TRUE(run.done);
    EXPECT_GT(run.result.finish, run.result.start);
    // 2% loss over thousands of packets: recovery work must both have
    // happened and have been attributed.
    EXPECT_GT(run.cumulative.retransmits, 0u);
    EXPECT_GT(run.cumulative.dropsObserved, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SimulatedExchange,
    ::testing::Values(CollectiveAlgorithm::WorkerAggregator,
                      CollectiveAlgorithm::Ring,
                      CollectiveAlgorithm::Tree,
                      CollectiveAlgorithm::HierRing),
    [](const auto &info) {
        switch (info.param) {
          case CollectiveAlgorithm::WorkerAggregator: return "star";
          case CollectiveAlgorithm::Ring: return "ring";
          case CollectiveAlgorithm::Tree: return "tree";
          case CollectiveAlgorithm::HierRing: return "hier_ring";
        }
        return "unknown";
    });

} // namespace
} // namespace inc
