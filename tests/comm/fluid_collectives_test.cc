/**
 * @file
 * The collectives must run unchanged over the fluid transport (the
 * Fabric abstraction), and agree with the packet model to first order.
 */

#include <gtest/gtest.h>

#include "comm/inceptionn_api.h"
#include "net/fluid.h"
#include "net/network.h"

namespace inc {
namespace {

constexpr uint64_t kMB = 1000 * 1000;

template <typename Transport>
double
runCall(CollectiveAlgorithm algo, int workers, uint64_t bytes,
        bool compress = false)
{
    CollectiveCall call;
    call.algorithm = algo;
    call.workers = workers;
    call.groupSize = 4;
    call.gradientBytes = bytes;
    call.wireRatio = 8.0;

    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = nodesRequired(call);
    cfg.nicConfig.hasCompressionEngine = true;
    Transport net(events, cfg);
    CommWorld comm(net);
    double secs = -1;
    events.schedule(0, [&] {
        auto done = [&](ExchangeResult r) { secs = r.seconds(); };
        if (compress)
            collecCommCompAllReduce(comm, call, done);
        else
            collecCommAllReduce(comm, call, done);
    });
    events.run();
    return secs;
}

TEST(FluidCollectives, AllAlgorithmsComplete)
{
    for (const auto algo :
         {CollectiveAlgorithm::WorkerAggregator, CollectiveAlgorithm::Tree,
          CollectiveAlgorithm::Ring, CollectiveAlgorithm::HierRing}) {
        EXPECT_GT(runCall<FluidNetwork>(algo, 8, 20 * kMB), 0.0)
            << static_cast<int>(algo);
    }
}

TEST(FluidCollectives, AgreesWithPacketModel)
{
    for (const auto algo : {CollectiveAlgorithm::WorkerAggregator,
                            CollectiveAlgorithm::Ring}) {
        const double packet = runCall<Network>(algo, 4, 100 * kMB);
        const double fluid = runCall<FluidNetwork>(algo, 4, 100 * kMB);
        EXPECT_NEAR(fluid / packet, 1.0, 0.10)
            << static_cast<int>(algo);
    }
}

TEST(FluidCollectives, RingStillBeatsWa)
{
    const double wa = runCall<FluidNetwork>(
        CollectiveAlgorithm::WorkerAggregator, 4, 100 * kMB);
    const double ring =
        runCall<FluidNetwork>(CollectiveAlgorithm::Ring, 4, 100 * kMB);
    EXPECT_LT(ring, wa * 0.6);
}

TEST(FluidCollectives, CompressionStillHelps)
{
    const double plain =
        runCall<FluidNetwork>(CollectiveAlgorithm::Ring, 4, 100 * kMB);
    const double comp = runCall<FluidNetwork>(CollectiveAlgorithm::Ring,
                                              4, 100 * kMB, true);
    EXPECT_LT(comp, plain * 0.5);
}

} // namespace
} // namespace inc
