#include "comm/inceptionn_api.h"

#include <gtest/gtest.h>

#include "net/network.h"

namespace inc {
namespace {

constexpr uint64_t kMB = 1000 * 1000;

double
runCall(const CollectiveCall &call, bool compressed, bool engines = true)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = nodesRequired(call);
    cfg.nicConfig.hasCompressionEngine = engines;
    Network net(events, cfg);
    CommWorld comm(net);
    double secs = -1.0;
    events.schedule(0, [&] {
        auto done = [&](ExchangeResult r) { secs = r.seconds(); };
        if (compressed)
            collecCommCompAllReduce(comm, call, done);
        else
            collecCommAllReduce(comm, call, done);
    });
    events.run();
    return secs;
}

TEST(InceptionnApi, NodesRequiredPerAlgorithm)
{
    CollectiveCall call;
    call.workers = 8;
    call.groupSize = 4;
    call.algorithm = CollectiveAlgorithm::WorkerAggregator;
    EXPECT_EQ(nodesRequired(call), 9);
    call.algorithm = CollectiveAlgorithm::Tree;
    EXPECT_EQ(nodesRequired(call), 11);
    call.algorithm = CollectiveAlgorithm::Ring;
    EXPECT_EQ(nodesRequired(call), 8);
    call.algorithm = CollectiveAlgorithm::HierRing;
    EXPECT_EQ(nodesRequired(call), 8);
}

TEST(InceptionnApi, AllAlgorithmsComplete)
{
    for (const auto algo :
         {CollectiveAlgorithm::WorkerAggregator, CollectiveAlgorithm::Tree,
          CollectiveAlgorithm::Ring, CollectiveAlgorithm::HierRing}) {
        CollectiveCall call;
        call.algorithm = algo;
        call.workers = 8;
        call.groupSize = 4;
        call.gradientBytes = 20 * kMB;
        EXPECT_GT(runCall(call, false), 0.0)
            << "algo " << static_cast<int>(algo);
    }
}

TEST(InceptionnApi, CompVariantIsFasterWithEngines)
{
    for (const auto algo :
         {CollectiveAlgorithm::WorkerAggregator, CollectiveAlgorithm::Ring,
          CollectiveAlgorithm::HierRing}) {
        CollectiveCall call;
        call.algorithm = algo;
        call.workers = 8;
        call.groupSize = 4;
        call.gradientBytes = 50 * kMB;
        call.wireRatio = 8.0;
        const double plain = runCall(call, false);
        const double comp = runCall(call, true);
        EXPECT_LT(comp, plain) << "algo " << static_cast<int>(algo);
    }
}

TEST(InceptionnApi, CompVariantNoopWithoutEngines)
{
    CollectiveCall call;
    call.algorithm = CollectiveAlgorithm::Ring;
    call.workers = 4;
    call.gradientBytes = 20 * kMB;
    call.wireRatio = 8.0;
    const double with_tos = runCall(call, true, /*engines=*/false);
    const double without = runCall(call, false, /*engines=*/false);
    EXPECT_DOUBLE_EQ(with_tos, without);
}

TEST(InceptionnApi, RingBeatsWaThroughTheApiToo)
{
    CollectiveCall wa;
    wa.algorithm = CollectiveAlgorithm::WorkerAggregator;
    wa.workers = 4;
    wa.gradientBytes = 100 * kMB;
    CollectiveCall ring = wa;
    ring.algorithm = CollectiveAlgorithm::Ring;
    EXPECT_LT(runCall(ring, false), runCall(wa, false));
}

} // namespace
} // namespace inc
