#include "comm/hier_ring_allreduce.h"

#include <gtest/gtest.h>

#include "net/network.h"

#include "comm/ring_allreduce.h"
#include "comm/star_allreduce.h"

namespace inc {
namespace {

constexpr uint64_t kMB = 1000 * 1000;

NetworkConfig
clusterConfig(int nodes, bool engines = false)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.nicConfig.hasCompressionEngine = engines;
    return cfg;
}

double
runHier(int nodes, int group_size, uint64_t bytes, bool compress = false,
        double ratio = 1.0)
{
    EventQueue events;
    Network net(events, clusterConfig(nodes, compress));
    CommWorld comm(net);
    HierRingConfig cfg;
    cfg.gradientBytes = bytes;
    cfg.compressGradients = compress;
    cfg.wireRatio = ratio;
    cfg.groups = contiguousGroups(nodes, group_size);
    double secs = -1;
    events.schedule(0, [&] {
        runHierRingAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
    });
    events.run();
    EXPECT_GT(secs, 0.0);
    return secs;
}

double
runFlatRing(int nodes, uint64_t bytes)
{
    EventQueue events;
    Network net(events, clusterConfig(nodes));
    CommWorld comm(net);
    RingConfig cfg;
    cfg.gradientBytes = bytes;
    double secs = -1;
    events.schedule(0, [&] {
        runRingAllReduce(comm, cfg,
                         [&](ExchangeResult r) { secs = r.seconds(); });
    });
    events.run();
    return secs;
}

TEST(ContiguousGroups, SplitsEvenly)
{
    const auto groups = contiguousGroups(8, 4);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(groups[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(SubsetRing, RunsOnArbitraryRanks)
{
    EventQueue events;
    Network net(events, clusterConfig(8));
    CommWorld comm(net);
    RingConfig cfg;
    cfg.gradientBytes = 10 * kMB;
    cfg.ranks = {1, 4, 6}; // a non-contiguous subset
    double secs = -1;
    events.schedule(0, [&] {
        runRingAllReduce(comm, cfg,
                         [&](ExchangeResult r) { secs = r.seconds(); });
    });
    events.run();
    EXPECT_GT(secs, 0.0);
}

TEST(SubsetRing, ConcurrentDisjointRingsDoNotInterfere)
{
    EventQueue events;
    Network net(events, clusterConfig(8));
    CommWorld comm(net);
    RingConfig a, b;
    a.gradientBytes = b.gradientBytes = 10 * kMB;
    a.ranks = {0, 1, 2, 3};
    b.ranks = {4, 5, 6, 7};
    double sa = -1, sb = -1;
    events.schedule(0, [&] {
        runRingAllReduce(comm, a,
                         [&](ExchangeResult r) { sa = r.seconds(); });
        runRingAllReduce(comm, b,
                         [&](ExchangeResult r) { sb = r.seconds(); });
    });
    events.run();
    ASSERT_GT(sa, 0.0);
    ASSERT_GT(sb, 0.0);
    // Disjoint resources: both finish like a lone 4-ring.
    EXPECT_NEAR(sa / sb, 1.0, 0.01);
}

TEST(HierRing, CompletesAndAllMembersFinish)
{
    const double secs = runHier(8, 4, 50 * kMB);
    EXPECT_GT(secs, 0.0);
}

TEST(HierRing, CompressionShortensExchange)
{
    const double plain = runHier(8, 4, 100 * kMB, false);
    const double comp = runHier(8, 4, 100 * kMB, true, 10.0);
    EXPECT_LT(comp, plain * 0.6);
}

TEST(HierRing, BeatsFlatRingLatencyOnSmallModels)
{
    // Small model, many nodes: the flat ring pays 2(p-1) per-step
    // overheads; the hierarchy pays 2(g-1) + 2(L-1) + 1.
    const uint64_t tiny = 1 * kMB;
    const double flat = runFlatRing(16, tiny);
    const double hier = runHier(16, 4, tiny);
    EXPECT_LT(hier, flat);
}

TEST(HierRing, FlatRingStillWinsOnBandwidthBoundModels)
{
    // Large model: the flat ring moves 2(p-1)/p * n per link; the
    // hierarchy moves ~3x n per member in the worst phase (intra ring +
    // leader ring over the full vector + fan-out).
    const uint64_t big = 200 * kMB;
    const double flat = runFlatRing(16, big);
    const double hier = runHier(16, 4, big);
    EXPECT_LT(flat, hier);
}

TEST(HierRing, ScalesBetterThanStarAggregation)
{
    const uint64_t n = 50 * kMB;
    EventQueue events;
    Network net(events, clusterConfig(17));
    CommWorld comm(net);
    StarConfig sc;
    sc.gradientBytes = n;
    sc.aggregator = 16;
    for (int i = 0; i < 16; ++i)
        sc.workers.push_back(i);
    double star = -1;
    events.schedule(0, [&] {
        runStarAllReduce(comm, sc,
                         [&](ExchangeResult r) { star = r.seconds(); });
    });
    events.run();

    const double hier = runHier(16, 4, n);
    EXPECT_LT(hier, star);
}

} // namespace
} // namespace inc
