#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "sim/random.h"
#include "sim/thread_pool.h"
#include "gradcheck.h"

namespace inc {
namespace {

using testhelpers::checkGradients;

Tensor
randomTensor(std::vector<size_t> shape, uint64_t seed, float scale = 1.0f)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-scale, scale));
    return t;
}

TEST(DenseLayer, ForwardMatchesManual)
{
    Dense d(2, 3);
    // W = [[1,2],[3,4],[5,6]], b = [0.1, 0.2, 0.3]
    auto params = d.params();
    float *w = params[0].value->raw();
    for (int i = 0; i < 6; ++i)
        w[i] = static_cast<float>(i + 1);
    float *b = params[1].value->raw();
    b[0] = 0.1f;
    b[1] = 0.2f;
    b[2] = 0.3f;

    Tensor x({1, 2});
    x[0] = 1.0f;
    x[1] = -1.0f;
    const Tensor &y = d.forward(x, false);
    EXPECT_NEAR(y[0], 1.0f - 2.0f + 0.1f, 1e-6);
    EXPECT_NEAR(y[1], 3.0f - 4.0f + 0.2f, 1e-6);
    EXPECT_NEAR(y[2], 5.0f - 6.0f + 0.3f, 1e-6);
}

TEST(DenseLayer, GradCheck)
{
    Dense d(5, 4);
    Rng rng(1);
    d.initParams(rng);
    const auto res = checkGradients(d, randomTensor({3, 5}, 2));
    EXPECT_LT(res.maxParamError, 2e-2);
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(DenseLayer, GradientsAccumulateAcrossBackwards)
{
    Dense d(2, 2);
    Rng rng(3);
    d.initParams(rng);
    const Tensor x = randomTensor({1, 2}, 4);
    Tensor dy({1, 2});
    dy.fill(1.0f);

    d.zeroGrads();
    d.forward(x, true);
    d.backward(dy);
    const Tensor once = *d.params()[0].grad;
    d.forward(x, true);
    d.backward(dy);
    const Tensor twice = *d.params()[0].grad;
    for (size_t i = 0; i < once.numel(); ++i)
        EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-5);
}

TEST(Conv2dLayer, GradCheck)
{
    Conv2d c(2, 3, 5, 5, 3, 1, 1);
    Rng rng(5);
    c.initParams(rng);
    const auto res = checkGradients(c, randomTensor({2, 2, 5, 5}, 6));
    EXPECT_LT(res.maxParamError, 2e-2);
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(Conv2dLayer, StridedGradCheck)
{
    Conv2d c(1, 2, 6, 6, 3, 2, 1);
    Rng rng(7);
    c.initParams(rng);
    const auto res = checkGradients(c, randomTensor({1, 1, 6, 6}, 8));
    EXPECT_LT(res.maxParamError, 2e-2);
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(Conv2dLayer, OutputShape)
{
    Conv2d c(3, 8, 32, 32, 3, 1, 1);
    Rng rng(9);
    c.initParams(rng);
    const Tensor &y = c.forward(randomTensor({2, 3, 32, 32}, 10), false);
    EXPECT_EQ(y.shapeString(), "[2x8x32x32]");
}

TEST(Conv2dLayer, BitIdenticalAcrossThreadCounts)
{
    struct ThreadCountGuard
    {
        ~ThreadCountGuard() { setGlobalThreadCount(0); }
    } guard;

    // Grouped conv with a multi-image batch exercises the parallel
    // batch loops in forward and backward plus the nested gemm calls.
    auto run = [](int threads) {
        setGlobalThreadCount(threads);
        Conv2d c(4, 6, 9, 9, 3, 1, 1, /*groups=*/2);
        Rng rng(13);
        c.initParams(rng);
        c.zeroGrads();
        const Tensor x = randomTensor({5, 4, 9, 9}, 14);
        const Tensor y = c.forward(x, true);
        const Tensor dy = randomTensor({5, 6, 9, 9}, 15);
        const Tensor dx = c.backward(dy);
        struct Out
        {
            Tensor y, dx, dw, db;
        };
        return Out{y, dx, *c.params()[0].grad, *c.params()[1].grad};
    };

    const auto serial = run(1);
    for (const int threads : {2, 8}) {
        const auto multi = run(threads);
        for (size_t i = 0; i < serial.y.numel(); ++i)
            ASSERT_EQ(serial.y[i], multi.y[i]) << threads << " threads";
        for (size_t i = 0; i < serial.dx.numel(); ++i)
            ASSERT_EQ(serial.dx[i], multi.dx[i]) << threads << " threads";
        for (size_t i = 0; i < serial.dw.numel(); ++i)
            ASSERT_EQ(serial.dw[i], multi.dw[i]) << threads << " threads";
        for (size_t i = 0; i < serial.db.numel(); ++i)
            ASSERT_EQ(serial.db[i], multi.db[i]) << threads << " threads";
    }
}

TEST(Conv2dLayer, KnownConvolution)
{
    // Single 2x2 input, 2x2 kernel of ones, no pad: output = sum.
    Conv2d c(1, 1, 2, 2, 2, 1, 0);
    c.params()[0].value->fill(1.0f);
    c.params()[1].value->fill(0.0f);
    Tensor x({1, 1, 2, 2});
    x[0] = 1;
    x[1] = 2;
    x[2] = 3;
    x[3] = 4;
    const Tensor &y = c.forward(x, false);
    ASSERT_EQ(y.numel(), 1u);
    EXPECT_FLOAT_EQ(y[0], 10.0f);
}

TEST(ReluLayer, GradCheck)
{
    ReLU r;
    const auto res = checkGradients(r, randomTensor({4, 7}, 11));
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(FlattenLayer, RoundTripShapes)
{
    Flatten f;
    const Tensor &y = f.forward(randomTensor({2, 3, 4, 5}, 12), false);
    EXPECT_EQ(y.shapeString(), "[2x60]");
    Tensor dy({2, 60});
    dy.fill(1.0f);
    const Tensor dx = f.backward(dy);
    EXPECT_EQ(dx.shapeString(), "[2x3x4x5]");
}

TEST(GlobalAvgPoolLayer, ForwardAveragesAndGradCheck)
{
    GlobalAvgPool g;
    Tensor x({1, 2, 2, 2});
    for (size_t i = 0; i < 8; ++i)
        x[i] = static_cast<float>(i);
    const Tensor &y = g.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 5.5f);

    const auto res = checkGradients(g, randomTensor({2, 3, 4, 4}, 13));
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(MaxPoolLayer, ForwardPicksMax)
{
    MaxPool2d p(2);
    Tensor x({1, 1, 2, 2});
    x[0] = 1;
    x[1] = 9;
    x[2] = 3;
    x[3] = 2;
    const Tensor &y = p.forward(x, false);
    ASSERT_EQ(y.numel(), 1u);
    EXPECT_FLOAT_EQ(y[0], 9.0f);

    Tensor dy({1, 1, 1, 1});
    dy[0] = 5.0f;
    const Tensor dx = p.backward(dy);
    EXPECT_FLOAT_EQ(dx[1], 5.0f);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(MaxPoolLayer, GradCheck)
{
    MaxPool2d p(2);
    const auto res = checkGradients(p, randomTensor({2, 3, 4, 4}, 14));
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(DropoutLayer, EvalIsPassThrough)
{
    Dropout d(0.5f);
    const Tensor x = randomTensor({3, 8}, 15);
    const Tensor &y = d.forward(x, /*training=*/false);
    for (size_t i = 0; i < x.numel(); ++i)
        EXPECT_EQ(y[i], x[i]);
}

TEST(DropoutLayer, TrainDropsAndRescales)
{
    Dropout d(0.5f, 99);
    Tensor x({1, 10000});
    x.fill(1.0f);
    const Tensor &y = d.forward(x, true);
    size_t zeros = 0;
    double sum = 0.0;
    for (size_t i = 0; i < y.numel(); ++i) {
        if (y[i] == 0.0f)
            ++zeros;
        else
            EXPECT_FLOAT_EQ(y[i], 2.0f);
        sum += y[i];
    }
    EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
    EXPECT_NEAR(sum / 10000.0, 1.0, 0.06);
}

TEST(DropoutLayer, BackwardUsesSameMask)
{
    Dropout d(0.3f, 7);
    Tensor x({1, 100});
    x.fill(1.0f);
    const Tensor &y = d.forward(x, true);
    Tensor dy({1, 100});
    dy.fill(1.0f);
    const Tensor dx = d.backward(dy);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(dx[i], y[i]); // mask identical, input was all-ones
}

TEST(BatchNormLayer, NormalizesBatch)
{
    BatchNorm2d bn(2);
    const Tensor x = randomTensor({4, 2, 3, 3}, 16, 5.0f);
    const Tensor &y = bn.forward(x, true);
    // Per channel: mean ~0, var ~1.
    for (size_t c = 0; c < 2; ++c) {
        double s = 0, s2 = 0;
        for (size_t n = 0; n < 4; ++n)
            for (size_t i = 0; i < 9; ++i) {
                const float v = y[(n * 2 + c) * 9 + i];
                s += v;
                s2 += static_cast<double>(v) * v;
            }
        const double mean = s / 36.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(s2 / 36.0 - mean * mean, 1.0, 1e-2);
    }
}

TEST(BatchNormLayer, GradCheck)
{
    BatchNorm2d bn(3);
    Rng rng(17);
    bn.initParams(rng);
    // Nudge gamma/beta off their init so gradients are informative.
    (*bn.params()[0].value)[1] = 1.5f;
    (*bn.params()[1].value)[2] = -0.3f;
    const auto res = checkGradients(bn, randomTensor({3, 3, 2, 2}, 18));
    EXPECT_LT(res.maxParamError, 3e-2);
    EXPECT_LT(res.maxInputError, 3e-2);
}

TEST(BatchNormLayer, EvalUsesRunningStats)
{
    BatchNorm2d bn(1);
    // Train on a few batches to populate running stats.
    for (int it = 0; it < 50; ++it)
        bn.forward(randomTensor({8, 1, 4, 4},
                                static_cast<uint64_t>(100 + it), 2.0f),
                   true);
    // Eval on a constant input: output should be finite and use the
    // learned stats (not the degenerate batch variance of 0).
    Tensor x({2, 1, 4, 4});
    x.fill(0.5f);
    const Tensor &y = bn.forward(x, false);
    for (size_t i = 1; i < y.numel(); ++i)
        EXPECT_EQ(y[i], y[0]);
    EXPECT_LT(std::abs(y[0]), 2.0f);
}

TEST(ResidualLayer, IdentitySkipGradCheck)
{
    std::vector<std::unique_ptr<Layer>> body;
    body.push_back(std::make_unique<Conv2d>(2, 2, 4, 4, 3, 1, 1));
    Residual res_layer(std::move(body));
    Rng rng(19);
    res_layer.initParams(rng);
    const auto res = checkGradients(res_layer,
                                    randomTensor({2, 2, 4, 4}, 20));
    EXPECT_LT(res.maxParamError, 2e-2);
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(ResidualLayer, ProjectedSkipGradCheck)
{
    std::vector<std::unique_ptr<Layer>> body;
    body.push_back(std::make_unique<Conv2d>(2, 4, 4, 4, 3, 2, 1));
    auto proj = std::make_unique<Conv2d>(2, 4, 4, 4, 1, 2, 0);
    Residual res_layer(std::move(body), std::move(proj));
    Rng rng(21);
    res_layer.initParams(rng);
    const auto res = checkGradients(res_layer,
                                    randomTensor({1, 2, 4, 4}, 22));
    EXPECT_LT(res.maxParamError, 2e-2);
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(ResidualLayer, IdentityBodyDoublesInput)
{
    // Body = 1x1 conv initialized to identity; skip = identity.
    // Then y = relu(2x).
    std::vector<std::unique_ptr<Layer>> body;
    auto conv = std::make_unique<Conv2d>(1, 1, 2, 2, 1, 1, 0);
    conv->params()[0].value->fill(1.0f);
    body.push_back(std::move(conv));
    Residual r(std::move(body));
    Tensor x({1, 1, 2, 2});
    x[0] = 1.0f;
    x[1] = -1.0f;
    x[2] = 0.5f;
    x[3] = 0.0f;
    const Tensor &y = r.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 2.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f); // relu(-2)
    EXPECT_FLOAT_EQ(y[2], 1.0f);
}

} // namespace
} // namespace inc
