/**
 * @file
 * Finite-difference gradient checking shared by the layer tests.
 * The scalar objective is L = <forward(x), seed>, so dL/dOutput = seed.
 */

#ifndef INCEPTIONN_TESTS_NN_GRADCHECK_H
#define INCEPTIONN_TESTS_NN_GRADCHECK_H

#include <cmath>
#include <vector>

#include "nn/layer.h"
#include "sim/random.h"

namespace inc {
namespace testhelpers {

/** L = <layer(x), seed>. */
inline double
objective(Layer &layer, const Tensor &x, const std::vector<float> &seed)
{
    const Tensor &y = layer.forward(x, /*training=*/true);
    double acc = 0.0;
    for (size_t i = 0; i < y.numel(); ++i)
        acc += static_cast<double>(y[i]) * seed[i];
    return acc;
}

struct GradCheckResult
{
    double maxParamError = 0.0;
    double maxInputError = 0.0;
};

/**
 * Compare analytic gradients of @p layer (params and input) against
 * central finite differences. Returns max absolute errors, normalized by
 * max(1, |analytic|).
 */
inline GradCheckResult
checkGradients(Layer &layer, Tensor x, double eps = 1e-3)
{
    Rng rng(0xCAFE);
    const Tensor &probe = layer.forward(x, true);
    std::vector<float> seed(probe.numel());
    for (auto &s : seed)
        s = static_cast<float>(rng.uniform(-1.0, 1.0));

    // Analytic pass.
    layer.zeroGrads();
    layer.forward(x, true);
    Tensor dy(probe.shape());
    for (size_t i = 0; i < dy.numel(); ++i)
        dy[i] = seed[i];
    const Tensor dx = layer.backward(dy);

    GradCheckResult result;

    // Parameters.
    for (auto &p : layer.params()) {
        for (size_t i = 0; i < p.value->numel(); ++i) {
            float &w = (*p.value)[i];
            const float keep = w;
            w = keep + static_cast<float>(eps);
            const double up = objective(layer, x, seed);
            w = keep - static_cast<float>(eps);
            const double down = objective(layer, x, seed);
            w = keep;
            const double numeric = (up - down) / (2.0 * eps);
            const double analytic = (*p.grad)[i];
            const double err = std::abs(numeric - analytic) /
                               std::max(1.0, std::abs(analytic));
            result.maxParamError = std::max(result.maxParamError, err);
        }
    }

    // Input.
    for (size_t i = 0; i < x.numel(); ++i) {
        const float keep = x[i];
        x[i] = keep + static_cast<float>(eps);
        const double up = objective(layer, x, seed);
        x[i] = keep - static_cast<float>(eps);
        const double down = objective(layer, x, seed);
        x[i] = keep;
        const double numeric = (up - down) / (2.0 * eps);
        const double analytic = dx[i];
        const double err = std::abs(numeric - analytic) /
                           std::max(1.0, std::abs(analytic));
        result.maxInputError = std::max(result.maxInputError, err);
    }
    return result;
}

} // namespace testhelpers
} // namespace inc

#endif // INCEPTIONN_TESTS_NN_GRADCHECK_H
