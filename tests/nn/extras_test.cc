#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "gradcheck.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "nn/loss.h"
#include "nn/lrn.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "sim/random.h"

namespace inc {
namespace {

Tensor
randomTensor(std::vector<size_t> shape, uint64_t seed, float scale = 1.0f)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (size_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.uniform(-scale, scale));
    return t;
}

TEST(LrnLayer, IdentityLikeForSmallActivations)
{
    // With k=2 and tiny activations, scale ~ k and y ~ x * k^-beta.
    Lrn lrn(5, 1e-4f, 0.75f, 2.0f);
    Tensor x({1, 3, 2, 2});
    x.fill(0.01f);
    const Tensor &y = lrn.forward(x, false);
    const float expect = 0.01f * std::pow(2.0f, -0.75f);
    for (size_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y[i], expect, 1e-6);
}

TEST(LrnLayer, SuppressesLoudChannels)
{
    // A channel surrounded by loud neighbours is suppressed more than
    // one surrounded by silence (use non-trivial alpha to see it).
    Lrn lrn(3, 1.0f, 0.75f, 2.0f);
    Tensor x({1, 3, 1, 1});
    x[0] = 1.0f; // channel 0: loud neighbour at c=1
    x[1] = 5.0f;
    x[2] = 0.0f;
    const Tensor &y = lrn.forward(x, false);
    Tensor lone({1, 3, 1, 1});
    lone[0] = 1.0f; // same value, silent neighbours
    Lrn lrn2(3, 1.0f, 0.75f, 2.0f);
    const Tensor &y2 = lrn2.forward(lone, false);
    EXPECT_LT(y[0], y2[0]);
}

TEST(LrnLayer, GradCheck)
{
    Lrn lrn(3, 0.5f, 0.75f, 2.0f);
    const auto res =
        testhelpers::checkGradients(lrn, randomTensor({2, 4, 2, 2}, 31));
    EXPECT_LT(res.maxInputError, 3e-2);
}

TEST(GroupedConv, HalvesParameters)
{
    Conv2d plain(4, 8, 8, 8, 3, 1, 1, 1);
    Conv2d grouped(4, 8, 8, 8, 3, 1, 1, 2);
    // Weights shrink by the group count; biases unchanged.
    EXPECT_EQ(plain.paramCount(), 8u * 4 * 9 + 8);
    EXPECT_EQ(grouped.paramCount(), 8u * 2 * 9 + 8);
}

TEST(GroupedConv, GroupsAreIndependent)
{
    // With two groups, zeroing group 1's input must not change group
    // 0's output channels.
    Conv2d conv(4, 4, 4, 4, 3, 1, 1, 2);
    Rng rng(41);
    conv.initParams(rng);

    Tensor x({1, 4, 4, 4});
    x.fillGaussian(rng, 1.0f);
    const Tensor y_full = conv.forward(x, false);

    Tensor x_zeroed = x;
    for (size_t c = 2; c < 4; ++c)
        for (size_t i = 0; i < 16; ++i)
            x_zeroed[c * 16 + i] = 0.0f;
    const Tensor &y_half = conv.forward(x_zeroed, false);

    for (size_t c = 0; c < 2; ++c) // group-0 outputs unchanged
        for (size_t i = 0; i < 16; ++i)
            EXPECT_EQ(y_half[c * 16 + i], y_full[c * 16 + i]);
}

TEST(GroupedConv, GradCheck)
{
    Conv2d conv(4, 4, 4, 4, 3, 1, 1, 2);
    Rng rng(42);
    conv.initParams(rng);
    const auto res =
        testhelpers::checkGradients(conv, randomTensor({2, 4, 4, 4}, 43));
    EXPECT_LT(res.maxParamError, 2e-2);
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(GroupedConv, RejectsIndivisibleChannels)
{
    EXPECT_DEATH({ Conv2d bad(3, 8, 8, 8, 3, 1, 1, 2); }, "groups");
}

TEST(AvgPoolLayer, ForwardAverages)
{
    AvgPool2d p(2);
    Tensor x({1, 1, 2, 2});
    x[0] = 1;
    x[1] = 2;
    x[2] = 3;
    x[3] = 6;
    const Tensor &y = p.forward(x, false);
    ASSERT_EQ(y.numel(), 1u);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPoolLayer, GradCheck)
{
    AvgPool2d p(2);
    const auto res =
        testhelpers::checkGradients(p, randomTensor({2, 3, 4, 4}, 44));
    EXPECT_LT(res.maxInputError, 2e-2);
}

TEST(Optimizer, NesterovConvergesFasterOnQuadratic)
{
    auto run = [](bool nesterov) {
        Model m("quad");
        m.emplace<Dense>(1, 1);
        auto params = m.params();
        float &w = (*params[0].value)[0];
        w = 1.0f;
        SgdConfig cfg;
        cfg.learningRate = 0.02;
        cfg.momentum = 0.9;
        cfg.weightDecay = 0.0;
        cfg.nesterov = nesterov;
        SgdOptimizer opt(m, cfg);
        for (int it = 0; it < 40; ++it) {
            (*params[0].grad)[0] = 2.0f * w;
            (*params[1].grad)[0] = 0.0f;
            opt.step();
        }
        return std::abs(w);
    };
    // Both descend; the Nesterov update damps the overshoot.
    EXPECT_LT(run(true), 0.5);
    EXPECT_LT(run(false), 0.5);
    EXPECT_LE(run(true), run(false) * 1.5);
}

TEST(TopK, RankSemantics)
{
    Tensor scores({2, 4});
    // Row 0: class 2 is top-1. Row 1: class 0 ranks third.
    const float vals[] = {0.1f, 0.2f, 0.9f, 0.3f, 0.4f, 0.8f, 0.6f, 0.1f};
    for (size_t i = 0; i < 8; ++i)
        scores[i] = vals[i];
    const std::vector<int> labels{2, 0};
    EXPECT_DOUBLE_EQ(topKAccuracy(scores, labels, 1), 0.5);
    EXPECT_DOUBLE_EQ(topKAccuracy(scores, labels, 2), 0.5);
    EXPECT_DOUBLE_EQ(topKAccuracy(scores, labels, 3), 1.0);
}

TEST(TopK, ThroughLossObject)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({1, 10});
    for (size_t c = 0; c < 10; ++c)
        logits[c] = static_cast<float>(c);
    const std::vector<int> labels{5}; // rank 5 from the top
    loss.forward(logits, labels);
    EXPECT_DOUBLE_EQ(loss.topKAccuracy(4), 0.0);
    EXPECT_DOUBLE_EQ(loss.topKAccuracy(5), 1.0);
    EXPECT_DOUBLE_EQ(loss.accuracy(), 0.0);
}

TEST(Serialize, SaveLoadRoundTrip)
{
    const std::string path = "/tmp/inc_model_test.bin";
    Model a = buildHdcSmall();
    Rng rng(77);
    a.init(rng);
    ASSERT_TRUE(saveModelParams(a, path));

    Model b = buildHdcSmall();
    ASSERT_TRUE(loadModelParams(b, path));

    std::vector<float> wa(a.paramCount()), wb(b.paramCount());
    a.flattenParams(wa);
    b.flattenParams(wb);
    EXPECT_EQ(wa, wb);
    std::filesystem::remove(path);
}

TEST(Serialize, RejectsWrongModel)
{
    const std::string path = "/tmp/inc_model_test2.bin";
    Model a = buildHdcSmall();
    Rng rng(78);
    a.init(rng);
    ASSERT_TRUE(saveModelParams(a, path));

    Model wrong("wrong");
    wrong.emplace<Dense>(3, 3);
    EXPECT_FALSE(loadModelParams(wrong, path));
    std::filesystem::remove(path);
}

TEST(Serialize, RejectsGarbageFile)
{
    const std::string path = "/tmp/inc_model_test3.bin";
    FILE *f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a checkpoint", f);
    fclose(f);
    Model m = buildHdcSmall();
    EXPECT_FALSE(loadModelParams(m, path));
    std::filesystem::remove(path);
}

TEST(Serialize, MissingFileFails)
{
    Model m = buildHdcSmall();
    EXPECT_FALSE(loadModelParams(m, "/tmp/definitely_missing_ckpt.bin"));
}

} // namespace
} // namespace inc
