#include "nn/model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_digits.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "sim/random.h"

namespace inc {
namespace {

Model
tinyMlp()
{
    Model m("tiny");
    m.emplace<Dense>(4, 8);
    m.emplace<ReLU>();
    m.emplace<Dense>(8, 3);
    return m;
}

TEST(Model, ParamCountAndFlattenRoundTrip)
{
    Model m = tinyMlp();
    EXPECT_EQ(m.paramCount(), 4u * 8 + 8 + 8 * 3 + 3);

    Rng rng(1);
    m.init(rng);
    std::vector<float> flat(m.paramCount());
    m.flattenParams(flat);
    // Perturb and reload.
    for (auto &v : flat)
        v += 1.0f;
    m.loadParams(flat);
    std::vector<float> back(m.paramCount());
    m.flattenParams(back);
    EXPECT_EQ(back, flat);
}

TEST(Model, GradFlattenRoundTrip)
{
    Model m = tinyMlp();
    Rng rng(2);
    m.init(rng);
    m.zeroGrads();

    Tensor x({2, 4});
    x.fill(0.5f);
    const Tensor &logits = m.forward(x, true);
    Tensor dy(logits.shape());
    dy.fill(1.0f);
    m.backward(dy);

    std::vector<float> g(m.paramCount());
    m.flattenGrads(g);
    double nonzero = 0;
    for (float v : g)
        nonzero += std::abs(v);
    EXPECT_GT(nonzero, 0.0);

    std::vector<float> doubled(g);
    for (auto &v : doubled)
        v *= 2.0f;
    m.loadGrads(doubled);
    std::vector<float> back(m.paramCount());
    m.flattenGrads(back);
    EXPECT_EQ(back, doubled);
}

TEST(Loss, UniformLogitsGiveLogC)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({2, 10});
    logits.fill(0.0f);
    const std::vector<int> labels{3, 7};
    const double l = loss.forward(logits, labels);
    EXPECT_NEAR(l, std::log(10.0), 1e-5);
}

TEST(Loss, BackwardIsSoftmaxMinusOneHot)
{
    SoftmaxCrossEntropy loss;
    Tensor logits({1, 3});
    logits[0] = 0.0f;
    logits[1] = 1.0f;
    logits[2] = 2.0f;
    const std::vector<int> labels{1};
    loss.forward(logits, labels);
    const Tensor d = loss.backward();
    double s = 0.0;
    for (size_t i = 0; i < 3; ++i)
        s += d[i];
    EXPECT_NEAR(s, 0.0, 1e-6); // softmax sums to 1, minus the one-hot
    EXPECT_LT(d[1], 0.0f);
    EXPECT_GT(d[2], 0.0f);
}

TEST(Loss, GradCheckAgainstFiniteDifferences)
{
    SoftmaxCrossEntropy loss;
    Rng rng(3);
    Tensor logits({3, 5});
    for (size_t i = 0; i < logits.numel(); ++i)
        logits[i] = static_cast<float>(rng.uniform(-2, 2));
    const std::vector<int> labels{0, 2, 4};

    loss.forward(logits, labels);
    const Tensor d = loss.backward();

    const double eps = 1e-3;
    for (size_t i = 0; i < logits.numel(); ++i) {
        const float keep = logits[i];
        logits[i] = keep + static_cast<float>(eps);
        const double up = loss.forward(logits, labels);
        logits[i] = keep - static_cast<float>(eps);
        const double down = loss.forward(logits, labels);
        logits[i] = keep;
        EXPECT_NEAR((up - down) / (2 * eps), d[i], 1e-3);
    }
}

TEST(Optimizer, StepDescendsQuadratic)
{
    // Single Dense(1->1) without bias effect: minimize (w*1 - 0)^2 style
    // by faking the gradient; check that SGD+momentum moves w downhill.
    Model m("quad");
    m.emplace<Dense>(1, 1);
    Rng rng(4);
    m.init(rng);

    SgdConfig cfg;
    cfg.learningRate = 0.1;
    cfg.momentum = 0.0;
    cfg.weightDecay = 0.0;
    SgdOptimizer opt(m, cfg);

    auto params = m.params();
    float &w = (*params[0].value)[0];
    w = 1.0f;
    for (int it = 0; it < 50; ++it) {
        (*params[0].grad)[0] = 2.0f * w; // d/dw of w^2
        (*params[1].grad)[0] = 0.0f;
        opt.step();
    }
    EXPECT_NEAR(w, 0.0f, 1e-3);
}

TEST(Optimizer, LrScheduleSteps)
{
    Model m = tinyMlp();
    Rng rng(5);
    m.init(rng);
    SgdConfig cfg;
    cfg.learningRate = 0.5;
    cfg.lrDecayFactor = 10.0;
    cfg.lrDecayEvery = 10;
    SgdOptimizer opt(m, cfg);
    EXPECT_DOUBLE_EQ(opt.currentLearningRate(), 0.5);
    m.zeroGrads();
    for (int i = 0; i < 10; ++i)
        opt.step();
    EXPECT_DOUBLE_EQ(opt.currentLearningRate(), 0.05);
    for (int i = 0; i < 10; ++i)
        opt.step();
    EXPECT_DOUBLE_EQ(opt.currentLearningRate(), 0.005);
}

TEST(Optimizer, WeightDecayShrinksWeights)
{
    Model m("decay");
    m.emplace<Dense>(1, 1);
    auto params = m.params();
    (*params[0].value)[0] = 1.0f;
    SgdConfig cfg;
    cfg.learningRate = 0.1;
    cfg.momentum = 0.0;
    cfg.weightDecay = 0.5;
    SgdOptimizer opt(m, cfg);
    m.zeroGrads();
    opt.step();
    EXPECT_NEAR((*params[0].value)[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(ModelZoo, FullSizeSpecsMatchPaperFig3)
{
    // Fig. 3(a) reports the exchanged weight/gradient sizes.
    EXPECT_EQ(alexNetSpec().paramCount(), 60965224u);
    EXPECT_NEAR(alexNetSpec().sizeMB(), 232.6, 0.5);
    EXPECT_EQ(vgg16Spec().paramCount(), 138357544u);
    EXPECT_NEAR(vgg16Spec().sizeMB(), 527.8, 0.5);
    EXPECT_EQ(resNet50Spec().paramCount(), 25557032u);
    EXPECT_NEAR(resNet50Spec().sizeMB(), 97.5, 0.5);
    EXPECT_EQ(resNet152Spec().paramCount(), 60192808u);
    EXPECT_NEAR(resNet152Spec().sizeMB(), 229.6, 0.6);
}

TEST(ModelZoo, HdcBuildMatchesSpec)
{
    Model hdc = buildHdc();
    EXPECT_EQ(hdc.paramCount(), hdcSpec().paramCount());
}

TEST(ModelZoo, ProxiesForwardBackwardSmoke)
{
    Rng rng(6);
    for (auto builder :
         {&buildAlexNetProxy, &buildVggProxy, &buildResNetProxy}) {
        Model m = builder();
        m.init(rng);
        m.zeroGrads();
        Tensor x({2, 3, 32, 32});
        x.fillGaussian(rng, 1.0f);
        const Tensor &logits = m.forward(x, true);
        EXPECT_EQ(logits.shapeString(), "[2x10]");
        Tensor dy(logits.shape());
        dy.fill(0.1f);
        m.backward(dy);
        std::vector<float> g(m.paramCount());
        m.flattenGrads(g);
        double mag = 0;
        for (float v : g)
            mag += std::abs(v);
        EXPECT_GT(mag, 0.0) << m.name();
    }
}

TEST(Training, HdcLearnsSyntheticDigits)
{
    // End-to-end sanity: a few hundred iterations of single-node SGD must
    // lift accuracy far above chance (10%) on held-out data.
    SyntheticDigits train(2000, /*seed=*/1);
    SyntheticDigits test(500, /*seed=*/2);
    Model m = buildHdc();
    Rng rng(7);
    m.init(rng);

    SgdConfig cfg;
    cfg.learningRate = 0.05;
    cfg.lrDecayEvery = 0; // constant LR for the smoke test
    cfg.clipGradNorm = 5.0;
    SgdOptimizer opt(m, cfg);
    SoftmaxCrossEntropy loss;

    MinibatchSampler sampler(train, 25, /*seed=*/3);
    for (int it = 0; it < 300; ++it) {
        const Batch b = sampler.next();
        m.zeroGrads();
        const Tensor &logits = m.forward(b.x, true);
        loss.forward(logits, b.labels);
        m.backward(loss.backward());
        opt.step();
    }

    // Evaluate.
    std::vector<size_t> idx(test.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    const Batch eval = test.batch(idx);
    const Tensor &logits = m.forward(eval.x, false);
    loss.forward(logits, eval.labels);
    EXPECT_GT(loss.accuracy(), 0.6) << "HDC failed to learn";
}

} // namespace
} // namespace inc
