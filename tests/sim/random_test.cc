#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace inc {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowIsUnbiasedEnough)
{
    Rng r(11);
    int counts[5] = {0, 0, 0, 0, 0};
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(5)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sum_sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng r(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.gaussian(10.0, 0.5);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

} // namespace
} // namespace inc
