#include "sim/span.h"

#include <gtest/gtest.h>

#include <utility>

#include "sim/trace.h"

namespace inc {
namespace spans {
namespace {

/** RAII: enabled + clean tracer for the test, restored after. */
struct TracingOn
{
    TracingOn()
    {
        reset();
        setEnabled(true);
    }
    ~TracingOn()
    {
        setEnabled(false);
        reset();
    }
};

TEST(Span, DisabledMeansNullAndZeroCost)
{
    reset();
    setEnabled(false);
    EXPECT_EQ(active(), nullptr);
    EXPECT_FALSE(enabled());
    // Scope is a no-op when disabled.
    {
        Scope scope(42, 7);
        EXPECT_EQ(global().currentParent(), 0u);
        EXPECT_EQ(global().pendingCause(), 0u);
    }
    EXPECT_EQ(global().size(), 0u);
}

TEST(Span, OpenCloseRecordAssignSequentialIds)
{
    TracingOn on;
    Tracer &t = *active();
    const uint64_t a = t.open(Kind::Iteration, -1, 0, 0, 0, "iter");
    const uint64_t b =
        t.record(Kind::Forward, 2, 0, 100, a, 0, "forward");
    const uint64_t c = t.open(Kind::Exchange, -1, 100, a, b, "ring");
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(c, 3u);
    EXPECT_EQ(t.openCount(), 2u);
    EXPECT_TRUE(t.spans()[0].open());
    EXPECT_FALSE(t.spans()[1].open());

    t.close(c, 500);
    t.close(a, 600);
    EXPECT_EQ(t.openCount(), 0u);
    EXPECT_EQ(t.spans()[2].t1, 500u);
    EXPECT_EQ(t.spans()[0].t1, 600u);
    EXPECT_EQ(t.spans()[2].parent, a);
    EXPECT_EQ(t.spans()[2].cause, b);
}

TEST(Span, ScopePushesParentAndOverridesCause)
{
    TracingOn on;
    Tracer &t = *active();
    EXPECT_EQ(t.currentParent(), 0u);
    EXPECT_EQ(t.pendingCause(), 0u);
    {
        Scope outer(5, 3);
        EXPECT_EQ(t.currentParent(), 5u);
        EXPECT_EQ(t.pendingCause(), 3u);
        {
            // Single-arg form: nested parent, cause untouched.
            Scope inner(9);
            EXPECT_EQ(t.currentParent(), 9u);
            EXPECT_EQ(t.pendingCause(), 3u);
        }
        EXPECT_EQ(t.currentParent(), 5u);
        {
            Scope inner(9, 4);
            EXPECT_EQ(t.pendingCause(), 4u);
        }
        EXPECT_EQ(t.pendingCause(), 3u);
    }
    EXPECT_EQ(t.currentParent(), 0u);
    EXPECT_EQ(t.pendingCause(), 0u);
}

TEST(Span, ArrivalCauseIsExplicitlyManaged)
{
    TracingOn on;
    Tracer &t = *active();
    EXPECT_EQ(t.arrivalCause(), 0u);
    t.setArrivalCause(11);
    EXPECT_EQ(t.arrivalCause(), 11u);
    t.clearArrivalCause();
    EXPECT_EQ(t.arrivalCause(), 0u);
}

TEST(Span, RenderCsvFormat)
{
    TracingOn on;
    Tracer &t = *active();
    const uint64_t a = t.open(Kind::Iteration, -1, 10, 0, 0, "iter 0");
    t.record(Kind::Hop, -1, 10, 20, a, 0, "host0->switch, port 1");
    t.close(a, 30);

    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("id,parent,cause,kind,blame,host,t0,t1,name"),
              std::string::npos);
    EXPECT_NE(csv.find("1,0,0,iteration,stall,-1,10,30,iter 0"),
              std::string::npos);
    // Commas inside names are replaced so the row stays 9 fields.
    EXPECT_NE(csv.find("host0->switch; port 1"), std::string::npos);
    EXPECT_EQ(csv.find("switch, port"), std::string::npos);
}

TEST(Span, KindNamesRoundTrip)
{
    for (int k = 0; k < static_cast<int>(Kind::kCount); ++k) {
        const Kind kind = static_cast<Kind>(k);
        const char *name = kindName(kind);
        ASSERT_NE(name, nullptr);
        EXPECT_EQ(kindFromName(name), kind) << name;
    }
    EXPECT_EQ(kindFromName("no_such_kind"), Kind::kCount);
}

TEST(Span, BlameMapping)
{
    EXPECT_EQ(blameOf(Kind::Forward), Blame::Compute);
    EXPECT_EQ(blameOf(Kind::SumReduce), Blame::Compute);
    EXPECT_EQ(blameOf(Kind::CodecEngine), Blame::Codec);
    EXPECT_EQ(blameOf(Kind::Hop), Blame::Wire);
    EXPECT_EQ(blameOf(Kind::TxQueue), Blame::Queue);
    EXPECT_EQ(blameOf(Kind::Retransmit), Blame::Retransmit);
    EXPECT_EQ(blameOf(Kind::RtoWait), Blame::Retransmit);
    EXPECT_EQ(blameOf(Kind::Message), Blame::Stall);
    // Gap (waiting-for-cause) categories.
    EXPECT_EQ(gapBlame(Kind::Hop), Blame::Queue);
    EXPECT_EQ(gapBlame(Kind::Retransmit), Blame::Retransmit);
    EXPECT_EQ(gapBlame(Kind::SumReduce), Blame::Stall);
    for (int b = 0; b < static_cast<int>(Blame::kCount); ++b)
        EXPECT_NE(blameName(static_cast<Blame>(b)), nullptr);
}

TEST(Span, CausalityIsEnforcedByConstruction)
{
    TracingOn on;
    Tracer &t = *active();
    const uint64_t a = t.record(Kind::Forward, 0, 0, 10, 0, 0, "a");
    const uint64_t b = t.record(Kind::Backward, 0, 10, 20, 0, a, "b");
    // Every stored cause/parent is a smaller id: acyclic by design.
    for (const Span &s : t.spans()) {
        EXPECT_LT(s.cause, s.id);
        EXPECT_LT(s.parent, s.id);
    }
    (void)b;
}

TEST(Span, TraceGainsSpanCategory)
{
    EXPECT_EQ(trace::categoryName(trace::Category::Span), "span");
}

TEST(Span, CanonicalCsvIsEmissionOrderIndependent)
{
    TracingOn on;
    // The same two-child DAG, children emitted in either order. The
    // raw stream renumbers; the ancestry-canonical stream must not
    // care (this is what lets the shuffle matrix compare permuted
    // emission orders byte-for-byte; DESIGN.md section 11).
    const auto build = [](bool swapped) {
        reset();
        Tracer &t = *active();
        const uint64_t root =
            t.open(Kind::Iteration, -1, 0, 0, 0, "iter");
        if (!swapped) {
            t.record(Kind::Forward, 1, 10, 20, root, 0, "x");
            t.record(Kind::Backward, 2, 10, 30, root, 0, "y");
        } else {
            t.record(Kind::Backward, 2, 10, 30, root, 0, "y");
            t.record(Kind::Forward, 1, 10, 20, root, 0, "x");
        }
        t.close(root, 40);
        return std::make_pair(t.renderCsv(), t.renderCanonicalCsv());
    };
    const auto [rawA, canonA] = build(false);
    const auto [rawB, canonB] = build(true);
    EXPECT_NE(rawA, rawB); // ids really did renumber
    EXPECT_EQ(canonA, canonB);
}

TEST(Span, ShardMergeIsWidthInvariantAndRewritesRefs)
{
    // Two LP shards plus a run-level lane -1 shard; the merge orders by
    // (t0, lane, emission order), assigns 1-based global ids, and
    // rewrites every ShardRef — including a forward causal reference
    // (cause on a higher lane at the same tick, which sorts later).
    Shard root(-1), lp0(0), lp1(1);
    const ShardRef iter =
        root.open(Kind::Iteration, -1, 0, {}, {}, "iter");
    const ShardRef a =
        lp0.record(Kind::TxDriver, 0, 0, 5, iter, {}, "tx.h0");
    const ShardRef b = lp1.record(Kind::Hop, -1, 0, 9, iter, a, "hop");
    const ShardRef c =
        lp0.record(Kind::RxDriver, 0, 9, 12, iter, b, "rx.h0");
    root.close(iter, 12);

    const std::vector<Span> merged =
        mergeSpanShards({&root, &lp0, &lp1});
    ASSERT_EQ(merged.size(), 4u);
    // Sorted (t0, lane): iter(lane -1, t0 0), tx(lane 0, t0 0),
    // hop(lane 1, t0 0), rx(lane 0, t0 9).
    EXPECT_EQ(merged[0].name, "iter");
    EXPECT_EQ(merged[1].name, "tx.h0");
    EXPECT_EQ(merged[2].name, "hop");
    EXPECT_EQ(merged[3].name, "rx.h0");
    for (size_t i = 0; i < merged.size(); ++i)
        EXPECT_EQ(merged[i].id, i + 1);
    EXPECT_EQ(merged[1].parent, merged[0].id);
    EXPECT_EQ(merged[2].cause, merged[1].id);
    EXPECT_EQ(merged[3].cause, merged[2].id);
    EXPECT_EQ(merged[0].t1, 12u);
    (void)c;

    // The merge is a pure function of the shard contents: feeding the
    // shard list in a different order changes nothing.
    const std::vector<Span> again =
        mergeSpanShards({&lp1, &root, &lp0});
    EXPECT_EQ(renderSpansCsv(merged), renderSpansCsv(again));
}

TEST(Span, ShardMergeAllowsForwardCauseAtEqualTick)
{
    // A lane-0 record whose cause lives on lane 1 at the same t0: the
    // cause sorts *after* its effect, so the merged stream carries a
    // forward reference — legal for loadSpansCsv and the walker.
    Shard lp0(0), lp1(1);
    const ShardRef late =
        lp1.record(Kind::SumReduce, 1, 0, 4, {}, {}, "late");
    lp0.record(Kind::Hop, -1, 0, 7, {}, late, "early");
    const std::vector<Span> merged = mergeSpanShards({&lp0, &lp1});
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].name, "early");
    EXPECT_EQ(merged[1].name, "late");
    EXPECT_EQ(merged[0].cause, merged[1].id); // forward ref survives
}

TEST(Span, ShardRendersTracerCompatibleCsv)
{
    // Shard-merged output must be byte-compatible with what a Tracer
    // emitting the same spans produces, so both feed inc_critpath.
    TracingOn on;
    reset();
    Tracer &t = *active();
    const uint64_t r = t.open(Kind::Iteration, -1, 0, 0, 0, "iter");
    t.record(Kind::Hop, 2, 1, 8, r, 0, "hop.a");
    t.close(r, 9);

    Shard shard(-1);
    const ShardRef sr =
        shard.open(Kind::Iteration, -1, 0, {}, {}, "iter");
    shard.record(Kind::Hop, 2, 1, 8, sr, {}, "hop.a");
    shard.close(sr, 9);
    EXPECT_EQ(renderSpansCsv(mergeSpanShards({&shard})), t.renderCsv());
}

TEST(Span, CanonicalCsvStillSeesAncestryChanges)
{
    TracingOn on;
    // Identical span contents, different parent edges: a canonical
    // form that dropped ancestry would call these equal; ours folds
    // each span's ancestor hashes into its line and must not.
    const auto build = [](bool chained) {
        reset();
        Tracer &t = *active();
        const uint64_t root =
            t.open(Kind::Iteration, -1, 0, 0, 0, "iter");
        const uint64_t p =
            t.record(Kind::Forward, 1, 10, 20, root, 0, "x");
        t.record(Kind::Forward, 1, 10, 20, chained ? p : root, 0, "x");
        t.close(root, 40);
        return t.renderCanonicalCsv();
    };
    EXPECT_NE(build(false), build(true));
}

} // namespace
} // namespace spans
} // namespace inc
