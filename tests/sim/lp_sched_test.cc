// Unit tests for the conservative-lookahead parallel scheduler
// (sim/lp.h): local ordering, cross-LP handoff rules, and the core
// contract — bit-identical traces for every execution width.

#include "sim/lp.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"

namespace inc {
namespace {

TEST(LpScheduler, RunsLocalEventsInTickOrder)
{
    LpScheduler sched(1, 5 * kNanosecond, 1);
    std::vector<int> order;
    sched.schedule(0, 30, [&] { order.push_back(3); });
    sched.schedule(0, 10, [&] { order.push_back(1); });
    sched.schedule(0, 20, [&] { order.push_back(2); });
    EXPECT_EQ(sched.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sched.executed(), 3u);
    EXPECT_EQ(sched.executed(0), 3u);
}

TEST(LpScheduler, CurrentLpTracksExecutingBatch)
{
    LpScheduler sched(3, kNanosecond, 1);
    EXPECT_EQ(sched.currentLp(), -1);
    std::vector<int> seen(3, -2);
    for (int lp = 0; lp < 3; ++lp)
        sched.schedule(lp, 10, [&, lp] { seen[lp] = sched.currentLp(); });
    sched.run();
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(sched.currentLp(), -1);
}

TEST(LpScheduler, CrossLpHandoffDeliversAtRequestedTick)
{
    const Tick la = 2 * kNanosecond;
    LpScheduler sched(2, la, 1);
    std::vector<std::pair<int, Tick>> trace;
    sched.schedule(0, 0, [&] {
        trace.push_back({0, sched.now(0)});
        sched.schedule(1, la, [&] { trace.push_back({1, sched.now(1)}); });
    });
    EXPECT_EQ(sched.run(), 2u);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0], (std::pair<int, Tick>{0, 0}));
    EXPECT_EQ(trace[1], (std::pair<int, Tick>{1, la}));
}

TEST(LpScheduler, SameTickCrossLpArrivalsMergeInSenderOrder)
{
    // LPs 1 and 2 both send to LP 0 at the same tick. Whatever order
    // their batches physically run in, the merge happens in sender-LP
    // order, so the arrival tie-break is fixed: sender 1 before 2.
    for (int width : {1, 2, 8}) {
        LpScheduler sched(3, kNanosecond, width);
        std::vector<int> arrivals;
        for (int src : {2, 1}) { // scheduled out of order on purpose
            sched.schedule(src, 0, [&sched, &arrivals, src] {
                sched.schedule(0, 5 * kNanosecond,
                               [&arrivals, src] { arrivals.push_back(src); });
            });
        }
        sched.run();
        EXPECT_EQ(arrivals, (std::vector<int>{1, 2}))
            << "width=" << width;
    }
}

TEST(LpSchedulerDeathTest, CrossLpBelowLookaheadPanics)
{
    LpScheduler sched(2, 10 * kNanosecond, 1);
    sched.schedule(0, 0, [&] {
        sched.schedule(1, kNanosecond, [] {}); // < lookahead: forbidden
    });
    EXPECT_DEATH(sched.run(), "lookahead");
}

TEST(LpSchedulerDeathTest, ZeroLookaheadPanics)
{
    EXPECT_DEATH(LpScheduler(2, 0, 1), "lookahead");
}

// A deterministic message-storm workload: every LP starts with a few
// events; each event does a bit of local work, occasionally reschedules
// locally, and fires messages at pseudo-random neighbours at
// pseudo-random (>= lookahead) delays. The full per-LP trace —
// (tick, payload) per executed event — is compared byte-for-byte
// across execution widths.
struct StormTrace
{
    std::vector<std::vector<std::pair<Tick, uint64_t>>> perLp;
    uint64_t events = 0;
    uint64_t rounds = 0;
};

StormTrace
runStorm(int lpCount, int width, uint64_t shuffleSeed)
{
    const Tick la = 3 * kNanosecond;
    LpScheduler sched(lpCount, la, width);
    if (shuffleSeed)
        sched.setSameTickShuffle(shuffleSeed);
    StormTrace out;
    out.perLp.resize(static_cast<size_t>(lpCount));

    // Each message carries a hash-chain payload so any reordering of
    // execution (not just of the trace) changes downstream bytes.
    std::function<void(int, uint64_t, int)> fire =
        [&](int lp, uint64_t payload, int hops) {
            auto &log = out.perLp[static_cast<size_t>(lp)];
            log.push_back({sched.now(lp), payload});
            if (hops <= 0)
                return;
            const uint64_t h = mix64(payload + static_cast<uint64_t>(hops));
            const int dst = static_cast<int>(h % static_cast<uint64_t>(lpCount));
            const Tick delay = la + h % (2 * la);
            sched.schedule(dst, sched.now(lp) + delay,
                           [&fire, dst, h, hops] { fire(dst, h, hops - 1); });
            if (h & 1) { // occasional extra local event, same tick
                sched.schedule(lp, sched.now(lp), [&out, lp, h, &sched] {
                    out.perLp[static_cast<size_t>(lp)].push_back(
                        {sched.now(lp), mix64(h)});
                });
            }
        };

    for (int lp = 0; lp < lpCount; ++lp)
        sched.schedule(lp, static_cast<Tick>(lp % 4), [&fire, lp] {
            fire(lp, mix64(static_cast<uint64_t>(lp) * 7919), 12);
        });
    out.events = sched.run();
    out.rounds = sched.rounds();
    return out;
}

TEST(LpScheduler, StormTraceBitIdenticalAcrossWidths)
{
    const StormTrace ref = runStorm(17, 1, 0);
    ASSERT_GT(ref.events, 200u);
    EXPECT_GT(ref.rounds, 0u);
    for (int width : {2, 3, 8}) {
        const StormTrace got = runStorm(17, width, 0);
        EXPECT_EQ(got.events, ref.events) << "width=" << width;
        EXPECT_EQ(got.rounds, ref.rounds) << "width=" << width;
        EXPECT_EQ(got.perLp, ref.perLp) << "width=" << width;
    }
}

TEST(LpScheduler, ShuffledStormStillWidthInvariant)
{
    // Same-tick shuffle changes the trace vs FIFO, but for a fixed
    // seed it must still be identical across widths.
    const StormTrace ref = runStorm(11, 1, 0xBEEF);
    for (int width : {2, 8}) {
        const StormTrace got = runStorm(11, width, 0xBEEF);
        EXPECT_EQ(got.perLp, ref.perLp) << "width=" << width;
    }
    // ...and a different seed must be a *different* deterministic run
    // (the storm has same-tick local events, so shuffle can bite).
    const StormTrace other = runStorm(11, 1, 0xF00D);
    EXPECT_EQ(other.events, ref.events);
}

TEST(LpScheduler, WidthZeroUsesGlobalPool)
{
    const StormTrace ref = runStorm(9, 1, 0);
    const StormTrace viaGlobal = runStorm(9, 0, 0);
    EXPECT_EQ(viaGlobal.perLp, ref.perLp);
}

TEST(LpScheduler, ReportsMaxRunnable)
{
    LpScheduler sched(4, kNanosecond, 1);
    for (int lp = 0; lp < 4; ++lp)
        sched.schedule(lp, 0, [] {});
    sched.run();
    EXPECT_EQ(sched.maxRunnable(), 4u);
}

} // namespace
} // namespace inc
