#include "sim/trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/logging.h"

namespace inc {
namespace {

std::vector<std::string> &
captured()
{
    static std::vector<std::string> v;
    return v;
}

void
capture(LogLevel, const std::string &msg)
{
    captured().push_back(msg);
}

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        captured().clear();
        setLogSink(&capture);
        for (int c = 0; c < static_cast<int>(trace::Category::kCount);
             ++c)
            trace::setEnabled(static_cast<trace::Category>(c), false);
    }

    void
    TearDown() override
    {
        setLogSink(nullptr);
        for (int c = 0; c < static_cast<int>(trace::Category::kCount);
             ++c)
            trace::setEnabled(static_cast<trace::Category>(c), false);
    }
};

TEST_F(TraceTest, DisabledCategoriesAreSilent)
{
    INC_TRACE(Net, 0, "should not appear");
    EXPECT_TRUE(captured().empty());
}

TEST_F(TraceTest, EnabledCategoryEmitsStampedRecord)
{
    trace::setEnabled(trace::Category::Net, true);
    INC_TRACE(Net, 2 * kMillisecond, "hello %d", 7);
    ASSERT_EQ(captured().size(), 1u);
    EXPECT_NE(captured()[0].find("[net]"), std::string::npos);
    EXPECT_NE(captured()[0].find("hello 7"), std::string::npos);
    EXPECT_NE(captured()[0].find("2.000000 ms"), std::string::npos);
}

TEST_F(TraceTest, CategoriesAreIndependent)
{
    trace::setEnabled(trace::Category::Comm, true);
    INC_TRACE(Net, 0, "net record");
    INC_TRACE(Comm, 0, "comm record");
    ASSERT_EQ(captured().size(), 1u);
    EXPECT_NE(captured()[0].find("comm record"), std::string::npos);
}

TEST_F(TraceTest, CategoryNames)
{
    EXPECT_EQ(trace::categoryName(trace::Category::Codec), "codec");
    EXPECT_EQ(trace::categoryName(trace::Category::Train), "train");
}

} // namespace
} // namespace inc
