#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace inc {
namespace {

/** Restore the default pool width when a test exits. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { setGlobalThreadCount(0); }
};

TEST(ThreadPool, EmptyRangeNeverInvokes)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
    pool.parallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (const int threads : {1, 2, 8}) {
        for (const size_t grain : {size_t{1}, size_t{7}, size_t{100},
                                   size_t{1000}}) {
            ThreadPool pool(threads);
            const size_t n = 237;
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(0, n, grain, [&](size_t b, size_t e) {
                ASSERT_LT(b, e);
                ASSERT_LE(e, n);
                for (size_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            });
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "index " << i << " threads " << threads
                    << " grain " << grain;
        }
    }
}

TEST(ThreadPool, NonZeroBeginOffsetsChunks)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(50);
    pool.parallelFor(10, 50, 8, [&](size_t b, size_t e) {
        ASSERT_GE(b, 10u);
        for (size_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(hits[i].load(), 0);
    for (size_t i = 10; i < 50; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, GrainZeroBehavesAsOne)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 10, 0, [&](size_t b, size_t e) {
        EXPECT_EQ(e, b + 1); // grain 1 => single-index chunks
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, GrainLargerThanRangeRunsSerialWholeRange)
{
    ThreadPool pool(8);
    int calls = 0;
    pool.parallelFor(0, 5, 100, [&](size_t b, size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 5u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, WidthOneIsExactSerialFallback)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    int calls = 0;
    pool.parallelFor(0, 1000, 10, [&](size_t b, size_t e) {
        // Serial fallback: one inline call spanning the whole range.
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1000u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ChunkBoundariesAreStatic)
{
    // The set of (begin, end) chunks must depend only on the range and
    // grain, never on the worker count.
    auto chunksFor = [](int threads) {
        ThreadPool pool(threads);
        std::mutex m;
        std::vector<std::pair<size_t, size_t>> chunks;
        pool.parallelFor(3, 118, 10, [&](size_t b, size_t e) {
            std::lock_guard<std::mutex> lock(m);
            chunks.emplace_back(b, e);
        });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const auto two = chunksFor(2);
    const auto eight = chunksFor(8);
    EXPECT_EQ(two, eight);
    ASSERT_FALSE(two.empty());
    EXPECT_EQ(two.front().first, 3u);
    EXPECT_EQ(two.back().second, 118u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [&](size_t b, size_t) {
                             if (b == 37)
                                 throw std::runtime_error("chunk 37");
                         }),
        std::runtime_error);

    // The pool stays usable after a failed job.
    std::atomic<int> count{0};
    pool.parallelFor(0, 64, 4,
                     [&](size_t b, size_t e) {
                         count.fetch_add(static_cast<int>(e - b));
                     });
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ExceptionInSerialFallbackPropagates)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(0, 4, 1,
                                  [](size_t, size_t) {
                                      throw std::runtime_error("serial");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    ThreadPool pool(4);
    const size_t outer = 6, inner = 40;
    std::vector<std::atomic<int>> hits(outer * inner);
    pool.parallelFor(0, outer, 1, [&](size_t ob, size_t oe) {
        for (size_t o = ob; o < oe; ++o) {
            // Nested call: must execute inline without deadlocking.
            pool.parallelFor(0, inner, 4, [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i)
                    hits[o * inner + i].fetch_add(1);
            });
        }
    });
    for (size_t i = 0; i < outer * inner; ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DisjointWritesAreIdenticalAcrossThreadCounts)
{
    auto fill = [](int threads) {
        ThreadPool pool(threads);
        std::vector<double> out(10'000);
        pool.parallelFor(0, out.size(), 64, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                out[i] = static_cast<double>(i) * 1.000001 + 0.5;
        });
        return out;
    };
    const auto serial = fill(1);
    EXPECT_EQ(serial, fill(2));
    EXPECT_EQ(serial, fill(8));
}

TEST(ThreadPoolGlobal, SetGlobalThreadCountResizesPool)
{
    ThreadCountGuard guard;
    setGlobalThreadCount(3);
    EXPECT_EQ(globalThreadCount(), 3);
    EXPECT_EQ(globalThreadPool().threadCount(), 3);
    setGlobalThreadCount(1);
    EXPECT_EQ(globalThreadCount(), 1);
    EXPECT_EQ(globalThreadPool().threadCount(), 1);
    setGlobalThreadCount(0); // back to hardware default
    EXPECT_GE(globalThreadCount(), 1);
}

TEST(ThreadPoolGlobal, FreeParallelForUsesGlobalPool)
{
    ThreadCountGuard guard;
    setGlobalThreadCount(4);
    std::vector<int> out(512, 0);
    parallelFor(0, out.size(), 16, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            out[i] = static_cast<int>(i);
    });
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], static_cast<int>(i));
}

} // namespace
} // namespace inc
