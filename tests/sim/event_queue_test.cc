#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace inc {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CallbacksMayReschedule)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> tick = [&] {
        if (++fired < 5)
            q.scheduleIn(7, tick);
    };
    q.schedule(0, tick);
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 28u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(21, [&] { ++fired; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(12345);
    EXPECT_EQ(q.now(), 12345u);
}

TEST(EventQueue, MaxEventsLimit)
{
    EventQueue q;
    int fired = 0;
    for (Tick t = 0; t < 10; ++t)
        q.schedule(t, [&] { ++fired; });
    EXPECT_EQ(q.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, TimeUnitConversions)
{
    EXPECT_EQ(kSecond, 1000000000000ull);
    EXPECT_DOUBLE_EQ(toSeconds(kMillisecond), 1e-3);
    EXPECT_EQ(fromSeconds(1.5), 1500ull * kMillisecond);
}

} // namespace
} // namespace inc
