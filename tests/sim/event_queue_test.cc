#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace inc {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CallbacksMayReschedule)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> tick = [&] {
        if (++fired < 5)
            q.scheduleIn(7, tick);
    };
    q.schedule(0, tick);
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 28u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(21, [&] { ++fired; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(12345);
    EXPECT_EQ(q.now(), 12345u);
}

TEST(EventQueue, MaxEventsLimit)
{
    EventQueue q;
    int fired = 0;
    for (Tick t = 0; t < 10; ++t)
        q.schedule(t, [&] { ++fired; });
    EXPECT_EQ(q.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, TimeUnitConversions)
{
    EXPECT_EQ(kSecond, 1000000000000ull);
    EXPECT_DOUBLE_EQ(toSeconds(kMillisecond), 1e-3);
    EXPECT_EQ(fromSeconds(1.5), 1500ull * kMillisecond);
}

// Regression for the const_cast-free pop: the heap must be fully
// consistent *before* a callback runs, so callbacks may schedule()
// freely mid-run — including bursts at the current tick — without
// corrupting the order of everything already pending.
TEST(EventQueue, CallbacksMayScheduleBurstsDuringRun)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        q.schedule(50, [&order, i] { order.push_back(10 + i); });
    q.schedule(10, [&] {
        order.push_back(0);
        // Same-tick burst, a later tick, and an interleaving tick.
        q.schedule(10, [&] { order.push_back(1); });
        q.schedule(90, [&] { order.push_back(99); });
        q.schedule(30, [&] {
            order.push_back(2);
            q.schedule(50, [&] { order.push_back(14); });
        });
    });
    q.run();
    EXPECT_EQ(order,
              (std::vector<int>{0, 1, 2, 10, 11, 12, 13, 14, 99}));
    EXPECT_EQ(q.now(), 90u);
}

// Pins the documented "@pre when >= now()" contract of schedule():
// scheduling into the past is an internal invariant violation and
// must panic (abort), not silently reorder time.
TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    ASSERT_EQ(q.now(), 100u);
    EXPECT_DEATH(q.schedule(99, [] {}),
                 "scheduling into the past");
}

// scheduleIn() of zero at the current tick is the boundary case of the
// same contract and must be accepted.
TEST(EventQueue, ScheduleAtNowIsAllowed)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { q.scheduleIn(0, [&] { ++fired; }); });
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
}

// runUntil boundary: an event scheduled *by a callback* at exactly
// `until` still fires within the same runUntil call.
TEST(EventQueue, RunUntilFiresEventScheduledAtBoundaryDuringRun)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(20, [&] { order.push_back(2); });
        q.schedule(21, [&] { order.push_back(3); });
    });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

// ---------------------------------------------------------------------
// Same-tick shuffle mode (the event-order race detector).

std::vector<int>
sameTickOrder(EventQueue &q, int n)
{
    std::vector<int> order;
    for (int i = 0; i < n; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    return order;
}

TEST(EventQueueShuffle, PermutesSameTickEventsDeterministically)
{
    std::vector<int> fifo;
    for (int i = 0; i < 16; ++i)
        fifo.push_back(i);

    bool anyPermuted = false;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        EventQueue a;
        a.setSameTickShuffle(seed);
        EXPECT_TRUE(a.sameTickShuffle());
        EXPECT_EQ(a.sameTickShuffleSeed(), seed);
        const std::vector<int> first = sameTickOrder(a, 16);

        // Every event still fires exactly once...
        std::vector<int> sorted = first;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, fifo);
        if (first != fifo)
            anyPermuted = true;

        // ...and the permutation is a pure function of the seed.
        EventQueue b;
        b.setSameTickShuffle(seed);
        EXPECT_EQ(sameTickOrder(b, 16), first);
    }
    // 3 seeds x 16! possible orders: at least one must differ from FIFO.
    EXPECT_TRUE(anyPermuted);
}

TEST(EventQueueShuffle, CrossTickOrderIsUntouched)
{
    EventQueue q;
    q.setSameTickShuffle(7);
    std::vector<int> ticks;
    for (int t = 5; t >= 1; --t)
        q.schedule(static_cast<Tick>(t) * 10,
                   [&ticks, t] { ticks.push_back(t); });
    q.run();
    EXPECT_EQ(ticks, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(EventQueueShuffle, ClearRestoresFifo)
{
    EventQueue q;
    q.setSameTickShuffle(42);
    q.clearSameTickShuffle();
    EXPECT_FALSE(q.sameTickShuffle());
    std::vector<int> order = sameTickOrder(q, 8);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueShuffle, EnvVarEnablesShuffle)
{
    ASSERT_EQ(setenv("INC_EQ_SHUFFLE", "1234", /*overwrite=*/1), 0);
    EventQueue q;
    ASSERT_EQ(unsetenv("INC_EQ_SHUFFLE"), 0);
    EXPECT_TRUE(q.sameTickShuffle());
    EXPECT_EQ(q.sameTickShuffleSeed(), 1234u);

    // Same seed via the setter must reproduce the env-driven order.
    EventQueue manual;
    manual.setSameTickShuffle(1234);
    const std::vector<int> a = sameTickOrder(q, 12);
    const std::vector<int> b = sameTickOrder(manual, 12);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace inc
