/**
 * @file
 * The metrics registry: counter/gauge/histogram semantics, shard
 * merging, exporter formats, the enabled/disabled gate, and the
 * determinism contract — snapshots must be bit-identical across thread
 * counts because parallel regions tally into per-chunk shards merged in
 * fixed chunk order.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/codec.h"
#include "core/compressed_stream.h"
#include "sim/metrics.h"
#include "sim/random.h"
#include "sim/thread_pool.h"

namespace inc {
namespace {

/** RAII: enable the global registry, restore + clear on exit. */
struct ScopedMetrics
{
    ScopedMetrics()
    {
        metrics::reset();
        metrics::setEnabled(true);
    }
    ~ScopedMetrics()
    {
        metrics::setEnabled(false);
        metrics::reset();
    }
};

TEST(MetricsRegistry, CountersGaugesAccumulate)
{
    metrics::Registry reg;
    reg.add("a.count", 2);
    reg.add("a.count", 3);
    reg.set("a.gauge", 1.5);
    reg.set("a.gauge", 2.5); // last write wins
    EXPECT_EQ(reg.counter("a.count"), 5u);
    EXPECT_DOUBLE_EQ(reg.gauge("a.gauge"), 2.5);
    EXPECT_EQ(reg.counter("never.touched"), 0u);
}

TEST(MetricsRegistry, HistogramBucketsAndEdges)
{
    metrics::Registry reg;
    // 4 buckets of width 2.5 over [0, 10).
    reg.observe("h", -0.1, 0.0, 10.0, 4); // underflow
    reg.observe("h", 0.0, 0.0, 10.0, 4);  // bucket 0
    reg.observe("h", 2.5, 0.0, 10.0, 4);  // bucket 1
    reg.observe("h", 9.99, 0.0, 10.0, 4); // bucket 3
    reg.observe("h", 10.0, 0.0, 10.0, 4); // overflow
    reg.observe("h", 42.0, 0.0, 10.0, 4); // overflow

    const metrics::HistogramMetric *h = reg.histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 6u);
    EXPECT_EQ(h->underflow(), 1u);
    EXPECT_EQ(h->overflow(), 2u);
    ASSERT_EQ(h->buckets().size(), 4u);
    EXPECT_EQ(h->buckets()[0], 1u);
    EXPECT_EQ(h->buckets()[1], 1u);
    EXPECT_EQ(h->buckets()[2], 0u);
    EXPECT_EQ(h->buckets()[3], 1u);
    EXPECT_DOUBLE_EQ(h->sum(), -0.1 + 0.0 + 2.5 + 9.99 + 10.0 + 42.0);
}

TEST(MetricsRegistry, ShardMergePreservesTotals)
{
    metrics::HistogramMetric a(0.0, 8.0, 8), b(0.0, 8.0, 8);
    a.observe(1.5);
    a.observe(7.5);
    b.observe(1.5);
    b.observe(-1.0);

    metrics::Registry reg;
    reg.mergeHistogram("m", a);
    reg.mergeHistogram("m", b);
    const metrics::HistogramMetric *m = reg.histogram("m");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->count(), 4u);
    EXPECT_EQ(m->buckets()[1], 2u);
    EXPECT_EQ(m->buckets()[7], 1u);
    EXPECT_EQ(m->underflow(), 1u);
}

TEST(MetricsRegistry, DisabledMeansNullActive)
{
    metrics::setEnabled(false);
    EXPECT_EQ(metrics::active(), nullptr);
    metrics::setEnabled(true);
    EXPECT_EQ(metrics::active(), &metrics::global());
    metrics::setEnabled(false);
}

TEST(MetricsRegistry, RenderFormatsAreStable)
{
    metrics::Registry reg;
    reg.add("z.last", 1);
    reg.add("a.first", 2);
    reg.set("g", 0.5);
    reg.observe("h", 1.0, 0.0, 2.0, 2);

    const std::string json = reg.renderJson();
    // Keys render sorted (std::map), so snapshots diff cleanly.
    EXPECT_LT(json.find("a.first"), json.find("z.last"));
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);

    const std::string csv = reg.renderCsv();
    EXPECT_NE(csv.find("counter,a.first,2"), std::string::npos);
    EXPECT_NE(csv.find("gauge,g,0.5"), std::string::npos);
    EXPECT_NE(csv.find("histogram,h.count,1"), std::string::npos);
}

/** Run a metrics-instrumented parallel workload at @p threads and
 *  return the JSON snapshot. */
std::string
codecSnapshotAtThreads(int threads)
{
    const int before = globalThreadCount();
    setGlobalThreadCount(threads);
    ScopedMetrics scoped;

    Rng rng(7);
    std::vector<float> values(50000);
    for (auto &f : values)
        f = static_cast<float>(rng.gaussian(0.0, 0.05));

    const InceptionnCodec codec(10);
    codec.measure(values);
    std::vector<float> rt = values;
    codec.roundtrip(rt);
    encodeStream(codec, values);
    encodeStreamChunked(codec, values, 4096);

    const std::string json = metrics::global().renderJson();
    setGlobalThreadCount(before);
    return json;
}

TEST(MetricsDeterminism, SnapshotIdenticalAcrossThreadCounts)
{
    const std::string serial = codecSnapshotAtThreads(1);
    const std::string parallel = codecSnapshotAtThreads(8);
    EXPECT_EQ(serial, parallel);
    // And rerunning at the same count reproduces the bytes exactly.
    EXPECT_EQ(parallel, codecSnapshotAtThreads(8));
}

TEST(MetricsDeterminism, CodecCountersMatchTagHistogram)
{
    ScopedMetrics scoped;
    Rng rng(11);
    std::vector<float> values(10000);
    for (auto &f : values)
        f = static_cast<float>(rng.gaussian(0.0, 0.05));

    const InceptionnCodec codec(10);
    TagHistogram hist;
    codec.measure(values, &hist);

    const metrics::Registry &reg = metrics::global();
    EXPECT_EQ(reg.counter("codec.values"), hist.total());
    EXPECT_EQ(reg.counter("codec.tag.zero"),
              hist.counts[static_cast<size_t>(Tag::Zero)]);
    EXPECT_EQ(reg.counter("codec.tag.bits8"),
              hist.counts[static_cast<size_t>(Tag::Bits8)]);
    EXPECT_EQ(reg.counter("codec.tag.bits16"),
              hist.counts[static_cast<size_t>(Tag::Bits16)]);
    EXPECT_EQ(reg.counter("codec.tag.nocompress"),
              hist.counts[static_cast<size_t>(Tag::NoCompress)]);
}

// ---------------------------------------------------------------------
// ExactSum: histogram sums must be a function of the observed multiset,
// never of observation order (the same-tick shuffle matrix caught plain
// `sum += x` drifting in its last bits; see DESIGN.md section 11).

TEST(ExactSum, ExactForSimpleValues)
{
    metrics::ExactSum s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.5);
    EXPECT_EQ(s.value(), 6.5);
    s.add(-6.5);
    EXPECT_EQ(s.value(), 0.0);
}

TEST(ExactSum, OrderIndependentToTheLastBit)
{
    // A sample set chosen so naive float summation differs by order:
    // tiny terms vanish against the big one unless they combine first.
    const std::vector<double> samples = {1e16, 1.0,    -1e16, 0.25,
                                         3.125, -0.375, 1e-3, 2e8};
    double naiveFwd = 0.0, naiveRev = 0.0;
    for (double v : samples)
        naiveFwd += v;
    for (auto it = samples.rbegin(); it != samples.rend(); ++it)
        naiveRev += *it;
    // (sanity of the test itself: the naive orders really do disagree)
    EXPECT_NE(naiveFwd, naiveRev);

    metrics::ExactSum fwd, rev, interleaved;
    for (double v : samples)
        fwd.add(v);
    for (auto it = samples.rbegin(); it != samples.rend(); ++it)
        rev.add(*it);
    for (size_t i = 0; i < samples.size(); i += 2)
        interleaved.add(samples[i]);
    for (size_t i = 1; i < samples.size(); i += 2)
        interleaved.add(samples[i]);

    const double expected = fwd.value();
    EXPECT_EQ(rev.value(), expected);
    EXPECT_EQ(interleaved.value(), expected);
    // The exact total of this set is 2e8 + 4.0 - 0.375 + 1e-3 exactly
    // representable? Compare against long-double reference instead:
    long double ref = 0.0L;
    for (double v : samples)
        ref += static_cast<long double>(v);
    EXPECT_NEAR(expected, static_cast<double>(ref), 1e-9);
}

TEST(ExactSum, CatastrophicCancellationIsExact)
{
    metrics::ExactSum s;
    s.add(1e300);
    s.add(1.0);
    s.add(-1e300);
    EXPECT_EQ(s.value(), 1.0); // naive summation yields 0.0
    s.add(5e-324); // smallest subnormal folds in exactly too
    EXPECT_GT(s.value(), 1.0 - 1e-15);
}

TEST(ExactSum, MergeMatchesSequentialAdds)
{
    metrics::ExactSum a, b, all;
    const std::vector<double> va = {3.25, -1e10, 7e-5};
    const std::vector<double> vb = {1e10, 0.125, -3.25};
    for (double v : va) {
        a.add(v);
        all.add(v);
    }
    for (double v : vb) {
        b.add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.value(), all.value());
}

TEST(ExactSum, NonFiniteSamplesPoisonDeterministically)
{
    metrics::ExactSum pos, mixed, nan;
    pos.add(1.0);
    pos.add(std::numeric_limits<double>::infinity());
    EXPECT_TRUE(std::isinf(pos.value()));
    EXPECT_GT(pos.value(), 0.0);

    mixed.add(std::numeric_limits<double>::infinity());
    mixed.add(-std::numeric_limits<double>::infinity());
    EXPECT_TRUE(std::isnan(mixed.value()));

    nan.add(std::numeric_limits<double>::quiet_NaN());
    nan.add(42.0);
    EXPECT_TRUE(std::isnan(nan.value()));
}

TEST(ExactSum, HistogramSumIsOrderIndependent)
{
    metrics::HistogramMetric fwd(0.0, 300.0, 8);
    metrics::HistogramMetric rev(0.0, 300.0, 8);
    std::vector<double> samples;
    Rng rng(99);
    for (int i = 0; i < 1000; ++i)
        samples.push_back(rng.uniform(0.0, 300.0));
    for (double v : samples)
        fwd.observe(v);
    for (auto it = samples.rbegin(); it != samples.rend(); ++it)
        rev.observe(*it);
    EXPECT_EQ(fwd.sum(), rev.sum());
    EXPECT_EQ(fwd.mean(), rev.mean());
    EXPECT_EQ(fwd.count(), rev.count());
}

} // namespace
} // namespace inc
