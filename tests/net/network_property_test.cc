/**
 * @file
 * Randomized property tests over the cluster simulator: conservation,
 * per-flow FIFO ordering, monotonicity under load, and invariance of
 * totals to event interleavings.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/network.h"
#include "sim/random.h"

namespace inc {
namespace {

struct FlowRecord
{
    int src, dst;
    uint64_t bytes;
    Tick delivered = 0;
};

class NetworkProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(NetworkProperty, RandomScheduleInvariants)
{
    Rng rng(GetParam());
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 6;
    cfg.nicConfig.hasCompressionEngine = true;
    Network net(events, cfg);

    // Launch 40 random transfers at random times.
    auto records = std::make_shared<std::vector<FlowRecord>>();
    uint64_t total_bytes = 0;
    size_t completed = 0;
    for (int i = 0; i < 40; ++i) {
        FlowRecord r;
        r.src = static_cast<int>(rng.below(6));
        do {
            r.dst = static_cast<int>(rng.below(6));
        } while (r.dst == r.src);
        r.bytes = 1 + rng.below(3 * 1000 * 1000);
        total_bytes += r.bytes;
        const Tick start = rng.below(5 * kMillisecond);
        const size_t idx = records->size();
        records->push_back(r);
        events.schedule(start, [&net, &rng, records, idx, &completed] {
            FlowRecord &rec = (*records)[idx];
            const bool compress = rng.below(2) == 1;
            net.transfer({rec.src, rec.dst, rec.bytes,
                          compress ? kCompressTos : kDefaultTos,
                          compress ? 4.0 : 1.0},
                         [records, idx, &completed](Tick t) {
                             (*records)[idx].delivered = t;
                             ++completed;
                         });
        });
    }
    events.run();

    // 1. Every transfer completes exactly once.
    EXPECT_EQ(completed, records->size());
    // 2. Conservation: the network accounted for every byte.
    EXPECT_EQ(net.deliveredBytes(), total_bytes);
    // 3. Causality: nothing delivers at tick 0 and all before now().
    for (const auto &r : *records) {
        EXPECT_GT(r.delivered, 0u);
        EXPECT_LE(r.delivered, events.now());
    }
    // 4. Physics: no flow beats the line rate by more than the
    //    store-and-forward pipelining allows.
    for (const auto &r : *records) {
        const double secs = toSeconds(r.delivered);
        const double min_secs =
            static_cast<double>(r.bytes) * 8.0 /
            (4.0 * cfg.linkBitsPerSecond); // best case: 4x compression
        EXPECT_GE(secs * 1.001, min_secs) << r.bytes;
    }
    // 5. Link accounting: carried bits imply busy time at line rate.
    for (int i = 0; i < 6; ++i) {
        const Link &up = net.uplink(i);
        const double expected_busy = static_cast<double>(up.bitsCarried()) /
                                     cfg.linkBitsPerSecond;
        EXPECT_NEAR(toSeconds(up.busyTime()), expected_busy,
                    expected_busy * 0.001 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperty,
                         ::testing::Values(1, 2, 3, 42, 999));

TEST(NetworkProperty, SameSourceSameDestinationIsFifo)
{
    Rng rng(7);
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);

    std::vector<int> order;
    for (int i = 0; i < 12; ++i) {
        const uint64_t bytes = 1 + rng.below(500000);
        net.transfer({0, 1, bytes, kDefaultTos, 1.0},
                     [&order, i](Tick) { order.push_back(i); });
    }
    events.run();
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], static_cast<int>(i));
}

TEST(NetworkProperty, MoreLoadNeverFinishesEarlier)
{
    auto finish = [](int extra_flows) {
        EventQueue events;
        NetworkConfig cfg;
        cfg.nodes = 4;
        Network net(events, cfg);
        Tick probe = 0;
        for (int i = 0; i < extra_flows; ++i)
            net.transfer({2, 1, 2 * 1000 * 1000, kDefaultTos, 1.0},
                         [](Tick) {});
        net.transfer({0, 1, 1000 * 1000, kDefaultTos, 1.0},
                     [&](Tick t) { probe = t; });
        events.run();
        return probe;
    };
    const Tick alone = finish(0);
    const Tick contended = finish(3);
    EXPECT_GE(contended, alone);
}

} // namespace
} // namespace inc
