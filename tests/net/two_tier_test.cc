#include <gtest/gtest.h>

#include "net/network.h"

namespace inc {
namespace {

NetworkConfig
twoTier(int nodes, int per_rack, double core_gbps)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.hostsPerRack = per_rack;
    cfg.coreLinkBitsPerSecond = core_gbps * 1e9;
    return cfg;
}

double
transferSeconds(NetworkConfig cfg, int src, int dst, uint64_t bytes)
{
    EventQueue events;
    Network net(events, cfg);
    double secs = 0;
    net.transfer({src, dst, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { secs = toSeconds(t); });
    events.run();
    return secs;
}

TEST(TwoTier, RackAccounting)
{
    EventQueue events;
    Network net(events, twoTier(8, 4, 10.0));
    EXPECT_EQ(net.racks(), 2);
    EXPECT_EQ(net.rackOf(0), 0);
    EXPECT_EQ(net.rackOf(3), 0);
    EXPECT_EQ(net.rackOf(4), 1);
    EXPECT_EQ(net.rackOf(7), 1);
}

TEST(TwoTier, SingleSwitchHasOneRack)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 4;
    Network net(events, cfg);
    EXPECT_EQ(net.racks(), 1);
    EXPECT_EQ(net.rackOf(3), 0);
}

TEST(TwoTier, IntraRackMatchesSingleSwitch)
{
    const uint64_t bytes = 10 * 1000 * 1000;
    NetworkConfig flat;
    flat.nodes = 8;
    const double single = transferSeconds(flat, 0, 1, bytes);
    const double intra = transferSeconds(twoTier(8, 4, 10.0), 0, 1, bytes);
    EXPECT_DOUBLE_EQ(intra, single);
}

TEST(TwoTier, CrossRackAddsCoreHops)
{
    const uint64_t bytes = 10 * 1000 * 1000;
    const double intra = transferSeconds(twoTier(8, 4, 10.0), 0, 1, bytes);
    const double cross = transferSeconds(twoTier(8, 4, 10.0), 0, 5, bytes);
    // Equal-speed core: only extra latency/forwarding, so nearly equal.
    EXPECT_GT(cross, intra);
    EXPECT_LT(cross, intra * 1.05);
}

TEST(TwoTier, OversubscribedCoreGatesCrossRack)
{
    const uint64_t bytes = 10 * 1000 * 1000;
    const double fast = transferSeconds(twoTier(8, 4, 10.0), 0, 5, bytes);
    const double slow = transferSeconds(twoTier(8, 4, 2.5), 0, 5, bytes);
    // 4x slower core: cross-rack transfer ~4x slower.
    EXPECT_NEAR(slow / fast, 4.0, 0.3);
    // Intra-rack traffic is untouched by the slow core.
    const double intra = transferSeconds(twoTier(8, 4, 2.5), 0, 1, bytes);
    EXPECT_NEAR(intra, transferSeconds(twoTier(8, 4, 10.0), 0, 1, bytes),
                intra * 0.01);
}

TEST(TwoTier, CrossRackFlowsContendOnCoreLink)
{
    // Two flows leaving rack 0 share its ToR uplink.
    EventQueue events;
    Network net(events, twoTier(8, 4, 10.0));
    const uint64_t bytes = 10 * 1000 * 1000;
    Tick last = 0;
    int pending = 2;
    auto cb = [&](Tick t) {
        last = std::max(last, t);
        --pending;
    };
    net.transfer({0, 4, bytes, kDefaultTos, 1.0}, cb);
    net.transfer({1, 5, bytes, kDefaultTos, 1.0}, cb);
    events.run();
    EXPECT_EQ(pending, 0);

    const double together = toSeconds(last);
    const double alone = transferSeconds(twoTier(8, 4, 10.0), 0, 4, bytes);
    EXPECT_GT(together, alone * 1.8);
}

TEST(TwoTier, RejectsPartialRacks)
{
    EventQueue events;
    EXPECT_DEATH({ Network net(events, twoTier(6, 4, 10.0)); },
                 "racks");
}

} // namespace
} // namespace inc
