#include "net/socket.h"

#include <gtest/gtest.h>

#include "net/faults.h"

namespace inc {
namespace {

NetworkConfig
withEngines(int nodes = 4)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.nicConfig.hasCompressionEngine = true;
    return cfg;
}

TEST(SimSocket, HandshakeDelaysFirstSend)
{
    EventQueue events;
    Network net(events, withEngines());
    SocketStack stack(net);
    auto sock = stack.connect(0, 1);
    EXPECT_EQ(sock->establishedAt(), stack.roundTrip(0, 1) * 3 / 2);

    Tick delivered = 0;
    sock->send(1460, 1.0, [&](Tick t) { delivered = t; });
    events.run();
    EXPECT_GT(delivered, sock->establishedAt());
}

TEST(SimSocket, TosGatesCompression)
{
    EventQueue events;
    Network net(events, withEngines());
    SocketStack stack(net);
    const uint64_t bytes = 10 * 1000 * 1000;

    auto plain = stack.connect(0, 1);
    Tick t_plain = 0;
    plain->send(bytes, 8.0, [&](Tick t) { t_plain = t; });
    events.run();

    const Tick start = events.now();
    auto comp = stack.connect(2, 3);
    comp->setOption(SocketOption::IpTos, kCompressTos);
    EXPECT_EQ(comp->tos(), kCompressTos);
    Tick t_comp = 0;
    comp->send(bytes, 8.0, [&](Tick t) { t_comp = t - start; });
    events.run();

    EXPECT_LT(t_comp, t_plain);
}

TEST(SimSocket, TosCanToggleOnTheFly)
{
    // The paper: "we can call the setsockopt function to set the ToS
    // field or update it on the fly".
    EventQueue events;
    Network net(events, withEngines());
    SocketStack stack(net);
    auto sock = stack.connect(0, 1);

    const uint64_t bytes = 5 * 1000 * 1000;
    Tick first = 0, second = 0, third = 0;
    sock->send(bytes, 8.0, [&](Tick t) { first = t; });
    sock->setOption(SocketOption::IpTos, kCompressTos);
    sock->send(bytes, 8.0, [&](Tick t) { second = t; });
    sock->setOption(SocketOption::IpTos, kDefaultTos);
    sock->send(bytes, 8.0, [&](Tick t) { third = t; });
    events.run();

    const double plain1 = toSeconds(first);
    const double comp = toSeconds(second - first);
    const double plain2 = toSeconds(third - second);
    EXPECT_LT(comp, plain2 * 0.5);
    EXPECT_NEAR(plain2, plain1, plain1 * 0.2); // handshake in the first
}

TEST(SimSocket, InOrderDelivery)
{
    EventQueue events;
    Network net(events, withEngines());
    SocketStack stack(net);
    auto sock = stack.connect(0, 1);

    std::vector<int> order;
    sock->send(5 * 1000 * 1000, 1.0, [&](Tick) { order.push_back(1); });
    sock->send(1460, 1.0, [&](Tick) { order.push_back(2); });
    events.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sock->stats().sends, 2u);
    EXPECT_EQ(sock->stats().payloadBytes, 5 * 1000 * 1000 + 1460u);
}

TEST(SimSocket, ReceiveSideCountersOnIdealPath)
{
    EventQueue events;
    Network net(events, withEngines());
    SocketStack stack(net);
    auto sock = stack.connect(0, 1);

    const uint64_t bytes = 3 * 1460 + 100;
    sock->send(bytes, 1.0, [](Tick) {});
    events.run();
    const SocketStats s = sock->stats();
    EXPECT_EQ(s.deliveredBytes, bytes);
    EXPECT_EQ(s.deliveredPackets, packetsFor(bytes));
    EXPECT_EQ(s.retransmits, 0u);
    EXPECT_EQ(s.dropsObserved, 0u);
}

TEST(SimSocket, ReliableStackRecoversFromLoss)
{
    EventQueue events;
    Network net(events, withEngines());
    FaultConfig fc;
    fc.defaultLink.loss = LossKind::Bernoulli;
    fc.defaultLink.lossRate = 0.02;
    FaultModel faults(fc);
    net.attachFaults(&faults);

    SocketStack stack(net, /*reliable=*/true);
    auto sock = stack.connect(0, 1);

    const uint64_t bytes = 2 * 1000 * 1000;
    std::vector<int> order;
    sock->send(bytes, 1.0, [&](Tick) { order.push_back(1); });
    sock->send(bytes, 1.0, [&](Tick) { order.push_back(2); });
    events.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    const SocketStats s = sock->stats();
    EXPECT_EQ(s.deliveredBytes, 2 * bytes);
    EXPECT_GT(s.retransmits, 0u);
    EXPECT_GT(s.dropsObserved, 0u);
}

TEST(SocketStack, TotalStatsSumAcrossSockets)
{
    EventQueue events;
    Network net(events, withEngines());
    SocketStack stack(net);
    auto a = stack.connect(0, 1);
    auto b = stack.connect(2, 3);
    a->send(1460, 1.0, [](Tick) {});
    b->send(2920, 1.0, [](Tick) {});
    events.run();
    const SocketStats total = stack.totalStats();
    EXPECT_EQ(total.sends, 2u);
    EXPECT_EQ(total.payloadBytes, 1460u + 2920u);
    EXPECT_EQ(total.deliveredBytes, 1460u + 2920u);
    EXPECT_EQ(total.deliveredPackets, 3u);
}

TEST(SimSocket, RejectsWideTosValues)
{
    EventQueue events;
    Network net(events, withEngines());
    SocketStack stack(net);
    auto sock = stack.connect(0, 1);
    EXPECT_DEATH(sock->setOption(SocketOption::IpTos, 0x1234),
                 "8-bit");
}

} // namespace
} // namespace inc
