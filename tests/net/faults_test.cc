/**
 * @file
 * FaultModel unit tests plus the Network datagram path's interaction
 * with it: loss statistics, stateless-draw determinism, outage windows,
 * Gilbert-Elliott burstiness, and finite-queue tail drops.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/faults.h"
#include "net/network.h"

namespace inc {
namespace {

FaultConfig
bernoulliConfig(double rate, uint64_t seed = 0xFA017)
{
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.defaultLink.loss = LossKind::Bernoulli;
    cfg.defaultLink.lossRate = rate;
    return cfg;
}

TEST(FaultModel, BernoulliLossRateIsRespected)
{
    FaultModel model(bernoulliConfig(0.01));
    const uint64_t n = 200000;
    uint64_t drops = 0;
    for (uint64_t seq = 0; seq < n; ++seq) {
        if (isDrop(model.judge(0, LinkDir::Up, 0, 1, seq, 0)))
            ++drops;
    }
    const double rate = static_cast<double>(drops) / static_cast<double>(n);
    EXPECT_NEAR(rate, 0.01, 0.002);
    EXPECT_EQ(model.stats().packetsJudged, n);
    EXPECT_EQ(model.stats().randomDrops, drops);
}

TEST(FaultModel, StatelessDrawsAreOrderIndependent)
{
    // The same (host, dir, flow, seq, attempt) key must produce the
    // same fate in any judgment order and in a fresh model.
    FaultModel forward(bernoulliConfig(0.05));
    FaultModel backward(bernoulliConfig(0.05));
    const uint64_t n = 5000;
    std::vector<PacketFate> fwd(n), bwd(n);
    for (uint64_t seq = 0; seq < n; ++seq)
        fwd[seq] = forward.judge(2, LinkDir::Down, 0, 7, seq, 0);
    for (uint64_t seq = n; seq-- > 0;)
        bwd[seq] = backward.judge(2, LinkDir::Down, 0, 7, seq, 0);
    EXPECT_EQ(fwd, bwd);
}

TEST(FaultModel, RetriesAreJudgedIndependently)
{
    // A packet dropped on attempt 0 must have an independent draw on
    // attempt 1 — otherwise retransmissions could never get through.
    FaultModel model(bernoulliConfig(0.5, 99));
    uint64_t recovered = 0;
    uint64_t firstDrops = 0;
    for (uint64_t seq = 0; seq < 2000; ++seq) {
        if (!isDrop(model.judge(0, LinkDir::Up, 0, 1, seq, 0)))
            continue;
        ++firstDrops;
        if (!isDrop(model.judge(0, LinkDir::Up, 0, 1, seq, 1)))
            ++recovered;
    }
    EXPECT_GT(firstDrops, 800u);
    // About half the retries should survive a 50% channel.
    EXPECT_GT(recovered, firstDrops / 4);
    EXPECT_LT(recovered, firstDrops * 3 / 4);
}

TEST(FaultModel, DistinctFlowsDrawIndependently)
{
    FaultModel model(bernoulliConfig(0.5));
    int differs = 0;
    for (uint64_t seq = 0; seq < 1000; ++seq) {
        const bool a = isDrop(model.judge(0, LinkDir::Up, 0, 1, seq, 0));
        const bool b = isDrop(model.judge(0, LinkDir::Up, 0, 2, seq, 0));
        differs += a != b;
    }
    // Two flows sharing a link must not share a drop schedule.
    EXPECT_GT(differs, 300);
}

TEST(FaultModel, OutageWindowsDropEverything)
{
    FaultConfig cfg;
    cfg.linkOutages.push_back(
        {1, {10 * kMillisecond, 20 * kMillisecond}});
    cfg.hostOutages.push_back(
        {2, {5 * kMillisecond, 6 * kMillisecond}});
    FaultModel model(cfg);

    EXPECT_TRUE(model.cableUp(1, 9 * kMillisecond));
    EXPECT_FALSE(model.cableUp(1, 10 * kMillisecond));
    EXPECT_FALSE(model.cableUp(1, 19 * kMillisecond));
    EXPECT_TRUE(model.cableUp(1, 20 * kMillisecond)); // half-open

    EXPECT_EQ(model.judge(1, LinkDir::Up, 15 * kMillisecond, 0, 0, 0),
              PacketFate::LinkDown);
    EXPECT_EQ(model.judge(2, LinkDir::Down, 5 * kMillisecond, 0, 0, 0),
              PacketFate::HostDown);
    EXPECT_EQ(model.judge(1, LinkDir::Up, 25 * kMillisecond, 0, 0, 0),
              PacketFate::Delivered);
    EXPECT_EQ(model.stats().outageDrops, 2u);
}

TEST(FaultModel, DegradationWindowAddsLossOnlyInside)
{
    FaultConfig cfg;
    LinkDegradation d;
    d.host = 0;
    d.window = {0, 1 * kMillisecond};
    d.extraLossRate = 0.5;
    cfg.degradations.push_back(d);
    FaultModel model(cfg);

    uint64_t inside = 0, outside = 0;
    for (uint64_t seq = 0; seq < 4000; ++seq) {
        if (isDrop(model.judge(0, LinkDir::Up, 0, 1, seq, 0)))
            ++inside;
        if (isDrop(model.judge(0, LinkDir::Up, 2 * kMillisecond, 1, seq,
                               0)))
            ++outside;
    }
    EXPECT_NEAR(static_cast<double>(inside) / 4000.0, 0.5, 0.05);
    EXPECT_EQ(outside, 0u);
}

TEST(FaultModel, GilbertElliottProducesBursts)
{
    FaultConfig cfg;
    cfg.defaultLink.loss = LossKind::GilbertElliott;
    cfg.defaultLink.ge.pGoodToBad = 0.01;
    cfg.defaultLink.ge.pBadToGood = 0.2;
    cfg.defaultLink.ge.lossGood = 0.0;
    cfg.defaultLink.ge.lossBad = 0.7;
    FaultModel model(cfg);

    const uint64_t n = 100000;
    uint64_t drops = 0, runs = 0;
    bool prev = false;
    for (uint64_t seq = 0; seq < n; ++seq) {
        const bool dropped =
            isDrop(model.judge(0, LinkDir::Up, 0, 1, seq, 0));
        drops += dropped;
        runs += dropped && !prev;
        prev = dropped;
    }
    const double rate = static_cast<double>(drops) / static_cast<double>(n);
    EXPECT_NEAR(rate, cfg.defaultLink.ge.averageLoss(), 0.01);
    // Bursty: mean run length well above the i.i.d. value (~1/(1-p)).
    const double meanRun =
        static_cast<double>(drops) / static_cast<double>(runs);
    EXPECT_GT(meanRun, 1.5);
    EXPECT_EQ(model.stats().burstDrops, drops);
}

TEST(FaultModel, CorruptionIsCountedSeparately)
{
    FaultConfig cfg;
    cfg.defaultLink.corruptionRate = 0.02;
    FaultModel model(cfg);
    uint64_t corrupted = 0;
    for (uint64_t seq = 0; seq < 50000; ++seq) {
        if (model.judge(0, LinkDir::Up, 0, 1, seq, 0) ==
            PacketFate::Corrupted)
            ++corrupted;
    }
    EXPECT_NEAR(static_cast<double>(corrupted) / 50000.0, 0.02, 0.005);
    EXPECT_EQ(model.stats().corruptions, corrupted);
    EXPECT_EQ(model.stats().randomDrops, 0u);
}

TEST(Datagram, LosslessFlightDeliversEverything)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);

    DatagramRequest req;
    req.src = 0;
    req.dst = 1;
    req.firstSeq = 10;
    req.packetCount = 64;
    req.flowId = 1;
    bool arrived = false;
    net.transferDatagram(req, [&](const DatagramResult &res) {
        arrived = true;
        EXPECT_EQ(res.firstSeq, 10u);
        EXPECT_EQ(res.packetCount, 64u);
        EXPECT_TRUE(res.lostSeqs.empty());
        EXPECT_GT(res.when, 0u);
    });
    events.run();
    EXPECT_TRUE(arrived);
}

TEST(Datagram, AttachedFaultsDropPackets)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    FaultModel model(bernoulliConfig(0.1));
    net.attachFaults(&model);

    uint64_t lost = 0, flights = 0;
    for (int i = 0; i < 20; ++i) {
        DatagramRequest req;
        req.src = 0;
        req.dst = 1;
        req.firstSeq = static_cast<uint64_t>(i) * 100;
        req.packetCount = 100;
        req.flowId = 3;
        net.transferDatagram(req, [&](const DatagramResult &res) {
            ++flights;
            lost += res.lostSeqs.size();
        });
    }
    events.run();
    EXPECT_EQ(flights, 20u);
    EXPECT_GT(lost, 100u); // ~200 expected at 10% over 2000 packets
    EXPECT_LT(lost, 400u);
    EXPECT_EQ(model.stats().drops(), lost);
}

TEST(Datagram, FiniteNicQueueTailDrops)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    cfg.nicConfig.txQueuePackets = 24;
    Network net(events, cfg);

    // Two back-to-back flights: the first fills the uplink, so the
    // second finds a ~16-packet backlog, gets only the free ring slots,
    // and tail-drops the rest.
    uint64_t firstLost = 0, secondLost = 0;
    bool secondArrived = false;
    DatagramRequest req;
    req.src = 0;
    req.dst = 1;
    req.packetCount = 16;
    req.flowId = 1;
    net.transferDatagram(req, [&](const DatagramResult &res) {
        firstLost = res.lostSeqs.size();
    });
    DatagramRequest second = req;
    second.firstSeq = 16;
    second.packetCount = 16;
    net.transferDatagram(second, [&](const DatagramResult &res) {
        secondArrived = true;
        secondLost = res.lostSeqs.size();
    });
    events.run();
    EXPECT_EQ(firstLost, 0u);
    EXPECT_TRUE(secondArrived);
    EXPECT_GT(secondLost, 0u);
    EXPECT_LT(secondLost, 16u);
    EXPECT_EQ(net.host(0).nic().stats().txQueueDrops, secondLost);
}

TEST(Datagram, FiniteSwitchQueueTailDrops)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 3;
    cfg.switchConfig.queueDepthPackets = 72;
    Network net(events, cfg);

    // Two hosts blast the same destination; the second flight meets a
    // ~63-packet downlink backlog, so only the remaining queue slots
    // admit it and the tail drops.
    uint64_t secondLost = 0;
    bool secondArrived = false;
    DatagramRequest first;
    first.src = 0;
    first.dst = 2;
    first.packetCount = 64;
    first.flowId = 1;
    net.transferDatagram(first, [&](const DatagramResult &res) {
        EXPECT_TRUE(res.lostSeqs.empty());
    });
    DatagramRequest second;
    second.src = 1;
    second.dst = 2;
    second.packetCount = 16;
    second.flowId = 2;
    net.transferDatagram(second, [&](const DatagramResult &res) {
        secondArrived = true;
        secondLost = res.lostSeqs.size();
    });
    events.run();
    EXPECT_TRUE(secondArrived);
    EXPECT_GT(secondLost, 0u);
    EXPECT_LT(secondLost, 16u);
    EXPECT_EQ(net.fabric().queueDrops(), secondLost);
}

} // namespace
} // namespace inc
