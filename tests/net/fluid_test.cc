#include "net/fluid.h"

#include <gtest/gtest.h>

namespace inc {
namespace {

constexpr uint64_t kMB = 1000 * 1000;

NetworkConfig
base(int nodes = 4, bool engines = false)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    cfg.nicConfig.hasCompressionEngine = engines;
    return cfg;
}

double
packetModelSeconds(NetworkConfig cfg, const TransferRequest &req)
{
    EventQueue events;
    Network net(events, cfg);
    double secs = 0;
    net.transfer(req, [&](Tick t) { secs = toSeconds(t); });
    events.run();
    return secs;
}

double
fluidSeconds(NetworkConfig cfg, const TransferRequest &req)
{
    EventQueue events;
    FluidNetwork net(events, cfg);
    double secs = 0;
    net.transfer(req, [&](Tick t) { secs = toSeconds(t); });
    events.run();
    return secs;
}

TEST(Fluid, SingleFlowMatchesPacketModel)
{
    const TransferRequest req{0, 1, 20 * kMB, kDefaultTos, 1.0};
    const double fluid = fluidSeconds(base(), req);
    const double packet = packetModelSeconds(base(), req);
    EXPECT_NEAR(fluid, packet, packet * 0.02);
}

TEST(Fluid, CompressedFlowMatchesPacketModel)
{
    const TransferRequest req{0, 1, 20 * kMB, kCompressTos, 8.0};
    const double fluid = fluidSeconds(base(4, true), req);
    const double packet = packetModelSeconds(base(4, true), req);
    EXPECT_NEAR(fluid, packet, packet * 0.03);
}

TEST(Fluid, TwoFlowsShareABottleneckFairly)
{
    // Both flows into host 2: each gets half the downlink; both finish
    // at ~2x the solo time (vs FIFO, where the first finishes at 1x).
    EventQueue events;
    FluidNetwork net(events, base());
    const uint64_t bytes = 10 * kMB;
    Tick t_a = 0, t_b = 0;
    net.transfer({0, 2, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { t_a = t; });
    net.transfer({1, 2, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { t_b = t; });
    events.run();

    const double solo =
        fluidSeconds(base(), {0, 2, bytes, kDefaultTos, 1.0});
    EXPECT_NEAR(toSeconds(t_a), 2.0 * solo, solo * 0.06);
    EXPECT_NEAR(toSeconds(t_b), 2.0 * solo, solo * 0.06);
}

TEST(Fluid, LateArrivalReallocatesBandwidth)
{
    // Flow A runs alone for half its life, then B joins: A finishes at
    // ~1.5x its solo time, B at ~2x its own (it shared all along until
    // A left).
    EventQueue events;
    FluidNetwork net(events, base());
    const uint64_t bytes = 10 * kMB;
    const double solo =
        fluidSeconds(base(), {0, 2, bytes, kDefaultTos, 1.0});

    Tick t_a = 0;
    net.transfer({0, 2, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { t_a = t; });
    events.schedule(fromSeconds(solo / 2), [&] {
        net.transfer({1, 2, bytes, kDefaultTos, 1.0}, [](Tick) {});
    });
    events.run();
    EXPECT_NEAR(toSeconds(t_a), 1.5 * solo, solo * 0.08);
}

TEST(Fluid, DisjointFlowsDoNotInteract)
{
    EventQueue events;
    FluidNetwork net(events, base());
    const uint64_t bytes = 10 * kMB;
    Tick t_a = 0, t_b = 0;
    net.transfer({0, 1, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { t_a = t; });
    net.transfer({2, 3, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { t_b = t; });
    events.run();
    EXPECT_NEAR(toSeconds(t_a), toSeconds(t_b),
                toSeconds(t_a) * 0.01);
}

TEST(Fluid, ConservationAcrossManyFlows)
{
    EventQueue events;
    FluidNetwork net(events, base(6));
    uint64_t total = 0;
    int pending = 0;
    for (int s = 0; s < 6; ++s) {
        for (int d = 0; d < 6; ++d) {
            if (s == d)
                continue;
            const uint64_t bytes = kMB * static_cast<uint64_t>(1 + s + d);
            total += bytes;
            ++pending;
            net.transfer({s, d, bytes, kDefaultTos, 1.0},
                         [&pending](Tick) { --pending; });
        }
    }
    events.run();
    EXPECT_EQ(pending, 0);
    EXPECT_EQ(net.deliveredBytes(), total);
    EXPECT_EQ(net.activeFlows(), 0u);
}

TEST(Fluid, TwoTierOversubscriptionGatesCrossRack)
{
    NetworkConfig cfg = base(8);
    cfg.hostsPerRack = 4;
    cfg.coreLinkBitsPerSecond = 2.5e9;
    const double cross =
        fluidSeconds(cfg, {0, 5, 10 * kMB, kDefaultTos, 1.0});
    const double intra =
        fluidSeconds(cfg, {0, 1, 10 * kMB, kDefaultTos, 1.0});
    EXPECT_NEAR(cross / intra, 4.0, 0.4);
}

TEST(Fluid, StragglerLinkOverride)
{
    NetworkConfig cfg = base();
    cfg.linkSpeedOverrides = {{1, 1e9}};
    const double slow =
        fluidSeconds(cfg, {0, 1, 10 * kMB, kDefaultTos, 1.0});
    const double fast =
        fluidSeconds(cfg, {0, 2, 10 * kMB, kDefaultTos, 1.0});
    EXPECT_NEAR(slow / fast, 10.0, 1.0);
}

} // namespace
} // namespace inc
