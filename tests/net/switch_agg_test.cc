/**
 * @file
 * Unit tests of the switch aggregation engine (net/switch_agg.h): the
 * fold/forward cycle cost model, busy-until serialization on the
 * shared ALU, slot-pool accounting, and the die-area estimate. All
 * timing checks use a 1 GHz clock so one cycle is exactly 1000 ticks
 * and expected values are integers by construction.
 */

#include "net/switch_agg.h"

#include <gtest/gtest.h>

namespace inc {
namespace {

SwitchAggConfig
ghzConfig()
{
    SwitchAggConfig cfg;
    cfg.slots = 4;
    cfg.slotBytes = 1 << 20;
    cfg.clockHz = 1e9; // 1 cycle == 1 ns == 1000 ticks
    cfg.foldBytesPerCycle = 64;
    cfg.codecBytesPerCycle = 32;
    cfg.pipelineCycles = 8;
    return cfg;
}

constexpr Tick kCycle = 1 * kNanosecond;

TEST(SwitchAggEngine, FoldCostIsPipelinePlusWidthQuotient)
{
    SwitchAggEngine eng(ghzConfig());
    // 6400 bytes / 64 B-per-cycle = 100 cycles + 8 pipeline fill.
    EXPECT_EQ(eng.fold(0, 6400, false), 108 * kCycle);
    EXPECT_EQ(eng.stats().folds, 1u);
    EXPECT_EQ(eng.stats().foldedBytes, 6400u);
    EXPECT_EQ(eng.stats().cycles, 108u);
    EXPECT_EQ(eng.stats().codecBytes, 0u);
}

TEST(SwitchAggEngine, FoldRoundsPartialWordsUp)
{
    SwitchAggEngine eng(ghzConfig());
    // 65 bytes needs 2 fold cycles (ceil), not 1.
    EXPECT_EQ(eng.fold(0, 65, false), (8 + 2) * kCycle);
}

TEST(SwitchAggEngine, CodedFoldChargesTheDecodeDatapath)
{
    SwitchAggEngine eng(ghzConfig());
    // Decode at 32 B/cycle runs before the add: +200 cycles for 6400 B.
    EXPECT_EQ(eng.fold(0, 6400, true), (108 + 200) * kCycle);
    EXPECT_EQ(eng.stats().codecBytes, 6400u);
}

TEST(SwitchAggEngine, ForwardSkipsPipelineFillAndReencodesCoded)
{
    SwitchAggEngine eng(ghzConfig());
    // Readout has no pipeline fill: 100 cycles raw, +200 codec coded.
    EXPECT_EQ(eng.forward(0, 6400, false), 100 * kCycle);
    EXPECT_EQ(eng.stats().forwards, 1u);
    SwitchAggEngine coded(ghzConfig());
    EXPECT_EQ(coded.forward(0, 6400, true), 300 * kCycle);
    EXPECT_EQ(coded.stats().codecBytes, 6400u);
}

TEST(SwitchAggEngine, BusyUntilSerializesTheSharedAlu)
{
    SwitchAggEngine eng(ghzConfig());
    const Tick first = eng.fold(0, 6400, false);
    EXPECT_EQ(eng.busyUntil(), first);
    // A second fold arriving while the ALU is busy queues behind it...
    const Tick second = eng.fold(0, 6400, false);
    EXPECT_EQ(second, first + 108 * kCycle);
    // ...and one arriving after the engine drained starts on arrival.
    const Tick later = second + 50 * kCycle;
    EXPECT_EQ(eng.fold(later, 64, false), later + 9 * kCycle);
}

TEST(SwitchAggEngine, SlotPoolExhaustsAndRecovers)
{
    SwitchAggConfig cfg = ghzConfig();
    cfg.slots = 2;
    SwitchAggEngine eng(cfg);
    EXPECT_TRUE(eng.enabled());
    EXPECT_EQ(eng.freeSlots(), 2);
    EXPECT_TRUE(eng.tryAcquireSlot(1024));
    EXPECT_TRUE(eng.tryAcquireSlot(1024));
    EXPECT_EQ(eng.slotsInUse(), 2);
    EXPECT_FALSE(eng.tryAcquireSlot(1024)); // pool exhausted
    eng.noteSlotWait();
    eng.releaseSlot();
    EXPECT_TRUE(eng.tryAcquireSlot(1024));
    EXPECT_EQ(eng.stats().peakSlotsInUse, 2u);
    EXPECT_EQ(eng.stats().slotWaits, 1u);
}

TEST(SwitchAggEngine, ZeroSlotsDisablesTheEngine)
{
    SwitchAggConfig cfg = ghzConfig();
    cfg.slots = 0;
    SwitchAggEngine eng(cfg);
    EXPECT_FALSE(eng.enabled());
}

TEST(SwitchAggEngine, AreaScalesWithSramAndLanes)
{
    const SwitchAggConfig base = ghzConfig();
    SwitchAggEngine eng(base);
    // 4 slots * 1 MiB = 33.55 Mbit SRAM at 0.2 mm^2/Mbit, plus one
    // 64 B/cycle fold lane and half a codec lane at 0.05 mm^2 each.
    const double sramMbit = 4.0 * (1 << 20) * 8.0 / 1e6;
    EXPECT_DOUBLE_EQ(eng.areaMm2(), sramMbit * 0.2 + 1.5 * 0.05);

    SwitchAggConfig bigger = base;
    bigger.slots = 8;
    EXPECT_GT(SwitchAggEngine(bigger).areaMm2(), eng.areaMm2());
    SwitchAggConfig wider = base;
    wider.foldBytesPerCycle = 128;
    EXPECT_GT(SwitchAggEngine(wider).areaMm2(), eng.areaMm2());
}

} // namespace
} // namespace inc
