#include "net/network.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace inc {
namespace {

NetworkConfig
smallConfig(int nodes = 4)
{
    NetworkConfig cfg;
    cfg.nodes = nodes;
    return cfg;
}

TEST(Packetization, CountsAndOverheads)
{
    EXPECT_EQ(mssFor(1500), 1460u);
    EXPECT_EQ(packetsFor(0), 0u);
    EXPECT_EQ(packetsFor(1), 1u);
    EXPECT_EQ(packetsFor(1460), 1u);
    EXPECT_EQ(packetsFor(1461), 2u);
    EXPECT_EQ(packetsFor(14600), 10u);
}

TEST(Packetization, CompressedSegmentKeepsPacketCount)
{
    // Paper Sec. VIII-C: compression shrinks wire payload but NOT the
    // packet count or header overhead.
    SegmentMeta plain{14600, 14600, kDefaultTos};
    SegmentMeta comp{14600, 1460, kCompressTos};
    EXPECT_EQ(plain.packets(), comp.packets());
    const uint64_t header_bits =
        plain.packets() * (kHeaderBytes + kFramingBytes) * 8;
    EXPECT_EQ(plain.wireBits(), 14600u * 8 + header_bits);
    EXPECT_EQ(comp.wireBits(), 1460u * 8 + header_bits);
}

TEST(Link, SerializesAtLineRate)
{
    Link l("test", 10e9, 500 * kNanosecond);
    // 10 Gb/s: 10,000 bits take 1 us.
    EXPECT_EQ(l.serializationTime(10000), 1 * kMicrosecond);
    const Tick arrival = l.transmit(0, 10000);
    EXPECT_EQ(arrival, 1 * kMicrosecond + 500 * kNanosecond);
}

TEST(Link, BackToBackQueues)
{
    Link l("test", 10e9, 0);
    const Tick a = l.transmit(0, 10000);
    const Tick b = l.transmit(0, 10000); // queues behind the first
    EXPECT_EQ(a, 1 * kMicrosecond);
    EXPECT_EQ(b, 2 * kMicrosecond);
    EXPECT_EQ(l.bitsCarried(), 20000u);
    EXPECT_EQ(l.busyTime(), 2 * kMicrosecond);
}

TEST(Link, IdleGapsDoNotAccumulate)
{
    Link l("test", 10e9, 0);
    l.transmit(0, 10000);
    const Tick b = l.transmit(5 * kMicrosecond, 10000);
    EXPECT_EQ(b, 6 * kMicrosecond);
    EXPECT_EQ(l.busyTime(), 2 * kMicrosecond);
}

TEST(Nic, PlanTxUncompressed)
{
    Nic nic(NicConfig{});
    const SegmentMeta m = nic.planTx(14600, kDefaultTos, 1.0);
    EXPECT_EQ(m.wirePayloadBytes, 14600u);
    EXPECT_EQ(nic.stats().txPackets, 10u);
}

TEST(Nic, CompressionRequiresEngineAndTos)
{
    NicConfig with_engine;
    with_engine.hasCompressionEngine = true;
    Nic nic(with_engine);
    // Wrong ToS: no compression even with the engine.
    EXPECT_EQ(nic.planTx(1000, kDefaultTos, 10.0).wirePayloadBytes, 1000u);
    // Right ToS: payload shrinks by the codec ratio.
    EXPECT_EQ(nic.planTx(1000, kCompressTos, 10.0).wirePayloadBytes, 100u);

    Nic no_engine{NicConfig{}};
    EXPECT_FALSE(no_engine.compresses(kCompressTos));
}

TEST(Nic, EngineBandwidthMatchesPaper)
{
    NicConfig cfg;
    cfg.hasCompressionEngine = true;
    Nic nic(cfg);
    // 256 bit/cycle at 100 MHz = 25.6 Gb/s: above the 10 GbE line rate.
    EXPECT_DOUBLE_EQ(nic.engineBitsPerSecond(), 25.6e9);
}

TEST(Network, SingleTransferTimingIsPlausible)
{
    EventQueue events;
    Network net(events, smallConfig());

    const uint64_t bytes = 10 * 1000 * 1000; // 10 MB
    Tick delivered = 0;
    net.transfer({0, 1, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { delivered = t; });
    events.run();

    // Lower bound: two serializations (store-and-forward) would be 2x,
    // but segments pipeline, so expect just over one serialization of
    // payload+headers at 10 Gb/s: >= 8 ms, and well under 12 ms.
    const double secs = toSeconds(delivered);
    EXPECT_GT(secs, 0.008);
    EXPECT_LT(secs, 0.012);
}

TEST(Network, CompressionShortensTransfer)
{
    EventQueue events;
    NetworkConfig cfg = smallConfig();
    cfg.nicConfig.hasCompressionEngine = true;
    Network net(events, cfg);

    const uint64_t bytes = 10 * 1000 * 1000;
    Tick plain = 0, comp = 0;
    net.transfer({0, 1, bytes, kDefaultTos, 1.0},
                 [&](Tick t) { plain = t; });
    events.run();
    const Tick t0 = events.now();
    net.transfer({2, 3, bytes, kCompressTos, 10.0},
                 [&](Tick t) { comp = t - t0; });
    events.run();

    EXPECT_LT(comp, plain);
    // Headers/packet costs are not compressed, so speedup < 10x.
    EXPECT_GT(comp, plain / 10);
}

TEST(Network, CompressionNeedsBothEndpointEngines)
{
    EventQueue events;
    NetworkConfig cfg = smallConfig();
    cfg.nicConfig.hasCompressionEngine = false;
    Network net(events, cfg);

    const uint64_t bytes = 1000 * 1000;
    Tick without = 0;
    net.transfer({0, 1, bytes, kCompressTos, 10.0},
                 [&](Tick t) { without = t; });
    events.run();

    EventQueue events2;
    Network net2(events2, smallConfig());
    Tick plain = 0;
    net2.transfer({0, 1, bytes, kDefaultTos, 1.0},
                  [&](Tick t) { plain = t; });
    events2.run();

    EXPECT_EQ(without, plain); // ToS ignored without engines
}

TEST(Network, SharedDownlinkSerializesFanIn)
{
    // Two senders to one receiver: the receiver's downlink is the
    // bottleneck, so the pair takes ~2x one transfer.
    EventQueue events;
    Network net(events, smallConfig());
    const uint64_t bytes = 5 * 1000 * 1000;

    Tick one = 0;
    net.transfer({0, 1, bytes, kDefaultTos, 1.0}, [&](Tick t) { one = t; });
    events.run();

    EventQueue events2;
    Network net2(events2, smallConfig());
    Tick last = 0;
    int pending = 2;
    auto cb = [&](Tick t) {
        last = std::max(last, t);
        --pending;
    };
    net2.transfer({0, 2, bytes, kDefaultTos, 1.0}, cb);
    net2.transfer({1, 2, bytes, kDefaultTos, 1.0}, cb);
    events2.run();
    EXPECT_EQ(pending, 0);
    EXPECT_GT(last, 2 * one - 2 * one / 10);
}

TEST(Network, DisjointPairsRunConcurrently)
{
    EventQueue events;
    Network net(events, smallConfig());
    const uint64_t bytes = 5 * 1000 * 1000;

    Tick a = 0, b = 0;
    net.transfer({0, 1, bytes, kDefaultTos, 1.0}, [&](Tick t) { a = t; });
    net.transfer({2, 3, bytes, kDefaultTos, 1.0}, [&](Tick t) { b = t; });
    events.run();
    // Same start, non-overlapping resources: both finish at ~the same
    // time.
    const double ratio = toSeconds(b) / toSeconds(a);
    EXPECT_NEAR(ratio, 1.0, 0.01);
}

TEST(Network, SegmentationGranularityDoesNotChangeTotals)
{
    // Timing must be (nearly) invariant to the simulation batching knob.
    const uint64_t bytes = 3 * 1000 * 1000 + 777;
    Tick coarse = 0, fine = 0;

    {
        EventQueue events;
        NetworkConfig cfg = smallConfig();
        cfg.segmentBytes = 512 * 1460;
        Network net(events, cfg);
        net.transfer({0, 1, bytes, kDefaultTos, 1.0},
                     [&](Tick t) { coarse = t; });
        events.run();
    }
    {
        EventQueue events;
        NetworkConfig cfg = smallConfig();
        cfg.segmentBytes = 16 * 1460;
        Network net(events, cfg);
        net.transfer({0, 1, bytes, kDefaultTos, 1.0},
                     [&](Tick t) { fine = t; });
        events.run();
    }
    // Finer segments pipeline store-and-forward better; totals stay
    // within a few percent.
    EXPECT_NEAR(toSeconds(coarse), toSeconds(fine),
                0.05 * toSeconds(coarse));
}

TEST(Network, JitterIsDeterministicAndNonNegative)
{
    auto deliver = [](double sigma, uint64_t seed) {
        EventQueue events;
        NetworkConfig cfg;
        cfg.nodes = 2;
        cfg.jitterStddevSeconds = sigma;
        cfg.jitterSeed = seed;
        Network net(events, cfg);
        Tick t = 0;
        net.transfer({0, 1, 5 * 1000 * 1000, kDefaultTos, 1.0},
                     [&](Tick tt) { t = tt; });
        events.run();
        return t;
    };
    const Tick clean = deliver(0.0, 1);
    const Tick jittered = deliver(50e-6, 1);
    EXPECT_GE(jittered, clean); // |N| delays only
    EXPECT_LT(toSeconds(jittered - clean), 50e-6 * 40); // bounded-ish
    // Deterministic per seed, different across seeds.
    EXPECT_EQ(deliver(50e-6, 1), jittered);
    EXPECT_NE(deliver(50e-6, 2), jittered);
}

TEST(Network, HostComputeSerializes)
{
    EventQueue events;
    Network net(events, smallConfig());
    Host &h = net.host(0);
    const Tick a = h.compute(0, 100);
    const Tick b = h.compute(50, 100);
    EXPECT_EQ(a, 100u);
    EXPECT_EQ(b, 200u);
    EXPECT_EQ(h.cpuBusyTime(), 200u);
}

} // namespace
} // namespace inc
