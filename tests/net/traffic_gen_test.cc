/**
 * @file
 * Deterministic background-traffic generation (net/traffic_gen.h): the
 * pattern is a pure function of (seed, host count, config), extending
 * the flow count never reshuffles existing flows, and a replay over a
 * real Network delivers every byte with bit-reproducible timing.
 */

#include "net/traffic_gen.h"

#include <string>

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/metrics.h"

namespace inc {
namespace {

bool
sameFlow(const TrafficFlow &a, const TrafficFlow &b)
{
    return a.src == b.src && a.dst == b.dst && a.flowId == b.flowId &&
           a.messageBytes == b.messageBytes && a.messages == b.messages &&
           a.startAt == b.startAt;
}

TEST(TrafficGen, PatternIsAPureFunctionOfSeedAndHosts)
{
    TrafficGenConfig cfg;
    cfg.flows = 16;
    const std::vector<TrafficFlow> a = generateTrafficPattern(cfg, 32);
    const std::vector<TrafficFlow> b = generateTrafficPattern(cfg, 32);
    ASSERT_EQ(a.size(), 16u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameFlow(a[i], b[i])) << "flow " << i;

    cfg.seed = 0x1234;
    const std::vector<TrafficFlow> c = generateTrafficPattern(cfg, 32);
    bool anyDiffer = false;
    for (size_t i = 0; i < a.size(); ++i)
        anyDiffer = anyDiffer || !sameFlow(a[i], c[i]);
    EXPECT_TRUE(anyDiffer) << "different seeds drew identical patterns";
}

TEST(TrafficGen, EndpointsAreValidAndStartsStaggered)
{
    TrafficGenConfig cfg;
    cfg.flows = 64;
    cfg.startAt = 7 * kMicrosecond;
    const std::vector<TrafficFlow> flows = generateTrafficPattern(cfg, 8);
    for (size_t i = 0; i < flows.size(); ++i) {
        const TrafficFlow &f = flows[i];
        EXPECT_GE(f.src, 0);
        EXPECT_LT(f.src, 8);
        EXPECT_GE(f.dst, 0);
        EXPECT_LT(f.dst, 8);
        EXPECT_NE(f.src, f.dst);
        EXPECT_EQ(f.flowId, cfg.flowIdBase + i);
        EXPECT_EQ(f.startAt, cfg.startAt +
                                 static_cast<Tick>(i) * cfg.interStart);
    }
}

TEST(TrafficGen, AddingFlowsNeverReshufflesEarlierOnes)
{
    TrafficGenConfig small;
    small.flows = 4;
    TrafficGenConfig big = small;
    big.flows = 12;
    const std::vector<TrafficFlow> a = generateTrafficPattern(small, 16);
    const std::vector<TrafficFlow> b = generateTrafficPattern(big, 16);
    ASSERT_EQ(b.size(), 12u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameFlow(a[i], b[i])) << "flow " << i;
}

TrafficReplayStats
replayOnce(int queueDepth, int ecnThreshold)
{
    EventQueue events;
    NetworkConfig nc;
    nc.nodes = 8;
    nc.switchConfig.queueDepthPackets = queueDepth;
    nc.switchConfig.ecnThresholdPackets = ecnThreshold;
    Network net(events, nc);
    TrafficGenConfig cfg;
    cfg.flows = 6;
    cfg.messagesPerFlow = 3;
    cfg.messageBytes = 512 * 1024;
    TrafficReplay replay(net, cfg);
    replay.start();
    events.run();
    EXPECT_TRUE(replay.finished());
    return replay.stats();
}

TEST(TrafficReplay, DeliversEveryByteOverAnIdealFabric)
{
    const TrafficReplayStats s =
        replayOnce(kUnboundedQueue, kUnboundedQueue);
    EXPECT_EQ(s.messagesDelivered, 6u * 3u);
    EXPECT_EQ(s.bytesDelivered, 6u * 3u * 512 * 1024);
    // No queue, no fault model: nothing can be lost. (Retransmits may
    // still be nonzero — congestion-inflated RTTs can fire spurious
    // RTOs — but they are duplicates, not recoveries.)
    EXPECT_EQ(s.dropsObserved, 0u);
    EXPECT_GT(s.finish, 0u);
}

TEST(TrafficReplay, ReplayTimingIsBitReproducible)
{
    const TrafficReplayStats a = replayOnce(256, 64);
    const TrafficReplayStats b = replayOnce(256, 64);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.packetsSent, b.packetsSent);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.ecnCePackets, b.ecnCePackets);
}

/** RAII: enabled + clean metrics registry, restored after. */
struct MetricsOn
{
    MetricsOn()
    {
        metrics::reset();
        metrics::setEnabled(true);
    }
    ~MetricsOn()
    {
        metrics::setEnabled(false);
        metrics::reset();
    }
};

TEST(TrafficReplay, PerTenantOfferedLoadCounters)
{
    MetricsOn on;
    const TrafficReplayStats s = replayOnce(256, 64);
    EXPECT_GT(s.messagesDelivered, 0u);

    const metrics::Registry &reg = metrics::global();
    uint64_t bytes = 0, packets = 0, messages = 0;
    for (int t = 0; t < 6; ++t) {
        const std::string tenant =
            "net.tgen.tenant" + std::to_string(t);
        // Every tenant generated its full configured load...
        EXPECT_EQ(reg.counter(tenant + ".gen_bytes"),
                  3u * 512 * 1024)
            << tenant;
        EXPECT_EQ(reg.counter(tenant + ".gen_messages"), 3u)
            << tenant;
        EXPECT_GT(reg.counter(tenant + ".gen_packets"), 0u) << tenant;
        bytes += reg.counter(tenant + ".gen_bytes");
        packets += reg.counter(tenant + ".gen_packets");
        messages += reg.counter(tenant + ".gen_messages");
    }
    // ...and the totals account for every first-time delivery. Packets
    // on the wire include retransmits, so generated <= sent.
    EXPECT_EQ(bytes, s.bytesDelivered);
    EXPECT_EQ(messages, s.messagesDelivered);
    EXPECT_LE(packets, s.packetsSent);
}

TEST(TrafficReplay, PerQueueEcnMarkCounters)
{
    MetricsOn on;
    // Shallow ECN threshold: the replay must push some downlink queue
    // beyond it.
    const TrafficReplayStats s = replayOnce(256, 8);
    EXPECT_GT(s.ecnCePackets, 0u);

    const metrics::Registry &reg = metrics::global();
    const uint64_t total = reg.counter("net.switch.ecn_marks");
    EXPECT_GT(total, 0u);
    // The per-output-queue breakdown sums exactly to the aggregate.
    uint64_t perQueue = 0;
    int queuesMarked = 0;
    for (int h = 0; h < 8; ++h) {
        const uint64_t q = reg.counter("net.switch.ecn_marks.to_host" +
                                       std::to_string(h));
        perQueue += q;
        queuesMarked += q > 0 ? 1 : 0;
    }
    EXPECT_EQ(perQueue, total);
    EXPECT_GT(queuesMarked, 0);
}

} // namespace
} // namespace inc
