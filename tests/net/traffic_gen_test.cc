/**
 * @file
 * Deterministic background-traffic generation (net/traffic_gen.h): the
 * pattern is a pure function of (seed, host count, config), extending
 * the flow count never reshuffles existing flows, and a replay over a
 * real Network delivers every byte with bit-reproducible timing.
 */

#include "net/traffic_gen.h"

#include <gtest/gtest.h>

#include "net/network.h"

namespace inc {
namespace {

bool
sameFlow(const TrafficFlow &a, const TrafficFlow &b)
{
    return a.src == b.src && a.dst == b.dst && a.flowId == b.flowId &&
           a.messageBytes == b.messageBytes && a.messages == b.messages &&
           a.startAt == b.startAt;
}

TEST(TrafficGen, PatternIsAPureFunctionOfSeedAndHosts)
{
    TrafficGenConfig cfg;
    cfg.flows = 16;
    const std::vector<TrafficFlow> a = generateTrafficPattern(cfg, 32);
    const std::vector<TrafficFlow> b = generateTrafficPattern(cfg, 32);
    ASSERT_EQ(a.size(), 16u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameFlow(a[i], b[i])) << "flow " << i;

    cfg.seed = 0x1234;
    const std::vector<TrafficFlow> c = generateTrafficPattern(cfg, 32);
    bool anyDiffer = false;
    for (size_t i = 0; i < a.size(); ++i)
        anyDiffer = anyDiffer || !sameFlow(a[i], c[i]);
    EXPECT_TRUE(anyDiffer) << "different seeds drew identical patterns";
}

TEST(TrafficGen, EndpointsAreValidAndStartsStaggered)
{
    TrafficGenConfig cfg;
    cfg.flows = 64;
    cfg.startAt = 7 * kMicrosecond;
    const std::vector<TrafficFlow> flows = generateTrafficPattern(cfg, 8);
    for (size_t i = 0; i < flows.size(); ++i) {
        const TrafficFlow &f = flows[i];
        EXPECT_GE(f.src, 0);
        EXPECT_LT(f.src, 8);
        EXPECT_GE(f.dst, 0);
        EXPECT_LT(f.dst, 8);
        EXPECT_NE(f.src, f.dst);
        EXPECT_EQ(f.flowId, cfg.flowIdBase + i);
        EXPECT_EQ(f.startAt, cfg.startAt +
                                 static_cast<Tick>(i) * cfg.interStart);
    }
}

TEST(TrafficGen, AddingFlowsNeverReshufflesEarlierOnes)
{
    TrafficGenConfig small;
    small.flows = 4;
    TrafficGenConfig big = small;
    big.flows = 12;
    const std::vector<TrafficFlow> a = generateTrafficPattern(small, 16);
    const std::vector<TrafficFlow> b = generateTrafficPattern(big, 16);
    ASSERT_EQ(b.size(), 12u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameFlow(a[i], b[i])) << "flow " << i;
}

TrafficReplayStats
replayOnce(int queueDepth, int ecnThreshold)
{
    EventQueue events;
    NetworkConfig nc;
    nc.nodes = 8;
    nc.switchConfig.queueDepthPackets = queueDepth;
    nc.switchConfig.ecnThresholdPackets = ecnThreshold;
    Network net(events, nc);
    TrafficGenConfig cfg;
    cfg.flows = 6;
    cfg.messagesPerFlow = 3;
    cfg.messageBytes = 512 * 1024;
    TrafficReplay replay(net, cfg);
    replay.start();
    events.run();
    EXPECT_TRUE(replay.finished());
    return replay.stats();
}

TEST(TrafficReplay, DeliversEveryByteOverAnIdealFabric)
{
    const TrafficReplayStats s =
        replayOnce(kUnboundedQueue, kUnboundedQueue);
    EXPECT_EQ(s.messagesDelivered, 6u * 3u);
    EXPECT_EQ(s.bytesDelivered, 6u * 3u * 512 * 1024);
    // No queue, no fault model: nothing can be lost. (Retransmits may
    // still be nonzero — congestion-inflated RTTs can fire spurious
    // RTOs — but they are duplicates, not recoveries.)
    EXPECT_EQ(s.dropsObserved, 0u);
    EXPECT_GT(s.finish, 0u);
}

TEST(TrafficReplay, ReplayTimingIsBitReproducible)
{
    const TrafficReplayStats a = replayOnce(256, 64);
    const TrafficReplayStats b = replayOnce(256, 64);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.packetsSent, b.packetsSent);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.ecnCePackets, b.ecnCePackets);
}

} // namespace
} // namespace inc
