/**
 * @file
 * Reliable-channel tests: exactly-once in-order delivery over lossy
 * fabrics, Reno congestion behaviour, and the headline acceptance
 * property — a ring all-reduce at 1% Bernoulli loss finishes with a
 * bit-identical reduction, strictly later than lossless, and
 * bit-reproducibly across runs and INC_THREADS settings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "comm/comm_world.h"
#include "comm/ring_allreduce.h"
#include "core/ring_schedule.h"
#include "net/faults.h"
#include "net/network.h"
#include "net/reliable.h"
#include "sim/random.h"
#include "sim/thread_pool.h"

namespace inc {
namespace {

FaultConfig
bernoulli(double rate, uint64_t seed = 0xFA017)
{
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.defaultLink.loss = LossKind::Bernoulli;
    cfg.defaultLink.lossRate = rate;
    return cfg;
}

TEST(ReliableChannel, LosslessDeliversInOrderWithoutRetransmits)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    ReliableChannel ch(net, 0, 1, {});

    std::vector<int> order;
    std::vector<Tick> when;
    for (int i = 0; i < 5; ++i) {
        ch.send(300 * 1000, 1.0, [&, i](Tick t) {
            order.push_back(i);
            when.push_back(t);
        });
    }
    events.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    for (size_t i = 1; i < when.size(); ++i)
        EXPECT_GE(when[i], when[i - 1]);
    EXPECT_TRUE(ch.idle());
    EXPECT_EQ(ch.stats().retransmits, 0u);
    EXPECT_EQ(ch.stats().timeouts, 0u);
    EXPECT_EQ(ch.stats().messagesDelivered, 5u);
    // Exactly the queued payload was delivered, once.
    EXPECT_EQ(ch.stats().deliveredBytes, 5u * 300 * 1000);
    EXPECT_EQ(ch.stats().duplicatePackets, 0u);
}

TEST(ReliableChannel, RecoversFromBernoulliLoss)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    FaultModel faults(bernoulli(0.02));
    net.attachFaults(&faults);
    ReliableChannel ch(net, 0, 1, {});

    const uint64_t bytes = 2 * 1000 * 1000;
    uint64_t delivered = 0;
    Tick finish = 0;
    for (int i = 0; i < 4; ++i) {
        ch.send(bytes, 1.0, [&](Tick t) {
            ++delivered;
            finish = t;
        });
    }
    events.run();
    EXPECT_EQ(delivered, 4u);
    EXPECT_TRUE(ch.idle());
    EXPECT_GT(ch.stats().retransmits, 0u);
    EXPECT_GT(ch.stats().dropsObserved, 0u);
    EXPECT_EQ(ch.stats().deliveredBytes, 4 * bytes);
    EXPECT_EQ(ch.stats().messagesDelivered, 4u);
    EXPECT_GT(finish, 0u);
}

TEST(ReliableChannel, SurvivesHeavyLossViaTimeouts)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    FaultModel faults(bernoulli(0.3, 7));
    net.attachFaults(&faults);
    ReliableChannel ch(net, 0, 1, {});

    bool done = false;
    ch.send(500 * 1000, 1.0, [&](Tick) { done = true; });
    events.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(ch.idle());
    // 30% loss collapses windows hard enough that RTOs must fire.
    EXPECT_GT(ch.stats().retransmits, 10u);
}

TEST(ReliableChannel, SurvivesTransientLinkOutage)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    FaultConfig fc;
    // The cable dies just after the transfer starts and comes back 5 ms
    // later; only RTO backoff can carry the connection across.
    fc.linkOutages.push_back(
        {0, {50 * kMicrosecond, 5 * kMillisecond}});
    FaultModel faults(fc);
    net.attachFaults(&faults);
    ReliableChannel ch(net, 0, 1, {});

    Tick finish = 0;
    ch.send(1000 * 1000, 1.0, [&](Tick t) { finish = t; });
    events.run();
    EXPECT_GT(finish, 5 * kMillisecond); // couldn't finish mid-outage
    EXPECT_GT(ch.stats().timeouts, 0u);
    EXPECT_TRUE(ch.idle());
}

TEST(ReliableChannel, LossIsStrictlySlower)
{
    auto complete = [](double rate) {
        EventQueue events;
        NetworkConfig cfg;
        cfg.nodes = 2;
        Network net(events, cfg);
        std::unique_ptr<FaultModel> faults;
        if (rate > 0.0) {
            faults = std::make_unique<FaultModel>(bernoulli(rate));
            net.attachFaults(faults.get());
        }
        ReliableChannel ch(net, 0, 1, {});
        Tick finish = 0;
        ch.send(5 * 1000 * 1000, 1.0, [&](Tick t) { finish = t; });
        events.run();
        return finish;
    };
    const Tick clean = complete(0.0);
    const Tick lossy = complete(0.01);
    EXPECT_GT(clean, 0u);
    EXPECT_GT(lossy, clean);
}

TEST(ReliableChannel, CwndCollapsesOnTimeoutAndRegrows)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    FaultConfig fc;
    fc.linkOutages.push_back(
        {0, {10 * kMicrosecond, 2 * kMillisecond}});
    FaultModel faults(fc);
    net.attachFaults(&faults);
    ReliableConfig rc;
    rc.initialCwndPackets = 64;
    ReliableChannel ch(net, 0, 1, rc);
    bool done = false;
    ch.send(3 * 1000 * 1000, 1.0, [&](Tick) { done = true; });
    events.run();
    EXPECT_TRUE(done);
    EXPECT_GT(ch.stats().timeouts, 0u);
    // Slow start restarted from one packet after the outage, then grew.
    EXPECT_GT(ch.cwnd(), 1.0);
}

/**
 * The acceptance experiment: one in-memory data-plane reduction (the
 * actual floats) combined with the timing-plane exchange over the
 * simulated fabric. The reliable channel guarantees the receiver sees
 * every byte exactly once and in order even at 1% loss, so the
 * in-memory reduction used by accuracy experiments is *the* result the
 * lossy cluster would compute — bit-identical to lossless — while the
 * timing plane shows the slowdown.
 */
struct RingRun
{
    Tick finish = 0;
    uint64_t retransmits = 0;
    uint64_t drops = 0;
    std::vector<float> reduced;
};

RingRun
runLossyRing(double lossRate, int threads, uint64_t faultSeed)
{
    setGlobalThreadCount(threads);

    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 4;
    Network net(events, cfg);
    std::unique_ptr<FaultModel> faults;
    if (lossRate > 0.0) {
        faults = std::make_unique<FaultModel>(
            bernoulli(lossRate, faultSeed));
        net.attachFaults(faults.get());
    }
    TransportOptions transport;
    transport.reliable = true;
    CommWorld comm(net, transport);

    // Data plane: per-rank gradient replicas, reduced by the same ring
    // schedule the timing plane simulates.
    const size_t elems = 64 * 1024;
    std::vector<std::vector<float>> grads(4);
    for (int r = 0; r < 4; ++r) {
        Rng rng(0x9E0 + static_cast<uint64_t>(r));
        grads[static_cast<size_t>(r)].resize(elems);
        for (float &v : grads[static_cast<size_t>(r)])
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    std::vector<std::span<float>> spans;
    for (auto &g : grads)
        spans.emplace_back(g);
    ringAllReduce(spans);

    // Timing plane: the same exchange over the (possibly lossy) fabric.
    RingConfig rc;
    rc.gradientBytes = elems * sizeof(float);
    RingRun out;
    bool done = false;
    runRingAllReduce(comm, rc, [&](ExchangeResult er) {
        out.finish = er.finish;
        out.retransmits = er.retransmits;
        out.drops = er.packetsDropped;
        done = true;
    });
    events.run();
    EXPECT_TRUE(done);

    const TransportStats ts = comm.transportStats();
    // Exactly-once delivery: every queued payload byte arrived once.
    EXPECT_EQ(ts.deliveredBytes,
              static_cast<uint64_t>(ringStepCount(4)) * 4 *
                  (rc.gradientBytes / 4));
    out.reduced = grads[0];
    // Every rank must hold the same aggregate after the ring.
    for (int r = 1; r < 4; ++r)
        EXPECT_EQ(std::memcmp(grads[0].data(),
                              grads[static_cast<size_t>(r)].data(),
                              elems * sizeof(float)),
                  0);

    setGlobalThreadCount(0);
    return out;
}

TEST(ReliableRing, LossyRingIsBitIdenticalSlowerAndReproducible)
{
    const RingRun clean = runLossyRing(0.0, 1, 0xFA017);
    const RingRun lossy = runLossyRing(0.01, 1, 0xFA017);
    const RingRun lossyAgain = runLossyRing(0.01, 1, 0xFA017);
    const RingRun lossyThreads = runLossyRing(0.01, 8, 0xFA017);

    // The reduction output is bit-identical with and without loss.
    ASSERT_EQ(clean.reduced.size(), lossy.reduced.size());
    EXPECT_EQ(std::memcmp(clean.reduced.data(), lossy.reduced.data(),
                          clean.reduced.size() * sizeof(float)),
              0);

    // Loss costs strictly more wall-clock and caused real recovery.
    EXPECT_GT(lossy.finish, clean.finish);
    EXPECT_GT(lossy.retransmits, 0u);
    EXPECT_GT(lossy.drops, 0u);
    EXPECT_EQ(clean.retransmits, 0u);

    // Bit-reproducible: identical completion tick and recovery counts
    // across repeated runs and across INC_THREADS {1, 8}.
    EXPECT_EQ(lossy.finish, lossyAgain.finish);
    EXPECT_EQ(lossy.retransmits, lossyAgain.retransmits);
    EXPECT_EQ(lossy.drops, lossyAgain.drops);
    EXPECT_EQ(lossy.finish, lossyThreads.finish);
    EXPECT_EQ(lossy.retransmits, lossyThreads.retransmits);
    EXPECT_EQ(lossy.drops, lossyThreads.drops);
}

/**
 * ECN/DCTCP scenario: a 3-to-1 incast onto host 0's downlink through a
 * finite switch queue. Deterministic by construction (no fault model,
 * no jitter), so outcomes compare exactly across configurations.
 */
struct IncastOut
{
    uint64_t cePackets = 0;
    uint64_t echoedAcks = 0;
    uint64_t cwndCuts = 0;
    uint64_t drops = 0;
    uint64_t timeouts = 0;
    uint64_t retransmits = 0;
    uint64_t switchMarks = 0;
    double alpha = 0.0;
    Tick finish = 0;
};

IncastOut
runIncast(CongestionControl cc, int ecnThreshold, int queueDepth,
          uint32_t initialCwnd = 64)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 4;
    cfg.switchConfig.queueDepthPackets = queueDepth;
    cfg.switchConfig.ecnThresholdPackets = ecnThreshold;
    Network net(events, cfg);
    ReliableConfig rc;
    rc.congestionControl = cc;
    rc.initialCwndPackets = initialCwnd;

    std::vector<std::unique_ptr<ReliableChannel>> chans;
    IncastOut out;
    int delivered = 0;
    for (int s = 1; s < 4; ++s) {
        chans.push_back(std::make_unique<ReliableChannel>(
            net, s, 0, rc, kDefaultTos, 0x5000u + static_cast<uint64_t>(s)));
        chans.back()->send(4 * 1000 * 1000, 1.0, [&](Tick t) {
            ++delivered;
            out.finish = std::max(out.finish, t);
        });
    }
    events.run();
    EXPECT_EQ(delivered, 3);
    for (const auto &ch : chans) {
        EXPECT_TRUE(ch->idle());
        const ReliableStats &s = ch->stats();
        out.cePackets += s.ecnCePackets;
        out.echoedAcks += s.ecnEchoedAcks;
        out.cwndCuts += s.dctcpCwndCuts;
        out.drops += s.dropsObserved;
        out.timeouts += s.timeouts;
        out.retransmits += s.retransmits;
        out.alpha = std::max(out.alpha, ch->dctcpAlpha());
    }
    out.switchMarks = net.fabric().ecnMarks();
    return out;
}

TEST(ReliableEcn, IncastMarksBeforeItDrops)
{
    // Threshold well below the tail-drop depth: the congested downlink
    // CE-marks the overflow band instead of silently queueing it.
    const IncastOut ecn = runIncast(CongestionControl::NewReno, 32, 256);
    EXPECT_GT(ecn.switchMarks, 0u);
    EXPECT_GT(ecn.cePackets, 0u);
    EXPECT_GT(ecn.echoedAcks, 0u);
    // Marks are advisory to a plain NewReno sender: no window cuts.
    EXPECT_EQ(ecn.cwndCuts, 0u);

    // Marking disabled: no CE anywhere, end to end.
    const IncastOut off =
        runIncast(CongestionControl::NewReno, kUnboundedQueue, 256);
    EXPECT_EQ(off.switchMarks, 0u);
    EXPECT_EQ(off.cePackets, 0u);
    EXPECT_EQ(off.echoedAcks, 0u);
}

TEST(ReliableEcn, DctcpCutsProportionallyAndConvergesAlpha)
{
    const IncastOut d = runIncast(CongestionControl::Dctcp, 32, 256);
    EXPECT_GT(d.cePackets, 0u);
    EXPECT_GT(d.cwndCuts, 0u);
    EXPECT_GT(d.alpha, 0.0);
    EXPECT_LE(d.alpha, 1.0);
}

TEST(ReliableEcn, DctcpBacksOffBeforeTheQueueOverflows)
{
    // Same offered load, same shallow queue, standard initial windows
    // (so slow-start growth, not an initial burst, fills the queue):
    // the DCTCP senders react to marks early and lose no more packets
    // than marking-blind Reno.
    const IncastOut reno =
        runIncast(CongestionControl::NewReno, kUnboundedQueue, 96, 10);
    const IncastOut dctcp =
        runIncast(CongestionControl::Dctcp, 32, 96, 10);
    EXPECT_LE(dctcp.drops, reno.drops);
    EXPECT_LE(dctcp.retransmits, reno.retransmits);
    EXPECT_GT(dctcp.cwndCuts, 0u);
}

TEST(ReliableEcn, DctcpIncastIsBitReproducible)
{
    const IncastOut a = runIncast(CongestionControl::Dctcp, 32, 128);
    const IncastOut b = runIncast(CongestionControl::Dctcp, 32, 128);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.cePackets, b.cePackets);
    EXPECT_EQ(a.cwndCuts, b.cwndCuts);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.alpha, b.alpha);
}

TEST(ReliableRing, DropScheduleIsSeedDeterministic)
{
    // Same seed => identical drop schedule; different seed => (almost
    // surely) different.
    const RingRun a = runLossyRing(0.01, 1, 1234);
    const RingRun b = runLossyRing(0.01, 1, 1234);
    const RingRun c = runLossyRing(0.01, 1, 5678);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_NE(a.finish, c.finish);
}

} // namespace
} // namespace inc
