// Generator tests for the explicit topology graphs (net/topology.h):
// node/link counts, diameter, bisection width at small radixes, route
// validity against the link set, and the LP-partition invariants.

#include "net/topology.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace inc {
namespace {

// Every consecutive node pair of every host-pair route must be an
// existing directed link, and the route must start/end at the hosts.
void
expectRoutesValid(const Topology &t, int maxHosts = 64)
{
    const int n = std::min(t.hosts, maxHosts);
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (s == d)
                continue;
            const std::vector<int> path = t.route(s, d);
            ASSERT_GE(path.size(), 3u) << t.name << " " << s << "->" << d;
            EXPECT_EQ(path.front(), s);
            EXPECT_EQ(path.back(), d);
            for (size_t i = 0; i + 1 < path.size(); ++i) {
                EXPECT_GE(t.linkIndex(path[i], path[i + 1]), 0)
                    << t.name << ": route " << s << "->" << d
                    << " uses missing link " << path[i] << "->"
                    << path[i + 1];
            }
            // Simple (no node revisited): required for per-hop handoff.
            std::set<int> seen(path.begin(), path.end());
            EXPECT_EQ(seen.size(), path.size())
                << t.name << ": route " << s << "->" << d << " has a loop";
        }
    }
}

void
expectLpPlanInvariants(const Topology &t)
{
    const LpPlan plan = makeLpPlan(t);
    ASSERT_EQ(plan.lpCount, t.nodeCount());
    ASSERT_EQ(plan.lpOf.size(), static_cast<size_t>(t.nodeCount()));
    EXPECT_GT(plan.lookahead, 0u);
    for (const TopoLink &l : t.links) {
        // Lookahead must be safe for every cross-LP link...
        EXPECT_LE(plan.lookahead, l.latency);
        // ...and a link crosses at most one LP boundary: its
        // transmitter owns it, so the only boundary is src-LP->dst-LP.
        const int srcLp = plan.lpOf[static_cast<size_t>(l.src)];
        const int dstLp = plan.lpOf[static_cast<size_t>(l.dst)];
        EXPECT_GE(srcLp, 0);
        EXPECT_LT(srcLp, plan.lpCount);
        EXPECT_GE(dstLp, 0);
        EXPECT_LT(dstLp, plan.lpCount);
    }
}

TEST(StarTopology, CountsDiameterRoutes)
{
    const Topology t = starTopology(8);
    EXPECT_EQ(t.hosts, 8);
    EXPECT_EQ(t.switches, 1);
    EXPECT_EQ(t.links.size(), 16u); // 8 full-duplex cables
    EXPECT_EQ(t.diameterHops(), 2);
    expectRoutesValid(t);
    expectLpPlanInvariants(t);
}

TEST(TwoTierTopology, CountsDiameterRoutes)
{
    const Topology t = twoTierTopology(12, 4);
    EXPECT_EQ(t.hosts, 12);
    EXPECT_EQ(t.switches, 4); // 3 ToRs + core
    EXPECT_EQ(t.links.size(), 2u * (12 + 3));
    EXPECT_EQ(t.diameterHops(), 4); // host-ToR-core-ToR-host
    expectRoutesValid(t);
    expectLpPlanInvariants(t);
}

TEST(FatTreeTopology, K4Counts)
{
    const Topology t = fatTreeTopology(4);
    EXPECT_EQ(t.hosts, 16);        // k^3/4
    EXPECT_EQ(t.switches, 20);     // 4 pods * 4 + 4 cores
    EXPECT_EQ(t.links.size(), 96u); // 3k^3/4 = 48 cables
    EXPECT_EQ(t.diameterHops(), 6); // host-edge-agg-core-agg-edge-host
    expectRoutesValid(t);
    expectLpPlanInvariants(t);
}

TEST(FatTreeTopology, K4BisectionIsFull)
{
    // Cut the canonical halves: pods {0,1} (hosts + pod switches) and
    // half the cores of each group on side 1. A k-ary fat-tree's
    // bisection is k^3/8 cables — full bisection bandwidth (every host
    // pair across the cut can get a dedicated path).
    const int k = 4, half = k / 2;
    const Topology t = fatTreeTopology(k);
    std::vector<int> side(static_cast<size_t>(t.nodeCount()), 0);
    for (int hst = 0; hst < t.hosts / 2; ++hst)
        side[static_cast<size_t>(hst)] = 1;
    for (int pod = 0; pod < k / 2; ++pod)
        for (int s = 0; s < k; ++s)
            side[static_cast<size_t>(t.hosts + pod * k + s)] = 1;
    for (int a = 0; a < half; ++a)
        for (int j = 0; j < half / 2 + (half % 2); ++j)
            side[static_cast<size_t>(t.hosts + k * k + a * half + j)] = 1;
    EXPECT_EQ(t.crossLinks(side), k * k * k / 8);
}

TEST(FatTreeTopology, K6Counts)
{
    const Topology t = fatTreeTopology(6);
    EXPECT_EQ(t.hosts, 54);
    EXPECT_EQ(t.switches, 45);       // 6*6 + 9
    EXPECT_EQ(t.links.size(), 324u); // 3*6^3/4 = 162 cables
    EXPECT_EQ(t.diameterHops(), 6);
    expectRoutesValid(t, 54);
    expectLpPlanInvariants(t);
}

TEST(DragonflyTopology, CanonicalCounts)
{
    // a=4, p=2, h=2, g=9: the fully-subscribed canonical config
    // (g-1 == a*h, exactly one global cable between every group pair).
    const Topology t = dragonflyTopology(4, 2, 2, 9);
    EXPECT_EQ(t.hosts, 72);
    EXPECT_EQ(t.switches, 36);
    // Cables: 72 host + 9 * (4*3/2) local + 9*8/2 global = 162.
    EXPECT_EQ(t.links.size(), 324u);
    EXPECT_EQ(t.diameterHops(), 5); // host-R-local-global-local... <= 5
    expectRoutesValid(t, 40);
    expectLpPlanInvariants(t);
}

TEST(DragonflyTopology, GroupHalvesBisection)
{
    // g=8 groups, halves {0..3} vs {4..7}: only global cables cross,
    // one per group pair -> 4*4 = 16.
    const Topology t = dragonflyTopology(4, 2, 2, 8);
    std::vector<int> side(static_cast<size_t>(t.nodeCount()), 0);
    const int perGroupHosts = 4 * 2;
    for (int hst = 0; hst < 4 * perGroupHosts; ++hst)
        side[static_cast<size_t>(hst)] = 1;
    for (int r = 0; r < 4 * 4; ++r)
        side[static_cast<size_t>(t.hosts + r)] = 1;
    EXPECT_EQ(t.crossLinks(side), 16);
}

TEST(DragonflyTopology, GlobalLatencyDominates)
{
    const Tick local = 400 * kNanosecond, global = 3 * kMicrosecond;
    const Topology t = dragonflyTopology(4, 2, 2, 9, 10e9, local, 10e9,
                                         global);
    EXPECT_EQ(t.minLatency(), local);
    // A cross-group route's middle hop is the long cable.
    const std::vector<int> path = t.route(0, t.hosts - 1);
    bool sawGlobal = false;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
        const int idx = t.linkIndex(path[i], path[i + 1]);
        ASSERT_GE(idx, 0);
        sawGlobal = sawGlobal || t.link(idx).latency == global;
    }
    EXPECT_TRUE(sawGlobal);
}

TEST(Topology, LinkIndexIsExactAndSorted)
{
    const Topology t = fatTreeTopology(4);
    for (size_t i = 0; i + 1 < t.links.size(); ++i) {
        const TopoLink &a = t.links[i], &b = t.links[i + 1];
        EXPECT_TRUE(a.src < b.src || (a.src == b.src && a.dst < b.dst));
    }
    for (size_t i = 0; i < t.links.size(); ++i)
        EXPECT_EQ(t.linkIndex(t.links[i].src, t.links[i].dst),
                  static_cast<int>(i));
    EXPECT_EQ(t.linkIndex(0, 1), -1); // hosts are never adjacent
}

// Structural property checks shared by the edge-case tests below:
// the graph is connected, every directed link has its reverse (full
// duplex), per-node in-degree equals out-degree, and every host hangs
// off exactly one cable.
void
expectConnectedAndDegreeConsistent(const Topology &t)
{
    const size_t n = static_cast<size_t>(t.nodeCount());
    std::vector<std::vector<int>> out(n);
    std::vector<int> inDeg(n, 0);
    for (const TopoLink &l : t.links) {
        out[static_cast<size_t>(l.src)].push_back(l.dst);
        ++inDeg[static_cast<size_t>(l.dst)];
        EXPECT_GE(t.linkIndex(l.dst, l.src), 0)
            << t.name << ": " << l.src << "->" << l.dst
            << " has no reverse link";
    }
    for (size_t v = 0; v < n; ++v) {
        EXPECT_EQ(out[v].size(), static_cast<size_t>(inDeg[v]))
            << t.name << " node " << v;
        if (static_cast<int>(v) < t.hosts) {
            EXPECT_EQ(out[v].size(), 1u)
                << t.name << " host " << v << " is multi-homed";
        }
    }
    // BFS from node 0 must reach every node.
    std::vector<int> seen(n, 0);
    std::vector<int> frontier{0};
    seen[0] = 1;
    size_t reached = 1;
    while (!frontier.empty()) {
        std::vector<int> next;
        for (const int v : frontier) {
            for (const int w : out[static_cast<size_t>(v)]) {
                if (!seen[static_cast<size_t>(w)]) {
                    seen[static_cast<size_t>(w)] = 1;
                    ++reached;
                    next.push_back(w);
                }
            }
        }
        frontier = std::move(next);
    }
    EXPECT_EQ(reached, n) << t.name << " is disconnected";
}

TEST(FatTreeTopology, K2DegenerateStillRoutes)
{
    // The smallest legal fat-tree: 2 pods of 1 edge + 1 agg switch,
    // one core, two hosts total — every route crosses the full
    // host-edge-agg-core-agg-edge-host spine.
    const Topology t = fatTreeTopology(2);
    EXPECT_EQ(t.hosts, 2);
    EXPECT_EQ(t.switches, 5);
    EXPECT_EQ(t.links.size(), 12u); // 3k^3/4 = 6 cables
    EXPECT_EQ(t.diameterHops(), 6);
    expectRoutesValid(t);
    expectLpPlanInvariants(t);
    expectConnectedAndDegreeConsistent(t);
}

TEST(DragonflyTopology, SingleGroupHasNoGlobalHops)
{
    // g=1 degenerates to one all-to-all router group: every route is
    // host-router(-router)-host and no global cable exists.
    const Topology t = dragonflyTopology(4, 2, 2, 1);
    EXPECT_EQ(t.hosts, 8);
    EXPECT_EQ(t.switches, 4);
    // Cables: 8 host + 4*3/2 local = 14.
    EXPECT_EQ(t.links.size(), 28u);
    EXPECT_EQ(t.diameterHops(), 3); // host-router-router-host
    expectRoutesValid(t);
    expectLpPlanInvariants(t);
    expectConnectedAndDegreeConsistent(t);
}

TEST(TwoTierTopology, OddHostCountLeavesAPartialRack)
{
    // 13 hosts in racks of 4: three full racks plus a rack of one.
    const Topology t = twoTierTopology(13, 4);
    EXPECT_EQ(t.hosts, 13);
    EXPECT_EQ(t.switches, 5); // 4 ToRs + core
    EXPECT_EQ(t.links.size(), 2u * (13 + 4));
    expectRoutesValid(t);
    expectLpPlanInvariants(t);
    expectConnectedAndDegreeConsistent(t);
}

TEST(Topology, GeneratorSweepIsConnectedAndDegreeConsistent)
{
    const std::vector<Topology> sweep = {
        starTopology(2),
        starTopology(17),
        twoTierTopology(6, 2),
        twoTierTopology(9, 4),
        fatTreeTopology(2),
        fatTreeTopology(4),
        fatTreeTopology(6),
        dragonflyTopology(2, 1, 1, 2),
        dragonflyTopology(4, 2, 2, 1),
        dragonflyTopology(4, 2, 2, 9),
    };
    for (const Topology &t : sweep) {
        SCOPED_TRACE(t.name);
        expectConnectedAndDegreeConsistent(t);
        expectRoutesValid(t, 8);
    }
}

TEST(Topology, ScalesTo1024WorkersAndBeyond)
{
    // The datacenter-scale configs the benches use: fat-tree k=16 gives
    // 1024 hosts; dragonfly a=16 p=8 h=8 g=32 gives 4096.
    const Topology ft = fatTreeTopology(16);
    EXPECT_EQ(ft.hosts, 1024);
    EXPECT_EQ(ft.switches, 16 * 16 + 64);
    const LpPlan ftPlan = makeLpPlan(ft);
    EXPECT_EQ(ftPlan.lpCount, ft.nodeCount());

    const Topology df = dragonflyTopology(16, 8, 8, 32);
    EXPECT_EQ(df.hosts, 4096);
    EXPECT_EQ(df.switches, 512);
    // Spot-check a long route rather than all 16M pairs.
    expectRoutesValid(df, 20);
}

} // namespace
} // namespace inc
