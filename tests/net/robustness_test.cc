/**
 * @file
 * Error-path and misuse tests: the simulator must fail loudly (panic)
 * on invalid configurations rather than produce silent garbage.
 */

#include <gtest/gtest.h>

#include "comm/inceptionn_api.h"
#include "net/faults.h"
#include "net/fluid.h"
#include "net/network.h"
#include "net/reliable.h"

namespace inc {
namespace {

TEST(RobustnessDeath, TransferToSelfPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    EXPECT_DEATH(net.transfer({1, 1, 100, kDefaultTos, 1.0}, [](Tick) {}),
                 "bad transfer");
}

TEST(RobustnessDeath, TransferOutOfRangePanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    EXPECT_DEATH(net.transfer({0, 5, 100, kDefaultTos, 1.0}, [](Tick) {}),
                 "bad transfer");
}

TEST(RobustnessDeath, EmptyTransferPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    EXPECT_DEATH(net.transfer({0, 1, 0, kDefaultTos, 1.0}, [](Tick) {}),
                 "empty");
}

TEST(RobustnessDeath, BadWireRatioPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    cfg.nicConfig.hasCompressionEngine = true;
    Network net(events, cfg);
    EXPECT_DEATH(net.transfer({0, 1, 100, kCompressTos, 0.5}, [](Tick) {}),
                 "ratio");
}

TEST(RobustnessDeath, TinyClusterPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 1;
    EXPECT_DEATH({ Network net(events, cfg); }, "nodes");
}

TEST(RobustnessDeath, MisalignedSegmentBytesPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    cfg.segmentBytes = 1000; // not a multiple of the MSS
    EXPECT_DEATH({ Network net(events, cfg); }, "MSS");
}

TEST(RobustnessDeath, FluidSelfTransferPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    FluidNetwork net(events, cfg);
    EXPECT_DEATH(net.transfer({0, 0, 100, kDefaultTos, 1.0}, [](Tick) {}),
                 "bad transfer");
}

TEST(RobustnessDeath, ApiRejectsUndersizedCluster)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 4;
    Network net(events, cfg);
    CommWorld comm(net);
    CollectiveCall call;
    call.algorithm = CollectiveAlgorithm::WorkerAggregator;
    call.workers = 4; // needs 5 nodes
    call.gradientBytes = 100;
    EXPECT_DEATH(collecCommAllReduce(comm, call, [](ExchangeResult) {}),
                 "cluster");
}

TEST(RobustnessDeath, ApiRejectsIndivisibleGroups)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 16;
    Network net(events, cfg);
    CommWorld comm(net);
    CollectiveCall call;
    call.algorithm = CollectiveAlgorithm::Tree;
    call.workers = 10;
    call.groupSize = 4;
    call.gradientBytes = 100;
    EXPECT_DEATH(collecCommAllReduce(comm, call, [](ExchangeResult) {}),
                 "divide");
}

TEST(RobustnessDeath, NegativeLossRatePanics)
{
    FaultConfig cfg;
    cfg.defaultLink.loss = LossKind::Bernoulli;
    cfg.defaultLink.lossRate = -0.1;
    EXPECT_DEATH({ FaultModel model(cfg); }, "probability");
}

TEST(RobustnessDeath, LossRateAboveOnePanics)
{
    FaultConfig cfg;
    cfg.hostOverrides.push_back({0, {}});
    cfg.hostOverrides[0].second.corruptionRate = 1.5;
    EXPECT_DEATH({ FaultModel model(cfg); }, "probability");
}

TEST(RobustnessDeath, InvertedOutageWindowPanics)
{
    FaultConfig cfg;
    cfg.linkOutages.push_back(
        {0, {5 * kMillisecond, 1 * kMillisecond}});
    EXPECT_DEATH({ FaultModel model(cfg); }, "window");
}

TEST(RobustnessDeath, ZeroSwitchQueueDepthPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    cfg.switchConfig.queueDepthPackets = 0;
    EXPECT_DEATH({ Network net(events, cfg); }, "queue depth");
}

TEST(RobustnessDeath, NegativeNicQueueDepthPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    cfg.nicConfig.txQueuePackets = -5; // not the sentinel
    EXPECT_DEATH({ Network net(events, cfg); }, "queue depth");
}

TEST(RobustnessDeath, ZeroCwndPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    ReliableConfig rc;
    rc.initialCwndPackets = 0;
    EXPECT_DEATH({ ReliableChannel ch(net, 0, 1, rc); }, "cwnd");
}

TEST(RobustnessDeath, ZeroMinRtoPanics)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    ReliableConfig rc;
    rc.minRto = 0;
    EXPECT_DEATH({ ReliableChannel ch(net, 0, 1, rc); }, "RTO");
}

TEST(Robustness, ZeroByteSegmentTailHandled)
{
    // Payload exactly a segment multiple: no zero-length trailing
    // segment may be emitted.
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    int calls = 0;
    net.transfer({0, 1, cfg.segmentBytes * 3, kDefaultTos, 1.0},
                 [&](Tick) { ++calls; });
    events.run();
    EXPECT_EQ(calls, 1);
}

TEST(Robustness, OneByteTransferDelivers)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    Tick t = 0;
    net.transfer({0, 1, 1, kDefaultTos, 1.0}, [&](Tick tt) { t = tt; });
    events.run();
    EXPECT_GT(t, 0u);
    EXPECT_LT(toSeconds(t), 1e-3);
}

} // namespace
} // namespace inc
