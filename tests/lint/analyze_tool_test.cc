/**
 * @file
 * End-to-end contract of the inc_analyze cross-file semantic analyzer:
 * one fixture tree per check family under tests/lint/fixtures/analyze/,
 * each with must-fire and must-not-fire material, driven through
 * `inc_analyze --json` and asserted as exact (file, line, check)
 * triples. The fixtures are the executable specification of the
 * analyzer's heuristics — if a family's sensitivity changes, these
 * tests name the snippet that moved.
 *
 * The tool binary and fixture root come in via compile definitions
 * (INC_ANALYZE_BIN, INC_ANALYZE_FIXTURES) so the test works from any
 * working directory.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <regex>
#include <set>
#include <string>
#include <tuple>

namespace {

struct RunResult
{
    int exitCode = -1;
    std::string output;
};

RunResult
run(const std::string &cmd)
{
    RunResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return r;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        r.output.append(buf, n);
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

/** Run `inc_analyze --json` over one fixture tree. */
RunResult
runAnalyze(const std::string &tree, const std::string &extra = "")
{
    const std::string root =
        std::string(INC_ANALYZE_FIXTURES) + "/" + tree;
    return run(std::string(INC_ANALYZE_BIN) + " --json --layers=" +
               root + "/layers.toml " + extra + " " + root +
               "/src 2>/dev/null");
}

// (file-path-relative-to-tree, line, check)
using FindingAt = std::tuple<std::string, int, std::string>;

/** Parse the (file, line, check) multiset out of a --json report. */
std::multiset<FindingAt>
findingsOf(const std::string &json, const std::string &tree)
{
    std::multiset<FindingAt> out;
    static const std::regex re(
        "\\{\"file\": \"([^\"]+)\", \"line\": ([0-9]+), "
        "\"check\": \"([^\"]+)\"");
    const std::string marker = tree + "/";
    for (std::sregex_iterator it(json.begin(), json.end(), re), end;
         it != end; ++it) {
        std::string file = (*it)[1].str();
        const size_t pos = file.rfind(marker);
        if (pos != std::string::npos)
            file = file.substr(pos + marker.size());
        out.insert({file, std::stoi((*it)[2].str()), (*it)[3].str()});
    }
    return out;
}

int
suppressedOf(const std::string &json)
{
    static const std::regex re("\"suppressed\": ([0-9]+)");
    std::smatch m;
    return std::regex_search(json, m, re) ? std::stoi(m[1].str()) : -1;
}

/** The tree must yield exactly @p expected findings (and exit 1). */
void
expectTree(const std::string &tree,
           const std::multiset<FindingAt> &expected,
           int expectSuppressed = 0)
{
    const RunResult r = runAnalyze(tree);
    EXPECT_EQ(r.exitCode, expected.empty() ? 0 : 1)
        << tree << ":\n" << r.output;
    EXPECT_EQ(findingsOf(r.output, tree), expected)
        << tree << ":\n" << r.output;
    EXPECT_EQ(suppressedOf(r.output), expectSuppressed) << tree;
}

// ---------------------------------------------------------------------

TEST(IncAnalyze, ListChecksNamesTheFullCatalogue)
{
    const RunResult r =
        run(std::string(INC_ANALYZE_BIN) + " --list-checks");
    EXPECT_EQ(r.exitCode, 0);
    for (const char *id :
         {"taint-thread-id", "taint-pointer-value",
          "taint-unordered-iter", "taint-float-accum",
          "layer-violation", "layer-cycle", "layer-unknown",
          "span-open-dropped", "span-scope-temporary",
          "span-push-pop-imbalance", "metric-never-written",
          "switch-missing-enumerator", "switch-default-arm",
          "bad-suppression"})
        EXPECT_NE(r.output.find(id), std::string::npos) << id;
}

TEST(IncAnalyze, LayeringViolationsCyclesAndUnknownDirs)
{
    expectTree("layering",
               {{"src/base/core.h", 2, "layer-violation"},
                {"src/mid/helper.h", 2, "layer-cycle"},
                {"src/rogue/stray.h", 1, "layer-unknown"}});
}

TEST(IncAnalyze, DeterminismTaintReachesSinks)
{
    expectTree("taint",
               {{"src/app/fire_thread.cc", 7, "taint-thread-id"},
                {"src/app/fire_pointer.cc", 7, "taint-pointer-value"},
                {"src/app/fire_unordered.cc", 8,
                 "taint-unordered-iter"},
                {"src/app/fire_float.cc", 7, "taint-float-accum"},
                {"src/app/fire_helper.cc", 6, "taint-float-accum"}});
}

TEST(IncAnalyze, SpanProtocolPairing)
{
    expectTree("spans",
               {{"src/app/spans_use.cc", 11, "span-scope-temporary"},
                {"src/app/spans_use.cc", 17, "span-open-dropped"},
                {"src/app/spans_use.cc", 27,
                 "span-push-pop-imbalance"}});
}

TEST(IncAnalyze, EnumSwitchExhaustiveness)
{
    expectTree("enums",
               {{"src/app/switches.cc", 6,
                 "switch-missing-enumerator"},
                {"src/app/switches.cc", 20, "switch-default-arm"}});
}

TEST(IncAnalyze, MetricNamePairing)
{
    expectTree("metrics",
               {{"src/app/reader.cc", 6, "metric-never-written"}});
}

TEST(IncAnalyze, SuppressionsSilenceCountAndValidate)
{
    expectTree("suppress",
               {{"src/app/badallow.cc", 1, "bad-suppression"}},
               /*expectSuppressed=*/3);
}

TEST(IncAnalyze, MissingManifestIsAUsageError)
{
    const std::string root =
        std::string(INC_ANALYZE_FIXTURES) + "/taint";
    const RunResult r = run(std::string(INC_ANALYZE_BIN) +
                            " --json --layers=/nonexistent.toml " +
                            root + "/src 2>/dev/null");
    EXPECT_EQ(r.exitCode, 2);
}

TEST(IncAnalyze, SarifReportCarriesRulesAndResults)
{
    const std::string root =
        std::string(INC_ANALYZE_FIXTURES) + "/layering";
    const RunResult r = run(std::string(INC_ANALYZE_BIN) +
                            " --sarif=- --layers=" + root +
                            "/layers.toml " + root +
                            "/src 2>/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("\"version\": \"2.1.0\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"ruleId\": \"layer-violation\""),
              std::string::npos);
    EXPECT_NE(r.output.find("\"startLine\": 2"), std::string::npos);
    // Every catalogue rule is declared even when it did not fire.
    EXPECT_NE(r.output.find("\"id\": \"taint-thread-id\""),
              std::string::npos);
}

TEST(IncAnalyze, RepeatRunsAreByteIdentical)
{
    const RunResult a = runAnalyze("taint");
    const RunResult b = runAnalyze("taint");
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.exitCode, b.exitCode);
}

} // namespace
