// Mid legitimately uses base — but base also includes mid, so this
#include "base/core.h"
// edge closes a layer-level cycle.

inline int
midHelper()
{
    return 2;
}
