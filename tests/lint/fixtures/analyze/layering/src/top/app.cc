// Top may use everything below it: no findings here.
#include "base/core.h"
#include "mid/helper.h"

int
topMain()
{
    return baseCore() + midHelper();
}
