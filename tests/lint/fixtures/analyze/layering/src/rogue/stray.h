// This directory is absent from layers.toml: layer-unknown.
inline int
strayValue()
{
    return 3;
}
