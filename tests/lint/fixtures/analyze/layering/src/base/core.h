// Deliberate back-edge: base may not reach up into mid.
#include "mid/helper.h"

inline int
baseCore()
{
    return 1;
}
