void
goodScope(Tracer *tr)
{
    spans::Scope guard(tr, 1);
    use(guard);
}

void
badScope(Tracer *tr)
{
    spans::Scope(tr, 1);
}

void
badOpen(Tracer *tr)
{
    tr->open(spans::Kind::Message, 0, 1, 2);
}

void
goodOpen(Tracer *tr)
{
    const uint64_t id = tr->open(spans::Kind::Message, 0, 1, 2);
    tr->close(id, 5);
}

void
badPush(Tracer *tr)
{
    tr->pushParent(7);
    doStuff();
}

void
goodPush(Tracer *tr)
{
    tr->pushParent(7);
    doStuff();
    tr->popParent();
}
