// inc-analyze: allow(no-such-check) — typo'd id must itself be flagged
int
answer()
{
    return 42;
}
