#include <thread>

void
emitThread(Registry *m)
{
    const auto tid = std::this_thread::get_id();
    // inc-analyze: allow(taint-thread-id) — fixture: deliberate opt-out
    m->set("app.thread", hashIt(tid));
}
