// inc-analyze: allow-file(taint-thread-id) — fixture: whole-file opt-out
#include <thread>

void
emitTwice(Registry *m)
{
    const auto tid = std::this_thread::get_id();
    m->set("app.t1", hashIt(tid));
    m->set("app.t2", hashIt(tid));
}
