void
record(Registry *m, double v, int chunk)
{
    m->add("app.bytes", v);
    m->observe("app.lat", v, 0.0, 1.0, 16);
    m->add("app.chunk." + std::to_string(chunk), 1.0);
}
