double
summary(const Registry &m)
{
    const double a = m.counter("app.bytes");
    const double b = m.counter("app.chunk.0");
    const double c = m.counter("app.missing");
    return a + b + c;
}
