// Sanctioned exact accumulator (listed under [taint] exempt): its raw
// arithmetic is the blessed boundary, so value() is not a taint source.
class Exactish
{
  public:
    void
    add(double x)
    {
        total_ += x;
    }

    double
    value() const
    {
        return total_;
    }

  private:
    double total_ = 0.0;
};
