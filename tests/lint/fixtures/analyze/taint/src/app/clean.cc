#include <cstdint>

#include "app/exact.h"

double meanOf(const double *vals, int n);

void
emitClean(Registry *m, const Data &d)
{
    // Integral declaration: float-accumulation taint cannot round-trip
    // through a tick count.
    const uint64_t ticks = meanOf(d.vals, d.n);
    m->add("app.ticks", ticks);

    // Accumulation that never reaches a sink is not a finding.
    double scratch = 0.0;
    scratch += 1.0;

    // The sanctioned accumulator is summary-exempt.
    Exactish acc;
    for (int i = 0; i < d.n; ++i)
        acc.add(d.vals[i]);
    m->set("app.total", acc.value());
}
