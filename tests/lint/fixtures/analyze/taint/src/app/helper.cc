// Cross-file link of the taint chain: the raw accumulation happens
// here, the sink lives in fire_helper.cc.
double
meanOf(const double *vals, int n)
{
    double t = 0.0;
    for (int i = 0; i < n; ++i)
        t += vals[i];
    return t / n;
}
