#include <cstdint>

void
emitPointer(Registry *m, const Node *node)
{
    const auto key = reinterpret_cast<uintptr_t>(node);
    m->add("app.node_key", key);
}
