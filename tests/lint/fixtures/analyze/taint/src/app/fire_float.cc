void
writeReport(std::ostream &out, const Values &vs)
{
    double acc = 0.0;
    for (double v : vs.items)
        acc += v;
    out << "total=" << acc << "\n";
}
