#include <unordered_map>

void
emitCounts(Registry *m, const std::unordered_map<int, long> &counts)
{
    std::unordered_map<int, long> local = counts;
    for (const auto &kv : local) {
        m->add("app.bucket", kv.second);
    }
}
