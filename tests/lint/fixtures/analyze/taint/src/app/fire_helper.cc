double meanOf(const double *vals, int n);

void
emitMean(Registry *m, const Data &d)
{
    m->set("app.mean", meanOf(d.vals, d.n));
}
