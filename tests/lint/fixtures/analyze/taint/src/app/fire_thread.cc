#include <thread>

void
emitThread(Registry *m)
{
    const auto tid = std::this_thread::get_id();
    m->set("app.thread", hashIt(tid));
}
