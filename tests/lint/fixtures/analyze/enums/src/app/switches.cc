#include "app/colors.h"

int
missing(Color c)
{
    switch (c) {
      case Color::Red:
        return 1;
      case Color::Green:
        return 2;
      case Color::kCount:
        break;
    }
    return 0;
}

int
defaulted(Color c)
{
    switch (c) {
      case Color::Red:
        return 1;
      case Color::Green:
        return 2;
      case Color::Blue:
        return 3;
      default:
        return 0;
    }
}

int
exhaustive(Color c)
{
    switch (c) {
      case Color::Red:
        return 1;
      case Color::Green:
        return 2;
      case Color::Blue:
        return 3;
      case Color::kCount:
        break;
    }
    return 0;
}

int
twinSwitch(Color c)
{
    switch (c) {
      case Color::Cyan:
        return 1;
      default:
        return 0;
    }
}
