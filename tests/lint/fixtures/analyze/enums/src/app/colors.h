// Critical enum with a sentinel.
enum class Color {
    Red,
    Green,
    Blue,
    kCount,
};
