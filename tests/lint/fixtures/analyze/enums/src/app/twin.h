// Same type name, different enumerators, not critical: switches over
// this one resolve here by enumerator overlap and stay unchecked.
enum class Color {
    Cyan,
    Magenta,
    Yellow,
};
