// must-fire: bad-suppression — the allow names a check that does not
// exist, so the annotation is inert and must be called out.
int
answer()
{
    return 42; // inc-lint: allow(no-such-check)  line 6
}
