// must-fire: unordered-in-emitter — this file includes an
// emission-layer header, so hash containers are iteration-order
// hazards for whatever it emits.
#include <string>
#include <unordered_map>
#include "sim/metrics.h"

void
tally(std::unordered_map<std::string, int> &byName) // line 9
{
    for (auto &[name, n] : byName)
        if (auto *m = inc::metrics::active())
            m->add(name, static_cast<uint64_t>(n));
}
