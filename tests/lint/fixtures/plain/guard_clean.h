// must-not-fire: include-guard — the guard matches the convention.
#ifndef INCEPTIONN_PLAIN_GUARD_CLEAN_H
#define INCEPTIONN_PLAIN_GUARD_CLEAN_H

int fixtureValue();

#endif // INCEPTIONN_PLAIN_GUARD_CLEAN_H
