// must-fire: no-std-rand
#include <cstdlib>

int
noisy()
{
    srand(42);                  // line 7
    int x = rand();             // line 8
    return x + rand() % 10;     // line 9 (one finding per line)
}
