// must-not-fire: every violation below is suppressed — same-line
// allow, standalone-comment allow (applies to the next line), and a
// whole-file allow.
// inc-lint: allow-file(no-random-device)
#include <cstdlib>
#include <random>

int
silenced()
{
    std::random_device rd; // covered by the allow-file above
    srand(1); // inc-lint: allow(no-std-rand) — fixture exercises this
    // inc-lint: allow(no-std-rand)
    int x = rand();
    return x + static_cast<int>(rd());
}
