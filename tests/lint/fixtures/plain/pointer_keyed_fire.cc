// must-fire: pointer-keyed-container — iteration follows allocation
// addresses, which differ run to run.
#include <map>
#include <set>

struct Node;

std::map<Node *, int> makeRanks();       // line 8
std::set<const char *> makeNames();      // line 9
