// must-fire: no-random-device (outside src/sim/random.*)
#include <random>

unsigned
entropy()
{
    std::random_device rd; // line 7
    return rd();
}
