// must-fire: using-namespace-in-header (the guard itself is correct,
// so that is the only finding).
#ifndef INCEPTIONN_PLAIN_USING_NS_FIRE_H
#define INCEPTIONN_PLAIN_USING_NS_FIRE_H

#include <string>

using namespace std; // line 8

string fixtureName();

#endif // INCEPTIONN_PLAIN_USING_NS_FIRE_H
