// must-not-fire: unordered-in-emitter — hash containers are fine in
// files that never emit spans/metrics/traces (no emission-layer
// include here; "sim/metrics.h" in a string doesn't count).
#include <string>
#include <unordered_map>

int
lookup(const std::unordered_map<std::string, int> &index)
{
    const char *doc = "#include \"sim/metrics.h\"";
    auto it = index.find(doc);
    return it == index.end() ? 0 : it->second;
}
