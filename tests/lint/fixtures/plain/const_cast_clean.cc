// must-not-fire: no-const-cast — same code as the src/sim fixture,
// but outside src/sim and src/net the check does not apply.
struct State
{
    int ticks = 0;
};

void
bump(const State &s)
{
    const_cast<State &>(s).ticks++;
}
