// must-not-fire: no-wall-clock — member functions named time() and
// mentions of steady_clock inside comments or string literals.
struct Queue
{
    long time() const { return 7; }
};

long
simulatedTime(const Queue &events)
{
    const char *doc = "uses steady_clock nowhere";
    long lead_time = events.time(); // not libc time()
    return lead_time + (doc ? 0 : 1);
}
