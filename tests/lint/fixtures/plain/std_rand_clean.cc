// must-not-fire: no-std-rand — identifiers merely containing the
// banned names, member calls, and mentions in comments or strings.
struct Widget
{
    int rand_calls = 0;
    int rand() { return 4; }
};

int
quiet(Widget &w)
{
    int grand_total = w.rand(); // member call, not libc rand()
    const char *msg = "never calls rand() at runtime";
    int operand = grand_total + (msg ? 1 : 0);
    return operand; // rand() in this comment is also fine
}
