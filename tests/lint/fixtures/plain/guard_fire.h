// must-fire: include-guard — wrong guard name for this path (the
// convention derives INCEPTIONN_PLAIN_GUARD_FIRE_H from it).
#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

int fixtureValue();

#endif // SOME_OTHER_GUARD_H
