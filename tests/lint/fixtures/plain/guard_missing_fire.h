// must-fire: include-guard — #pragma once instead of a named guard.
#pragma once

int fixtureValue();
