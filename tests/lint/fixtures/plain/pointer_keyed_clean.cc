// must-not-fire: pointer-keyed-container — pointer *values* are fine;
// only pointer *keys* impose address order on iteration.
#include <cstdint>
#include <map>
#include <string>

struct Node;

std::map<uint64_t, Node *> makeById();
std::map<std::string, Node *> makeByName();
