// must-fire: no-wall-clock
#include <chrono>
#include <ctime>

long
hostTime()
{
    auto t0 = std::chrono::steady_clock::now();      // line 8
    auto t1 = std::chrono::system_clock::now();      // line 9
    long when = time(nullptr);                       // line 10
    const char *stamp = __TIMESTAMP__;               // line 11
    (void)t0;
    (void)t1;
    (void)stamp;
    return when;
}
