// must-not-fire: no-thread-identity — identical code outside
// src/sim + src/net is out of the check's scope (benchmarks and the
// test harness may consult threads freely).
#include <thread>

int
threadKeyed()
{
    thread_local int calls = 0;
    const auto id = std::this_thread::get_id();
    (void)id;
    return ++calls;
}
