// must-not-fire: the sanctioned pattern — a kernel file that has
// proven its TLS use is a pure function of logical state carries an
// explicit, commented allow() (as sim/lp.cc and sim/thread_pool.cc do).

namespace {

// inc-lint: allow(no-thread-identity, mutable-global)
thread_local int ambient_lp = -1;

} // namespace

int
currentAmbient()
{
    return ambient_lp;
}
