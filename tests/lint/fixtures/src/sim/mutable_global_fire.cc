// must-fire: mutable-global — namespace-scope mutable state under
// src/sim, at file scope, in a named namespace, and in an anonymous
// namespace.
#include <string>

int g_hits = 0; // line 6

namespace inc {

std::string g_last_error; // line 10

namespace {

bool s_armed = false; // line 14

} // namespace
} // namespace inc
