// must-not-fire: no-random-device — this path IS the sanctioned
// entropy-plumbing module (src/sim/random.*), the one exemption.
#include <random>

unsigned
sanctioned()
{
    std::random_device rd;
    return rd();
}
