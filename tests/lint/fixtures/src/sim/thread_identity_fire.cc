// must-fire: no-thread-identity — physical thread identity leaking
// into the simulation kernel (the fixture path sits under src/sim).
#include <pthread.h>
#include <thread>

int
threadKeyed()
{
    thread_local int calls = 0;                     // line 9
    const auto id = std::this_thread::get_id();     // line 10
    const unsigned long raw = pthread_self();       // line 11
    (void)id;
    return ++calls + static_cast<int>(raw % 7);
}
