// must-not-fire: mutable-global — constants, type definitions,
// aliases, declarations, function-local statics, and class members
// are all fine.
#include <cstdint>
#include <string>

constexpr int kLimit = 8;
const std::string kName = "fixture";
extern int g_elsewhere;
using Alias = std::string;
typedef uint64_t Tick;

struct Box
{
    int contents = 0; // class member, not namespace scope
};

namespace inc {

int
counter()
{
    static int s_local = 0; // function-local, not namespace scope
    return ++s_local;
}

// A continuation line of a multi-line declaration (here the defaulted
// tail ending in ';') is not a namespace-scope statement of its own.
Tick scheduleAt(int node, int lane,
                Tick when = 500);

} // namespace inc
