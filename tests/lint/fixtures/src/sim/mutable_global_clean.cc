// must-not-fire: mutable-global — constants, type definitions,
// aliases, declarations, function-local statics, and class members
// are all fine.
#include <cstdint>
#include <string>

constexpr int kLimit = 8;
const std::string kName = "fixture";
extern int g_elsewhere;
using Alias = std::string;
typedef uint64_t Tick;

struct Box
{
    int contents = 0; // class member, not namespace scope
};

namespace inc {

int
counter()
{
    static int s_local = 0; // function-local, not namespace scope
    return ++s_local;
}

} // namespace inc
