// must-fire: no-const-cast — this fixture path sits under src/sim,
// where const_cast is banned outright.
struct State
{
    int ticks = 0;
};

void
bump(const State &s)
{
    const_cast<State &>(s).ticks++; // line 11
}
