// must-fire: no-std-rand + no-wall-clock — a codec whose stochastic
// rounding draws from the libc RNG and seeds it off the host clock.
// Non-reproducible bitstreams: the exact failure mode the determinism
// lint exists to keep out of encoder paths.
#include <chrono>
#include <cstdlib>

unsigned
encodeValueDithered(float v)
{
    auto seed = std::chrono::steady_clock::now(); // line 11
    srand(static_cast<unsigned>(                  // line 12 (srand)
        seed.time_since_epoch().count()));
    const int dither = rand() % 2; // line 14
    return static_cast<unsigned>(v) + static_cast<unsigned>(dither);
}
