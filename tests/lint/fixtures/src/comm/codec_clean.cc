// must-not-fire — the sanctioned codec shape: any dither comes from a
// fixed-seed counter stream carried in the codec's own state, so the
// same input always serializes to the same bytes on every host.
#include <cstdint>

struct DitherStream
{
    uint64_t state = 0x9E3779B97F4A7C15ull; // fixed seed: golden bits

    uint32_t
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<uint32_t>(state >> 33);
    }
};

unsigned
encodeValueDithered(float v, DitherStream &dither)
{
    return static_cast<unsigned>(v) + (dither.next() & 1u);
}
