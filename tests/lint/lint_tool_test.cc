/**
 * @file
 * End-to-end contract of the inc_lint determinism checker: every check
 * in the catalogue has a must-fire fixture (exact check ids at exact
 * lines) and a must-not-fire fixture (zero findings, exit 0) under
 * tests/lint/fixtures/. The fixtures are the executable specification
 * of the checker's heuristics — if a check's sensitivity changes,
 * these tests name the snippet that moved.
 *
 * The tool binary and fixture directory come in via compile
 * definitions (INC_LINT_BIN, INC_LINT_FIXTURES) so the test works from
 * any working directory.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace {

struct RunResult
{
    int exitCode = -1;
    std::string output;
};

/** Run `inc_lint --json <args>`, capture stdout. */
RunResult
runLint(const std::string &args)
{
    const std::string cmd =
        std::string(INC_LINT_BIN) + " --json " + args + " 2>/dev/null";
    RunResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return r;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        r.output.append(buf, n);
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
fixture(const std::string &rel)
{
    return std::string(INC_LINT_FIXTURES) + "/" + rel;
}

using CheckAt = std::pair<std::string, int>; // (check id, line)

/** Parse the (check, line) multiset out of a --json report. */
std::multiset<CheckAt>
findingsOf(const std::string &json)
{
    std::multiset<CheckAt> out;
    static const std::regex re(
        "\"line\": ([0-9]+), \"check\": \"([^\"]+)\"");
    for (std::sregex_iterator it(json.begin(), json.end(), re), end;
         it != end; ++it)
        out.insert({(*it)[2].str(), std::stoi((*it)[1].str())});
    return out;
}

int
suppressedOf(const std::string &json)
{
    static const std::regex re("\"suppressed\": ([0-9]+)");
    std::smatch m;
    return std::regex_search(json, m, re) ? std::stoi(m[1].str()) : -1;
}

/** The fixture must yield exactly @p expected findings (and exit 1). */
void
expectFires(const std::string &rel,
            const std::multiset<CheckAt> &expected)
{
    const RunResult r = runLint(fixture(rel));
    EXPECT_EQ(r.exitCode, 1) << rel << ":\n" << r.output;
    EXPECT_EQ(findingsOf(r.output), expected) << rel << ":\n"
                                              << r.output;
}

/** The fixture must be perfectly quiet: no findings, exit 0. */
void
expectClean(const std::string &rel, int expectSuppressed = 0)
{
    const RunResult r = runLint(fixture(rel));
    EXPECT_EQ(r.exitCode, 0) << rel << ":\n" << r.output;
    EXPECT_TRUE(findingsOf(r.output).empty()) << rel << ":\n"
                                              << r.output;
    EXPECT_EQ(suppressedOf(r.output), expectSuppressed) << rel;
}

// ---------------------------------------------------------------------

TEST(IncLint, ListChecksNamesTheFullCatalogue)
{
    const std::string cmd =
        std::string(INC_LINT_BIN) + " --list-checks";
    RunResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        r.output.append(buf, n);
    EXPECT_EQ(WEXITSTATUS(pclose(pipe)), 0);
    for (const char *id :
         {"no-std-rand", "no-random-device", "no-wall-clock",
          "unordered-in-emitter", "pointer-keyed-container",
          "no-const-cast", "mutable-global", "no-thread-identity",
          "include-guard", "using-namespace-in-header",
          "bad-suppression"})
        EXPECT_NE(r.output.find(id), std::string::npos) << id;
}

TEST(IncLint, NoStdRand)
{
    expectFires("plain/std_rand_fire.cc", {{"no-std-rand", 7},
                                           {"no-std-rand", 8},
                                           {"no-std-rand", 9}});
    expectClean("plain/std_rand_clean.cc");
}

TEST(IncLint, NoRandomDevice)
{
    expectFires("plain/random_device_fire.cc",
                {{"no-random-device", 7}});
    // Same code, but at the sanctioned src/sim/random.* path.
    expectClean("src/sim/random.cc");
}

TEST(IncLint, NoWallClock)
{
    expectFires("plain/wall_clock_fire.cc", {{"no-wall-clock", 8},
                                             {"no-wall-clock", 9},
                                             {"no-wall-clock", 10},
                                             {"no-wall-clock", 11}});
    expectClean("plain/wall_clock_clean.cc");
}

TEST(IncLint, UnorderedInEmitter)
{
    expectFires("plain/unordered_emitter_fire.cc",
                {{"unordered-in-emitter", 9}});
    expectClean("plain/unordered_emitter_clean.cc");
}

TEST(IncLint, PointerKeyedContainer)
{
    expectFires("plain/pointer_keyed_fire.cc",
                {{"pointer-keyed-container", 8},
                 {"pointer-keyed-container", 9}});
    expectClean("plain/pointer_keyed_clean.cc");
}

TEST(IncLint, NoConstCast)
{
    expectFires("src/sim/const_cast_fire.cc", {{"no-const-cast", 11}});
    // Identical code outside src/sim + src/net is out of scope.
    expectClean("plain/const_cast_clean.cc");
}

TEST(IncLint, MutableGlobal)
{
    expectFires("src/sim/mutable_global_fire.cc",
                {{"mutable-global", 6},
                 {"mutable-global", 10},
                 {"mutable-global", 14}});
    expectClean("src/sim/mutable_global_clean.cc");
}

TEST(IncLint, NoThreadIdentity)
{
    expectFires("src/sim/thread_identity_fire.cc",
                {{"no-thread-identity", 9},
                 {"no-thread-identity", 10},
                 {"no-thread-identity", 11}});
    // Identical code outside src/sim + src/net is out of scope.
    expectClean("plain/thread_identity_clean.cc");
    // The sanctioned, explicitly-suppressed TLS pattern of sim/lp.cc.
    expectClean("src/sim/thread_identity_suppressed.cc",
                /*expectSuppressed=*/2);
}

TEST(IncLint, IncludeGuard)
{
    expectFires("plain/guard_fire.h", {{"include-guard", 3}});
    expectFires("plain/guard_missing_fire.h", {{"include-guard", 2}});
    expectClean("plain/guard_clean.h");
}

TEST(IncLint, UsingNamespaceInHeader)
{
    expectFires("plain/using_ns_fire.h",
                {{"using-namespace-in-header", 8}});
}

TEST(IncLint, SuppressionsSilenceAndAreCounted)
{
    // Three violations, three suppression spellings (same-line,
    // standalone-next-line, allow-file) — all silenced, all counted.
    expectClean("plain/suppress_clean.cc", /*expectSuppressed=*/3);
}

TEST(IncLint, BadSuppressionIsItselfAFinding)
{
    expectFires("plain/bad_suppression_fire.cc",
                {{"bad-suppression", 6}});
}

TEST(IncLint, CodecEncoderPathsStayDeterministic)
{
    // A codec whose dither draws from the libc RNG seeded off the host
    // clock serializes differently on every run — the checker must name
    // the clock read and both libc-RNG calls.
    expectFires("src/comm/codec_fire.cc", {{"no-wall-clock", 11},
                                           {"no-std-rand", 12},
                                           {"no-std-rand", 14}});
    // The sanctioned shape: a fixed-seed counter stream in codec state.
    expectClean("src/comm/codec_clean.cc");
}

TEST(IncLint, WholeFixtureTreeSweepIsDeterministic)
{
    const RunResult a = runLint(fixture(""));
    const RunResult b = runLint(fixture(""));
    EXPECT_EQ(a.exitCode, 1); // the fire fixtures guarantee findings
    EXPECT_EQ(a.output, b.output); // sorted walk => byte-stable report
}

} // namespace
