#include "stats/bench_schema.h"

#include <gtest/gtest.h>

#include <string>

namespace inc {
namespace {

/** A minimal valid record body; tests splice mutations into it. */
std::string
record(const std::string &extra = "")
{
    return "{\"config\": \"fig15_lp.ring.fat_tree_k4\", "
           "\"algorithm\": \"ring\", \"ecn\": \"off\", "
           "\"workers\": 16, \"width\": 1, \"events\": 21120, "
           "\"rounds\": 2227, \"wall_ms\": 7.5, "
           "\"events_per_sec\": 2803065, \"peak_rss_mb\": 5.1, "
           "\"sim_seconds\": 0.213" +
           extra + "}";
}

std::string
doc(const std::string &records)
{
    return "{\n  \"records\": [\n    " + records + "\n  ]\n}\n";
}

TEST(BenchSchema, AcceptsMinimalRecord)
{
    const BenchSchemaReport rep = validateBenchJson(doc(record()));
    EXPECT_TRUE(rep.ok()) << rep.render();
    EXPECT_EQ(rep.records, 1u);
}

TEST(BenchSchema, AcceptsSpansAndBlameColumns)
{
    const std::string extra =
        ", \"spans\": \"bench_results/x.spans.csv\", "
        "\"blame_ticks\": {\"compute\": 9142201200, \"codec\": 0, "
        "\"wire\": 15444458400, \"queue\": 10090480800, "
        "\"retransmit\": 0, \"stall\": 80592000, "
        "\"switch_agg\": 1319052000}";
    const BenchSchemaReport rep =
        validateBenchJson(doc(record(extra)));
    EXPECT_TRUE(rep.ok()) << rep.render();
}

TEST(BenchSchema, RejectsMissingKeyWrongTypeAndNegatives)
{
    // Missing "workers".
    const std::string missing =
        doc("{\"config\": \"c\", \"algorithm\": \"\", \"ecn\": "
            "\"off\", \"width\": 0, \"events\": 1, \"rounds\": 1, "
            "\"wall_ms\": 1, \"events_per_sec\": 1, "
            "\"peak_rss_mb\": 1, \"sim_seconds\": 1}");
    EXPECT_FALSE(validateBenchJson(missing).ok());

    // Wrong type: config is a number.
    EXPECT_FALSE(
        validateBenchJson(
            doc("{\"config\": 3, \"algorithm\": \"\", \"ecn\": "
                "\"off\", \"workers\": 1, \"width\": 0, \"events\": "
                "1, \"rounds\": 1, \"wall_ms\": 1, "
                "\"events_per_sec\": 1, \"peak_rss_mb\": 1, "
                "\"sim_seconds\": 1}"))
            .ok());

    // Negative numeric.
    std::string neg = doc(record());
    const size_t at = neg.find("\"wall_ms\": 7.5");
    ASSERT_NE(at, std::string::npos);
    neg.replace(at, 14, "\"wall_ms\": -1");
    EXPECT_FALSE(validateBenchJson(neg).ok());

    // Non-integer worker count.
    std::string frac = doc(record());
    const size_t w = frac.find("\"workers\": 16");
    ASSERT_NE(w, std::string::npos);
    frac.replace(w, 13, "\"workers\": 16.5");
    EXPECT_FALSE(validateBenchJson(frac).ok());
}

TEST(BenchSchema, RejectsUnknownAndIncompleteBlameColumns)
{
    // Unknown record key.
    EXPECT_FALSE(
        validateBenchJson(doc(record(", \"surprise\": 1"))).ok());
    // blame_ticks without every category.
    EXPECT_FALSE(validateBenchJson(
                     doc(record(", \"blame_ticks\": {\"compute\": 1}")))
                     .ok());
    // blame_ticks with an invented category.
    EXPECT_FALSE(
        validateBenchJson(
            doc(record(
                ", \"blame_ticks\": {\"compute\": 1, \"codec\": 0, "
                "\"wire\": 0, \"queue\": 0, \"retransmit\": 0, "
                "\"stall\": 0, \"switch_agg\": 0, \"luck\": 9}")))
            .ok());
}

TEST(BenchSchema, RejectsEmptyAndMalformedDocuments)
{
    EXPECT_FALSE(validateBenchJson("").ok());
    EXPECT_FALSE(validateBenchJson("{\"records\": []}").ok());
    EXPECT_FALSE(validateBenchJson("{\"records\": 3}").ok());
    EXPECT_FALSE(validateBenchJson("[1, 2]").ok());
    EXPECT_FALSE(validateBenchJson(doc(record()) + "trailing").ok());
}

TEST(BenchSchema, MonotoneTestCounts)
{
    const std::string one = doc(record());
    const std::string two = doc(
        record() +
        ",\n    " +
        "{\"config\": \"other\", \"algorithm\": \"tree\", \"ecn\": "
        "\"dctcp\", \"workers\": 8, \"width\": 2, \"events\": 10, "
        "\"rounds\": 2, \"wall_ms\": 1, \"events_per_sec\": 10, "
        "\"peak_rss_mb\": 1, \"sim_seconds\": 0.5}");

    // Growing or equal record sets pass; shrinking fails.
    EXPECT_TRUE(checkBenchMonotone(one, two).ok());
    EXPECT_TRUE(checkBenchMonotone(one, one).ok());
    const BenchSchemaReport shrank = checkBenchMonotone(two, one);
    EXPECT_FALSE(shrank.ok());
    EXPECT_NE(shrank.render().find("record count shrank"),
              std::string::npos);

    // Same count but a baseline config vanished: also a failure.
    std::string renamed = one;
    const size_t at = renamed.find("fig15_lp.ring.fat_tree_k4");
    ASSERT_NE(at, std::string::npos);
    renamed.replace(at, 25, "renamed_config_for_the_test");
    const BenchSchemaReport lost = checkBenchMonotone(one, renamed);
    EXPECT_FALSE(lost.ok());
    EXPECT_NE(lost.render().find("disappeared"), std::string::npos);
}

} // namespace
} // namespace inc
