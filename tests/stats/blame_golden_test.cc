/**
 * @file
 * Golden blame-table fixture: a pinned 64-worker LP ring allreduce on
 * the two-tier fabric must decompose into exactly the checked-in blame
 * CSV, byte for byte. The run is a pure function of its config (the LP
 * core is deterministic across INC_THREADS and shuffle seeds), so any
 * drift here means the span capture, the shard merge, or the
 * critical-path walker changed semantics — bump the fixture only with
 * a deliberate regeneration (INC_REGEN_BLAME_GOLDEN=1).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "comm/lp_collectives.h"
#include "net/lp_fabric.h"
#include "net/topology.h"
#include "stats/critical_path.h"

namespace inc {
namespace {

std::string
goldenPath()
{
    return std::string(INC_BLAME_GOLDEN_DIR) + "/lp_ring64_blame.csv";
}

std::string
readFile(const std::string &path)
{
    std::string text;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

TEST(BlameGolden, PinnedLpRing64MatchesFixture)
{
    // The pinned run: 64 hosts in racks of 8, default link speed and
    // latency, 8 MiB gradients, stock ring config. Do not change any
    // of these without regenerating the fixture.
    LpFabricConfig fc;
    fc.captureSpans = true;
    LpFabric fab(twoTierTopology(64, 8), fc, /*threads=*/0);
    LpCollectiveConfig cc;
    cc.algorithm = LpAlgorithm::Ring;
    cc.gradientBytes = 8ull << 20;
    const LpAllreduceResult r = runLpAllreduce(fab, cc);
    ASSERT_GT(r.finish, 0u);

    const CriticalPathReport rep =
        analyzeCriticalPath(fab.mergedSpans());
    ASSERT_EQ(rep.iterations.size(), 1u);
    ASSERT_TRUE(rep.exact());
    const std::string table = rep.renderCsv();

    if (std::getenv("INC_REGEN_BLAME_GOLDEN")) {
        FILE *f = std::fopen(goldenPath().c_str(), "wb");
        ASSERT_NE(f, nullptr) << goldenPath();
        std::fwrite(table.data(), 1, table.size(), f);
        std::fclose(f);
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    const std::string golden = readFile(goldenPath());
    ASSERT_FALSE(golden.empty())
        << "missing fixture " << goldenPath()
        << " (regenerate with INC_REGEN_BLAME_GOLDEN=1)";
    EXPECT_EQ(table, golden)
        << "blame decomposition of the pinned 64-worker LP ring "
           "drifted; regenerate deliberately with "
           "INC_REGEN_BLAME_GOLDEN=1 if the change is intended";
}

} // namespace
} // namespace inc
