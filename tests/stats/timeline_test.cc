#include "stats/timeline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "net/network.h"
#include "sim/span.h"

namespace inc {
namespace {

TEST(Timeline, RecordsAndRenders)
{
    TimelineRecorder tl;
    tl.record("linkA", "seg 1000B", 0, 2 * kMicrosecond);
    tl.record("linkB", "seg 500B", kMicrosecond, kMicrosecond);
    EXPECT_EQ(tl.eventCount(), 2u);

    const std::string json = tl.render();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("linkA"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(Timeline, EscapesQuotes)
{
    TimelineRecorder tl;
    tl.record("a\"b", "n\\m", 0, 1);
    const std::string json = tl.render();
    EXPECT_NE(json.find("a\\\"b"), std::string::npos);
    EXPECT_NE(json.find("n\\\\m"), std::string::npos);
}

TEST(Timeline, CapturesNetworkActivity)
{
    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = 2;
    Network net(events, cfg);
    TimelineRecorder tl;
    net.setTimeline(&tl);
    // Flow arrows only appear alongside causal tracing.
    spans::reset();
    spans::setEnabled(true);
    net.transfer({0, 1, 3 * 1000 * 1000, kDefaultTos, 1.0}, [](Tick) {});
    events.run();
    spans::setEnabled(false);
    spans::reset();

    // 3 MB / ~533 KB segments = 6 segments x 2 links, each hop
    // emitting one slice plus one dataflow flow event.
    EXPECT_EQ(tl.eventCount(), 24u);
    const std::string json = tl.render();
    EXPECT_NE(json.find("host0->switch"), std::string::npos);
    EXPECT_NE(json.find("switch->host1"), std::string::npos);
    // Flow arrows: a start on the first hop, a terminating "f" (with
    // binding point "enclosing slice") on the last.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"dataflow\""), std::string::npos);
}

TEST(Timeline, FlowEventsRender)
{
    TimelineRecorder tl;
    tl.record("linkA", "seg", 0, kMicrosecond);
    tl.record("linkB", "seg", kMicrosecond, kMicrosecond);
    tl.flow("linkA", "msg 0->1", 0, 7, 's');
    tl.flow("linkB", "msg 0->1", 2 * kMicrosecond, 7, 'f');
    EXPECT_EQ(tl.eventCount(), 4u);

    const std::string json = tl.render();
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":7"), std::string::npos);
    // Only the terminating "f" event carries the binding point.
    size_t bp = 0;
    for (size_t at = json.find("\"bp\":\"e\""); at != std::string::npos;
         at = json.find("\"bp\":\"e\"", at + 1))
        ++bp;
    EXPECT_EQ(bp, 1u);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Timeline, WritesFile)
{
    const std::string path = "/tmp/inc_timeline_test.json";
    TimelineRecorder tl;
    tl.record("t", "e", 0, 1);
    ASSERT_TRUE(tl.writeFile(path));
    std::ifstream in(path);
    std::string first;
    std::getline(in, first);
    EXPECT_NE(first.find("traceEvents"), std::string::npos);
    std::filesystem::remove(path);
}

} // namespace
} // namespace inc
