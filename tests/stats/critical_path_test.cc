#include "stats/critical_path.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace inc {
namespace {

using spans::Blame;
using spans::Kind;
using spans::Span;

/** Hand-build a span; keeps the DAG fixtures compact. */
Span
mk(uint64_t id, uint64_t parent, uint64_t cause, Kind kind, Tick t0,
   Tick t1, const char *name = "")
{
    Span s;
    s.id = id;
    s.parent = parent;
    s.cause = cause;
    s.kind = kind;
    s.host = 0;
    s.t0 = t0;
    s.t1 = t1;
    s.name = name;
    return s;
}

TEST(CriticalPath, EmptyInputYieldsEmptyReport)
{
    const CriticalPathReport rep = analyzeCriticalPath({});
    EXPECT_TRUE(rep.iterations.empty());
    // No iterations = nothing to attribute: reported as not exact so
    // CI gates fail loudly on an empty capture.
    EXPECT_FALSE(rep.exact());
    EXPECT_EQ(rep.elapsedTicks, 0u);
}

TEST(CriticalPath, ContiguousChildrenSumExactly)
{
    // iter [0,100): forward [0,40) -> backward [40,90) -> update
    // [90,100). No gaps: blame is all compute.
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Forward, 0, 40),
        mk(3, 1, 2, Kind::Backward, 40, 90),
        mk(4, 1, 3, Kind::Update, 90, 100),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 1u);
    const IterationPath &it = rep.iterations[0];
    EXPECT_TRUE(it.exact());
    EXPECT_EQ(it.windowTicks(), 100u);
    EXPECT_EQ(it.blame.get(Blame::Compute), 100u);
    EXPECT_EQ(it.blame.total(), 100u);
    EXPECT_FALSE(it.truncated);
    EXPECT_TRUE(rep.exact());
}

TEST(CriticalPath, UncoveredHeadAndGapsBecomeStall)
{
    // iter [0,100): only one child at [60,80). The walker blames
    // [80,100) container self-time, [60,80) compute, [0,60) head.
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Forward, 60, 80),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 1u);
    const IterationPath &it = rep.iterations[0];
    EXPECT_TRUE(it.exact());
    EXPECT_EQ(it.blame.get(Blame::Compute), 20u);
    EXPECT_EQ(it.blame.get(Blame::Stall), 80u);
}

TEST(CriticalPath, CausalJumpBlamesGapOnWaitingKind)
{
    // A Hop that starts 30 ticks after its causing hop ended sat in a
    // switch queue for those 30 ticks (gapBlame(Hop) == Queue).
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Hop, 0, 30, "hop A"),
        mk(3, 1, 2, Kind::Hop, 60, 100, "hop B"),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 1u);
    const IterationPath &it = rep.iterations[0];
    EXPECT_TRUE(it.exact());
    EXPECT_EQ(it.blame.get(Blame::Wire), 70u);  // both hops' own time
    EXPECT_EQ(it.blame.get(Blame::Queue), 30u); // the wait between them
}

TEST(CriticalPath, OverlappingCauseStillExact)
{
    // Cut-through: hop B starts before its causing hop A ends. No gap
    // to blame; the walker just jumps laterally.
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Hop, 0, 60, "hop A"),
        mk(3, 1, 2, Kind::Hop, 40, 100, "hop B"),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 1u);
    EXPECT_TRUE(rep.iterations[0].exact());
    EXPECT_EQ(rep.iterations[0].blame.total(), 100u);
}

TEST(CriticalPath, RetransmitOnChainIsVisible)
{
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Message, 0, 100, "msg"),
        mk(3, 2, 0, Kind::Flight, 0, 20, "seq0 a0"),
        mk(4, 2, 3, Kind::RtoWait, 20, 60, "rto"),
        mk(5, 2, 4, Kind::Retransmit, 60, 100, "seq0 a1"),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 1u);
    EXPECT_TRUE(rep.iterations[0].exact());
    EXPECT_TRUE(rep.chainContains(Kind::Retransmit));
    EXPECT_TRUE(rep.chainContains(Kind::RtoWait));
    EXPECT_FALSE(rep.chainContains(Kind::CodecEngine));
    EXPECT_EQ(rep.totals.get(Blame::Retransmit), 80u);
}

TEST(CriticalPath, MultipleIterationsAccumulateTotals)
{
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 50, "iter 0"),
        mk(2, 1, 0, Kind::Forward, 0, 50),
        mk(3, 0, 1, Kind::Iteration, 50, 120, "iter 1"),
        mk(4, 3, 0, Kind::Forward, 50, 120),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 2u);
    EXPECT_EQ(rep.elapsedTicks, 120u);
    EXPECT_EQ(rep.totals.get(Blame::Compute), 120u);
    EXPECT_TRUE(rep.exact());
}

TEST(CriticalPath, OpenSpansAreIgnored)
{
    std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Forward, 0, 100),
    };
    Span open = mk(3, 1, 0, Kind::Message, 10, 0, "still open");
    open.t1 = spans::kOpenTick;
    dag.push_back(open);
    // An open Iteration is not a root either.
    Span open_iter = mk(4, 0, 0, Kind::Iteration, 100, 0, "open iter");
    open_iter.t1 = spans::kOpenTick;
    dag.push_back(open_iter);

    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 1u);
    EXPECT_TRUE(rep.iterations[0].exact());
    EXPECT_EQ(rep.iterations[0].blame.get(Blame::Compute), 100u);
}

TEST(CriticalPath, ChainIsInTimeOrderAndCoversTheWindow)
{
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Forward, 0, 40),
        mk(3, 1, 2, Kind::Backward, 40, 100),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    ASSERT_EQ(rep.iterations.size(), 1u);
    const auto &chain = rep.iterations[0].chain;
    ASSERT_FALSE(chain.empty());
    Tick covered = 0;
    for (size_t i = 0; i < chain.size(); ++i) {
        EXPECT_LE(chain[i].from, chain[i].to);
        if (i > 0) {
            EXPECT_LE(chain[i - 1].to, chain[i].from);
        }
        covered += chain[i].duration();
    }
    EXPECT_EQ(covered, rep.iterations[0].windowTicks());
}

TEST(CriticalPath, RenderersAreWellFormed)
{
    const std::vector<Span> dag = {
        mk(1, 0, 0, Kind::Iteration, 0, 100, "iter"),
        mk(2, 1, 0, Kind::Forward, 0, 100),
    };
    const CriticalPathReport rep = analyzeCriticalPath(dag);
    const std::string table = rep.renderTable();
    EXPECT_NE(table.find("compute"), std::string::npos);
    EXPECT_NE(table.find("exact: yes"), std::string::npos);

    const std::string json = rep.renderJson();
    EXPECT_NE(json.find("\"exact\":true"), std::string::npos);
    EXPECT_NE(json.find("\"blame_ticks\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    const std::string csv = rep.renderCsv();
    EXPECT_NE(csv.find("iteration,category,ticks,seconds,fraction"),
              std::string::npos);
    EXPECT_NE(csv.find("total,compute"), std::string::npos);
}

TEST(CriticalPath, SpanCsvRoundTrips)
{
    spans::reset();
    spans::setEnabled(true);
    spans::Tracer &t = *spans::active();
    const uint64_t a = t.open(Kind::Iteration, -1, 0, 0, 0, "iter 0");
    const uint64_t f = t.record(Kind::Forward, 1, 0, 400, a, 0, "fwd");
    t.record(Kind::Hop, -1, 400, 900, a, f, "host0->switch");
    t.close(a, 1000);

    const std::string path = "/tmp/inc_critpath_roundtrip.csv";
    ASSERT_TRUE(t.writeCsvFile(path));
    const CriticalPathReport direct = analyzeCriticalPath(t.spans());
    spans::setEnabled(false);
    spans::reset();

    std::string err;
    const std::vector<Span> loaded = loadSpansCsv(path, &err);
    ASSERT_EQ(loaded.size(), 3u) << err;
    EXPECT_EQ(loaded[0].kind, Kind::Iteration);
    EXPECT_EQ(loaded[2].cause, f);

    const CriticalPathReport reloaded = analyzeCriticalPath(loaded);
    EXPECT_EQ(reloaded.renderCsv(), direct.renderCsv());
    EXPECT_EQ(reloaded.renderJson(), direct.renderJson());
    std::filesystem::remove(path);
}

TEST(CriticalPath, MalformedCsvReportsError)
{
    const std::string path = "/tmp/inc_critpath_malformed.csv";
    {
        std::ofstream out(path);
        out << "id,parent,cause,kind,blame,host,t0,t1,name\n";
        out << "1,0,0,not_a_kind,stall,-1,0,10,x\n";
    }
    std::string err;
    const std::vector<Span> loaded = loadSpansCsv(path, &err);
    EXPECT_TRUE(loaded.empty());
    EXPECT_FALSE(err.empty());
    std::filesystem::remove(path);

    std::string missing_err;
    EXPECT_TRUE(loadSpansCsv("/no/such/file.csv", &missing_err).empty());
    EXPECT_FALSE(missing_err.empty());
}

} // namespace
} // namespace inc
