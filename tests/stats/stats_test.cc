#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/logging.h"
#include "stats/csv_writer.h"
#include "stats/histogram.h"
#include "stats/table_printer.h"

namespace inc {
namespace {

TEST(Histogram, CountsAndFrequencies)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.total(), 10u);
    for (int b = 0; b < 10; ++b) {
        EXPECT_EQ(h.bin(b), 1u);
        EXPECT_DOUBLE_EQ(h.frequency(b), 0.1);
    }
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(-1.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(3), 1u);
    EXPECT_EQ(h.minSeen(), -100.0);
    EXPECT_EQ(h.maxSeen(), 100.0);
}

TEST(Histogram, MomentsMatchSamples)
{
    Histogram h(-10, 10, 5);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_NEAR(h.stddev(), std::sqrt(1.25), 1e-12);
}

// Regression for the inc_analyze taint-float-accum audit: the running
// sum/sum-of-squares go through metrics::ExactSum, so the exported
// moments are bit-identical under any insertion order.
TEST(Histogram, MomentsAreInsertionOrderIndependent)
{
    const std::vector<double> samples = {1e16,  3.14,   -1e16, 1e-9,
                                         2.718, -0.577, 42.0,  1e8};
    Histogram fwd(-1e17, 1e17, 8);
    for (double v : samples)
        fwd.add(v);
    Histogram rev(-1e17, 1e17, 8);
    for (size_t i = samples.size(); i-- > 0;)
        rev.add(samples[i]);
    EXPECT_EQ(fwd.mean(), rev.mean());
    EXPECT_EQ(fwd.stddev(), rev.stddev());
    // A plain double accumulator disagrees with itself across these
    // two orders; ExactSum must not.
    double a = 0.0, b = 0.0;
    for (double v : samples)
        a += v;
    for (size_t i = samples.size(); i-- > 0;)
        b += samples[i];
    ASSERT_NE(a, b) << "sample set no longer exercises reordering";
}

TEST(Histogram, FractionWithinBound)
{
    Histogram h(-1.0, 1.0, 101); // odd bin count centers a bin at 0
    for (int i = 0; i < 90; ++i)
        h.add(0.0);
    for (int i = 0; i < 10; ++i)
        h.add(0.9);
    EXPECT_NEAR(h.fractionWithin(0.1), 0.9, 1e-12);
}

TEST(Histogram, AsciiPlotRenders)
{
    Histogram h(-1, 1, 50);
    for (int i = 0; i < 1000; ++i)
        h.add(0.0);
    const std::string plot = h.asciiPlot(10, 30);
    EXPECT_NE(plot.find('#'), std::string::npos);
    EXPECT_EQ(Histogram(-1, 1, 10).asciiPlot(), "(empty histogram)\n");
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"A", "LongHeader"});
    t.addRow({"xx", "1"});
    const std::string out = t.render("Title");
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| A  | LongHeader |"), std::string::npos);
    EXPECT_NE(out.find("| xx | 1          |"), std::string::npos);
}

TEST(TablePrinter, Formatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::pct(0.756, 1), "75.6%");
}

TEST(CsvWriter, EscapesSpecials)
{
    CsvWriter csv({"a", "b"});
    csv.addRow({"plain", "has,comma"});
    csv.addRow({"has\"quote", "multi\nline"});
    const std::string out = csv.render();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvWriter, WritesFile)
{
    const std::string path = "/tmp/inc_csv_test.csv";
    CsvWriter csv({"x"});
    csv.addRow({"42"});
    ASSERT_TRUE(csv.writeFile(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x");
    std::getline(in, line);
    EXPECT_EQ(line, "42");
    std::filesystem::remove(path);
}

TEST(Logging, SinkCapturesLevels)
{
    static std::vector<std::pair<LogLevel, std::string>> captured;
    captured.clear();
    setLogSink([](LogLevel level, const std::string &msg) {
        captured.emplace_back(level, msg);
    });
    inform("hello %d", 7);
    warn("watch out");
    setLogSink(nullptr);

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Inform);
    EXPECT_EQ(captured[0].second, "hello 7");
    EXPECT_EQ(captured[1].first, LogLevel::Warn);
}

TEST(Logging, AssertPassesQuietly)
{
    INC_ASSERT(1 + 1 == 2, "math works");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ fatal("bad config %s", "x"); },
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ panic("bug %d", 3); }, "bug 3");
}

} // namespace
} // namespace inc
