/**
 * @file
 * A step-by-step walkthrough of the gradient-centric exchange, printing
 * exactly the paper's Fig. 6(b) example: four workers, four blocks,
 * reduce-scatter steps 1-3, then all-gather steps 4-6. Each cell shows
 * how many workers' contributions the block accumulates (4 = fully
 * aggregated, marked *).
 *
 *   ./ring_walkthrough [workers]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ring_schedule.h"

using namespace inc;

namespace {

void
printState(const std::vector<std::vector<int>> &contrib, int n)
{
    std::printf("          ");
    for (int b = 0; b < n; ++b)
        std::printf(" blk[%d] ", b);
    std::printf("\n");
    for (int w = 0; w < n; ++w) {
        std::printf("worker[%d] ", w);
        for (int b = 0; b < n; ++b) {
            const int c = contrib[static_cast<size_t>(w)]
                                 [static_cast<size_t>(b)];
            if (c == n)
                std::printf("   *%d   ", c);
            else
                std::printf("    %d   ", c);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 4;
    if (n < 2) {
        std::fprintf(stderr, "need >= 2 workers\n");
        return 1;
    }

    std::printf("INCEPTIONN Algorithm 1 / Fig. 6(b) walkthrough, %d "
                "workers\n",
                n);
    std::printf("cell = number of workers' gradients accumulated in that "
                "block copy (* = all %d)\n\n",
                n);

    // contrib[w][b] = how many contributions worker w's copy of block b
    // holds. Initially each worker has only its own.
    std::vector<std::vector<int>> contrib(
        static_cast<size_t>(n), std::vector<int>(static_cast<size_t>(n), 1));

    std::printf("Step 0: block partition (each worker holds its local "
                "gradient)\n");
    printState(contrib, n);

    for (int step = 1; step <= ringStepCount(n); ++step) {
        const bool reduce = step < n;
        std::printf("Step %d (%s):\n", step,
                    reduce ? "transmit and reduce" : "send back reduced");
        for (int w = 0; w < n; ++w) {
            const RingStep rs = ringStepFor(w, step, n);
            std::printf("  worker[%d] sends blk[%d] to worker[%d]\n", w,
                        rs.sendBlock, (w + 1) % n);
        }
        // Apply all receives simultaneously (snapshot the send values).
        std::vector<int> sent(static_cast<size_t>(n));
        for (int w = 0; w < n; ++w) {
            const RingStep rs = ringStepFor(w, step, n);
            sent[static_cast<size_t>(w)] =
                contrib[static_cast<size_t>(w)]
                       [static_cast<size_t>(rs.sendBlock)];
        }
        for (int w = 0; w < n; ++w) {
            const RingStep rs = ringStepFor(w, step, n);
            const int dst = (w + 1) % n;
            int &cell = contrib[static_cast<size_t>(dst)]
                               [static_cast<size_t>(rs.sendBlock)];
            if (rs.phase == RingPhase::ReduceScatter)
                cell += sent[static_cast<size_t>(w)];
            else
                cell = sent[static_cast<size_t>(w)];
        }
        printState(contrib, n);
    }

    std::printf("After step %d every worker holds every block fully "
                "aggregated — no\ndesignated aggregator was involved, "
                "and every transfer carried gradients\n(compressible by "
                "the NIC engines).\n",
                ringStepCount(n));
    return 0;
}
