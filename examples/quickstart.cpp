/**
 * @file
 * Quickstart: compress a gradient buffer with the INCEPTIONN codec,
 * verify the error bound, inspect the tag mix, and run the same data
 * through the cycle-level NIC engine models.
 *
 *   ./quickstart [bound_log2]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/inceptionn.h"
#include "sim/random.h"

int
main(int argc, char **argv)
{
    const int bound_log2 = argc > 1 ? std::atoi(argv[1]) : 10;
    std::printf("INCEPTIONN quickstart — error bound 2^-%d\n\n",
                bound_log2);

    // 1. Make a gradient-like buffer (zero-peaked and heavy-tailed,
    //    range well inside [-1, 1]) — the value profile of paper Fig. 5.
    inc::Rng rng(2024);
    std::vector<float> gradients(1 << 16);
    for (auto &g : gradients) {
        const double sigma = rng.uniform() < 0.8 ? 0.0004 : 0.03;
        g = static_cast<float>(rng.gaussian(0.0, sigma));
    }

    // 2. Compress / decompress with the scalar codec.
    const inc::InceptionnCodec codec(bound_log2);
    inc::TagHistogram tags;
    const inc::CompressedStream stream =
        inc::encodeStream(codec, gradients, &tags);
    std::vector<float> recovered(gradients.size());
    inc::decodeStream(codec, stream, recovered);

    double worst = 0.0;
    for (size_t i = 0; i < gradients.size(); ++i)
        worst = std::max(worst, std::abs(static_cast<double>(
                                    gradients[i] - recovered[i])));

    std::printf("values            : %zu floats (%zu bytes)\n",
                gradients.size(), gradients.size() * 4);
    std::printf("compressed stream : %llu bytes on the wire\n",
                static_cast<unsigned long long>(stream.wireBytes()));
    std::printf("compression ratio : %.2fx (tag-mix mean %.2f bits/value)\n",
                tags.compressionRatio(), tags.meanBitsPerValue());
    std::printf("worst |error|     : %.3g (bound %.3g) %s\n",
                worst, codec.errorBound(),
                worst <= codec.errorBound() ? "OK" : "VIOLATED");
    std::printf("tag mix           : zero %.1f%%  8-bit %.1f%%  16-bit "
                "%.1f%%  verbatim %.1f%%\n\n",
                100 * tags.fraction(inc::Tag::Zero),
                100 * tags.fraction(inc::Tag::Bits8),
                100 * tags.fraction(inc::Tag::Bits16),
                100 * tags.fraction(inc::Tag::NoCompress));

    // 3. The same bytes through the cycle-level burst engine models.
    inc::BurstCompressor engine(codec);
    engine.feed(gradients);
    const inc::CompressedStream hw = engine.finish();
    std::printf("burst compressor  : %s with the scalar stream; %llu "
                "cycles for %llu input bursts\n",
                hw.bytes == stream.bytes ? "bit-exact" : "MISMATCH",
                static_cast<unsigned long long>(engine.stats().cycles),
                static_cast<unsigned long long>(
                    engine.stats().inputBursts));
    std::printf("engine throughput : %.1f Gb/s at 100 MHz (line rate "
                "safe: 10 GbE)\n",
                engine.stats().inputBitsPerSecond(100e6) / 1e9);

    inc::BurstDecompressor decomp(codec);
    const std::vector<float> hw_out = decomp.decompress(hw);
    std::printf("burst decompressor: %s, %llu cycles\n",
                hw_out == recovered ? "matches scalar decode" : "MISMATCH",
                static_cast<unsigned long long>(decomp.stats().cycles));

    // 4. The aggregator-free ring exchange (paper Algorithm 1).
    std::vector<std::vector<float>> replicas(4, gradients);
    std::vector<std::span<float>> spans(replicas.begin(), replicas.end());
    const inc::RingExchangeStats ring = inc::ringAllReduce(spans, &codec);
    std::printf("\nring all-reduce   : 4 nodes exchanged %llu payload "
                "bytes as %llu wire bytes (%.2fx)\n",
                static_cast<unsigned long long>(ring.totalPayloadBytes),
                static_cast<unsigned long long>(ring.totalWireBytes),
                ring.ratio());
    std::printf("aggregated[0]     : %.6f (expect ~4x input %.6f)\n",
                replicas[0][0], gradients[0]);
    return 0;
}
