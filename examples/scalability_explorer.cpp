/**
 * @file
 * Interactive what-if explorer for the exchange algorithms: pick a model
 * size, cluster size, link speed, and codec ratio on the command line
 * and compare worker-aggregator, two-level tree, and the INCEPTIONN
 * ring — simulated and analytical — side by side.
 *
 *   ./scalability_explorer [nodes] [model_MB] [link_Gbps] [ratio]
 */

#include <cstdio>
#include <cstdlib>

#include "net/network.h"

#include "comm/analytical.h"
#include "comm/comm_world.h"
#include "comm/ring_allreduce.h"
#include "comm/star_allreduce.h"
#include "comm/tree_allreduce.h"

using namespace inc;

namespace {

double
simulate(int workers, uint64_t bytes, double gbps, double ratio,
         bool compress, const char *algo)
{
    EventQueue events;
    NetworkConfig net_cfg;
    net_cfg.linkBitsPerSecond = gbps * 1e9;
    net_cfg.nicConfig.hasCompressionEngine = compress;

    double secs = -1.0;
    const std::string name(algo);
    if (name == "star") {
        net_cfg.nodes = workers + 1;
        Network net(events, net_cfg);
        CommWorld comm(net);
        StarConfig cfg;
        cfg.gradientBytes = bytes;
        cfg.compressGradients = compress;
        cfg.wireRatio = ratio;
        cfg.aggregator = workers;
        for (int i = 0; i < workers; ++i)
            cfg.workers.push_back(i);
        events.schedule(0, [&] {
            runStarAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
    } else if (name == "tree") {
        // Two groups of workers/2, two group aggregators, one root.
        const int half = workers / 2;
        net_cfg.nodes = workers + 3;
        Network net(events, net_cfg);
        CommWorld comm(net);
        TreeConfig cfg;
        cfg.gradientBytes = bytes;
        cfg.compressGradients = compress;
        cfg.wireRatio = ratio;
        cfg.root = workers + 2;
        TreeGroup a{workers, {}}, b{workers + 1, {}};
        for (int i = 0; i < half; ++i)
            a.workers.push_back(i);
        for (int i = half; i < workers; ++i)
            b.workers.push_back(i);
        cfg.groups = {a, b};
        events.schedule(0, [&] {
            runTreeAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
    } else { // ring
        net_cfg.nodes = workers;
        Network net(events, net_cfg);
        CommWorld comm(net);
        RingConfig cfg;
        cfg.gradientBytes = bytes;
        cfg.compressGradients = compress;
        cfg.wireRatio = ratio;
        events.schedule(0, [&] {
            runRingAllReduce(comm, cfg,
                             [&](ExchangeResult r) { secs = r.seconds(); });
        });
        events.run();
    }
    return secs;
}

} // namespace

int
main(int argc, char **argv)
{
    const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
    const uint64_t model_mb =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 233;
    const double gbps = argc > 3 ? std::atof(argv[3]) : 10.0;
    const double ratio = argc > 4 ? std::atof(argv[4]) : 5.6;
    const uint64_t bytes = model_mb * 1000 * 1000;

    std::printf("Gradient exchange explorer: %d workers, %llu MB model, "
                "%.0f GbE, codec %.1fx\n\n",
                nodes, static_cast<unsigned long long>(model_mb), gbps,
                ratio);
    std::printf("%-22s %14s %14s\n", "algorithm", "lossless (ms)",
                "compressed (ms)");
    for (const char *algo : {"star", "tree", "ring"}) {
        const double plain =
            simulate(nodes, bytes, gbps, ratio, false, algo);
        const double comp = simulate(nodes, bytes, gbps, ratio, true, algo);
        std::printf("%-22s %14.2f %14.2f\n", algo, plain * 1e3,
                    comp * 1e3);
    }

    CostModelParams m;
    m.beta = 1.0 / (gbps * 1e9 / 8.0);
    std::printf("\nanalytical (Sec. VIII-D): WA %.2f ms, ring %.2f ms\n",
                waExchangeSeconds(nodes, bytes, m) * 1e3,
                ringExchangeSeconds(nodes, bytes, m) * 1e3);
    std::printf("\nTry: ./scalability_explorer 16 525 40 12\n");
    return 0;
}
