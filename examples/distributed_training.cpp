/**
 * @file
 * End-to-end INCEPTIONN training demo: a four-worker data-parallel
 * cluster trains the HDC model on the synthetic digit task with the
 * gradient-centric ring exchange, first lossless and then with the lossy
 * codec at 2^-10 — printing accuracy side by side — and finally replays
 * the same configuration on the timing simulator to show the wall-clock
 * effect of in-network compression.
 *
 *   ./distributed_training [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "data/synthetic_digits.h"
#include "distrib/func_trainer.h"
#include "distrib/sim_trainer.h"
#include "nn/model_zoo.h"

using namespace inc;

int
main(int argc, char **argv)
{
    const uint64_t iterations =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
    std::printf("Distributed INCEPTIONN training: 4 workers, HDC, "
                "synthetic digits, %llu iterations\n\n",
                static_cast<unsigned long long>(iterations));

    SyntheticDigits train(4000, 1), test(1000, 2);

    auto run = [&](const InceptionnCodec *codec, const char *label) {
        FuncTrainerConfig cfg;
        cfg.nodes = 4;
        cfg.batchPerNode = 16;
        cfg.sgd.learningRate = 0.05;
        cfg.sgd.lrDecayEvery = 0;
        cfg.sgd.clipGradNorm = 5.0;
        cfg.codec = codec;
        FuncTrainer t(&buildHdcSmall, train, test, cfg);
        std::printf("%-22s", label);
        const uint64_t chunk = iterations / 4 ? iterations / 4 : 1;
        for (uint64_t done = 0; done < iterations; done += chunk) {
            t.train(std::min(chunk, iterations - done));
            std::printf("  it %4llu: %.3f",
                        static_cast<unsigned long long>(t.iteration()),
                        t.evaluate(500));
        }
        std::printf("\n");
        if (codec) {
            std::printf("%-22s  wire ratio %.1fx, replica drift %.2g\n",
                        "", t.achievedWireRatio(), t.replicaDivergence());
        }
        return t.evaluate(1000);
    };

    const double lossless = run(nullptr, "lossless ring:");
    const InceptionnCodec codec(10);
    const double lossy = run(&codec, "INC(2^-10) ring:");
    std::printf("\nfinal accuracy: lossless %.3f vs INC(2^-10) %.3f "
                "(paper: compression costs <2%%)\n\n",
                lossless, lossy);

    // Timing view of the same cluster, at the HDC workload's scale.
    std::printf("Timing simulation (per iteration, 10 GbE):\n");
    for (const bool compress : {false, true}) {
        for (const auto algo : {ExchangeAlgorithm::WorkerAggregator,
                                ExchangeAlgorithm::Ring}) {
            SimTrainerConfig cfg;
            cfg.workload = hdcWorkload();
            cfg.workers = 4;
            cfg.algorithm = algo;
            cfg.compressGradients = compress;
            cfg.wireRatio = 11.6; // Table III HDC @ 2^-10
            cfg.iterations = 50;
            const SimTrainerResult r = runSimTraining(cfg);
            std::printf("  %-6s %-12s : %7.2f ms/iter (%.0f%% "
                        "communication)\n",
                        algo == ExchangeAlgorithm::Ring ? "ring"
                                                        : "WA",
                        compress ? "+compression" : "",
                        r.secondsPerIteration() * 1e3,
                        r.breakdown.communicationFraction() * 100);
        }
    }
    return 0;
}
