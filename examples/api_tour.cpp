/**
 * @file
 * Tour of the INCEPTIONN collective API (paper Sec. VI-B / Fig. 11):
 * the same training loop switches between collec_comm (plain) and
 * collec_comm_comp (ToS-0x28, NIC-compressed) calls, and between the
 * Fig. 1 organizations, by changing one enum — no call-site rewrites.
 *
 *   ./api_tour [workers] [model_MB]
 */

#include <cstdio>
#include <cstdlib>

#include "net/network.h"

#include "comm/inceptionn_api.h"

using namespace inc;

namespace {

double
runOnce(CollectiveAlgorithm algo, bool compressed, int workers,
        uint64_t bytes)
{
    CollectiveCall call;
    call.algorithm = algo;
    call.workers = workers;
    call.groupSize = 4;
    call.gradientBytes = bytes;
    call.wireRatio = 5.6; // Table III, 2^-10, AlexNet class

    EventQueue events;
    NetworkConfig cfg;
    cfg.nodes = nodesRequired(call);
    cfg.nicConfig.hasCompressionEngine = true;
    Network net(events, cfg);
    CommWorld comm(net);

    double secs = -1;
    events.schedule(0, [&] {
        auto done = [&](ExchangeResult r) { secs = r.seconds(); };
        if (compressed)
            collecCommCompAllReduce(comm, call, done); // the _comp API
        else
            collecCommAllReduce(comm, call, done);
    });
    events.run();
    return secs;
}

} // namespace

int
main(int argc, char **argv)
{
    const int workers = argc > 1 ? std::atoi(argv[1]) : 8;
    const uint64_t mb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 233;
    const uint64_t bytes = mb * 1000 * 1000;

    std::printf("collec_comm vs collec_comm_comp — %d workers, %llu MB "
                "gradients\n\n",
                workers, static_cast<unsigned long long>(mb));
    std::printf("%-28s %16s %16s %9s\n", "organization",
                "collec_comm (ms)", "_comp (ms)", "speedup");

    const struct
    {
        const char *name;
        CollectiveAlgorithm algo;
    } organizations[] = {
        {"worker-aggregator (Fig.2)",
         CollectiveAlgorithm::WorkerAggregator},
        {"two-level tree (Fig.1a)", CollectiveAlgorithm::Tree},
        {"flat ring (Alg.1)", CollectiveAlgorithm::Ring},
        {"hierarchical rings (Fig.1c)", CollectiveAlgorithm::HierRing},
    };
    for (const auto &org : organizations) {
        const double plain = runOnce(org.algo, false, workers, bytes);
        const double comp = runOnce(org.algo, true, workers, bytes);
        std::printf("%-28s %16.2f %16.2f %8.2fx\n", org.name,
                    plain * 1e3, comp * 1e3, plain / comp);
    }
    std::printf("\nThe _comp variant only tags sockets with ToS 0x28 — "
                "whether anything\ncompresses is the NICs' decision, "
                "packet by packet (paper Fig. 11).\n");
    return 0;
}
