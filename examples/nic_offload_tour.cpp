/**
 * @file
 * A guided tour of the in-network offload path (paper Figs. 8-11): a
 * gradient payload is packetized, tagged with ToS 0x28, pushed through
 * the burst compression engine, carried over the simulated 10 GbE
 * fabric, and decompressed on the receiving NIC — versus the same bytes
 * sent as ordinary traffic. Shows why packet counts (and header costs)
 * do not shrink even when payloads compress 10x.
 *
 *   ./nic_offload_tour [megabytes]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/inceptionn.h"
#include "net/network.h"
#include "sim/random.h"
#include "stats/timeline.h"

using namespace inc;

int
main(int argc, char **argv)
{
    const uint64_t mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    const uint64_t payload = mb * 1000 * 1000;
    std::printf("NIC offload tour: %llu MB gradient payload\n\n",
                static_cast<unsigned long long>(mb));

    // 1. What the codec does to this payload.
    Rng rng(7);
    std::vector<float> sample(1 << 16);
    for (auto &v : sample)
        v = static_cast<float>(rng.gaussian(0.0, 0.02));
    const InceptionnCodec codec(10);
    BurstCompressor engine(codec);
    engine.feed(sample);
    const CompressedStream s = engine.finish();
    const double ratio = static_cast<double>(sample.size() * 4) /
                         static_cast<double>(s.bytes.size());
    std::printf("codec on a %zu-float sample: %.2fx, engine %llu cycles "
                "(%.1f Gb/s @100 MHz)\n\n",
                sample.size(), ratio,
                static_cast<unsigned long long>(engine.stats().cycles),
                engine.stats().inputBitsPerSecond(100e6) / 1e9);

    // 2. Packetization: compression does NOT reduce the packet count.
    const uint64_t pkts = packetsFor(payload);
    std::printf("packets for the full payload : %llu (MSS %llu)\n",
                static_cast<unsigned long long>(pkts),
                static_cast<unsigned long long>(mssFor(kDefaultMtu)));
    SegmentMeta plain{payload, payload, kDefaultTos};
    SegmentMeta comp{payload,
                     static_cast<uint64_t>(
                         static_cast<double>(payload) / ratio),
                     kCompressTos};
    std::printf("wire bits plain              : %llu\n",
                static_cast<unsigned long long>(plain.wireBits()));
    std::printf("wire bits compressed         : %llu (headers "
                "unchanged)\n\n",
                static_cast<unsigned long long>(comp.wireBits()));

    // 3. Send it across the simulated cluster both ways.
    auto timed = [&](bool engines, uint8_t tos) {
        EventQueue events;
        NetworkConfig cfg;
        cfg.nodes = 2;
        cfg.nicConfig.hasCompressionEngine = engines;
        Network net(events, cfg);
        double secs = 0;
        net.transfer({0, 1, payload, tos, ratio},
                     [&](Tick t) { secs = toSeconds(t); });
        events.run();
        return secs;
    };
    const double t_plain = timed(false, kDefaultTos);
    const double t_comp = timed(true, kCompressTos);
    std::printf("transfer, ordinary NIC       : %8.2f ms\n",
                t_plain * 1e3);
    std::printf("transfer, engines + ToS 0x28 : %8.2f ms  (%.2fx "
                "faster; < codec ratio %.2fx because headers and\n"
                "                                           per-packet "
                "costs are incompressible)\n",
                t_comp * 1e3, t_plain / t_comp, ratio);

    // 4. ToS gating: engines ignore ordinary traffic.
    const double t_untagged = timed(true, kDefaultTos);
    std::printf("transfer, engines, ToS 0x00  : %8.2f ms  (bypass: same "
                "as ordinary NIC)\n",
                t_untagged * 1e3);

    // 5. Drop a link-occupancy timeline for chrome://tracing.
    {
        EventQueue events;
        NetworkConfig cfg;
        cfg.nodes = 3;
        cfg.nicConfig.hasCompressionEngine = true;
        Network net(events, cfg);
        TimelineRecorder tl;
        net.setTimeline(&tl);
        net.transfer({0, 2, payload / 4, kDefaultTos, 1.0}, [](Tick) {});
        net.transfer({1, 2, payload / 4, kCompressTos, ratio},
                     [](Tick) {});
        events.run();
        const char *trace_path = "nic_offload_timeline.json";
        if (tl.writeFile(trace_path))
            std::printf("\nwrote %zu link-occupancy events to %s "
                        "(open in chrome://tracing)\n",
                        tl.eventCount(), trace_path);
    }
    return 0;
}
